#!/usr/bin/env python
"""TPC-H analytics session: the paper's full query suite on one library.

Runs Q1, Q3, Q4, and Q6 on a chosen backend (default: thrust), printing
each result table and its cost breakdown — the workload a GPU-accelerated
DBMS prototyped on a library would serve.

Run:  python examples/tpch_analytics.py [backend]
      e.g. python examples/tpch_analytics.py arrayfire
"""

import sys

from repro import Device, QueryExecutor, default_framework
from repro.query import explain
from repro.tpch import TpchGenerator, q1, q3, q4, q6


def run_query(executor: QueryExecutor, name: str, plan) -> None:
    print(f"\n=== TPC-H {name} ===")
    print(explain(plan))
    result = executor.execute(plan)
    print()
    print(result.table.head(10))
    report = result.report
    breakdown = report.breakdown()
    print(
        f"simulated: {report.simulated_ms:.3f} ms "
        f"(kernel {breakdown['kernel'] * 1e3:.3f}, "
        f"transfer {breakdown['transfer'] * 1e3:.3f}, "
        f"compile {breakdown['compile'] * 1e3:.3f}) | "
        f"{report.summary.kernel_count} kernels | "
        f"peak device mem {report.peak_device_bytes / 1e6:.1f} MB"
    )


def main() -> None:
    backend_name = sys.argv[1] if len(sys.argv) > 1 else "thrust"
    print(f"Backend: {backend_name}")
    print("Generating TPC-H data (scale factor 0.01)...")
    catalog = TpchGenerator(scale_factor=0.01, seed=2021).generate()

    backend = default_framework().create(backend_name, Device())
    executor = QueryExecutor(backend, catalog)

    run_query(executor, "Q1 (pricing summary)", q1.plan())
    run_query(executor, "Q6 (forecast revenue change)", q6.plan())
    run_query(executor, "Q4 (order priority checking)", q4.plan())
    run_query(executor, "Q3 (shipping priority)", q3.plan(catalog))


if __name__ == "__main__":
    main()
