#!/usr/bin/env python
"""The hashing gap — the paper's headline negative result, end to end.

TPC-H Q3 (two equi-joins) on every library with the only join each can
express, against the handwritten hash-join plan.  Also prints the Table II
join rows, so the support gap and the performance gap appear side by
side.

Run:  python examples/join_gap.py
"""

from repro import Device, QueryExecutor, default_framework
from repro.core import render_table_ii
from repro.errors import UnsupportedOperatorError
from repro.tpch import TpchGenerator, q3


def main() -> None:
    framework = default_framework()

    print("Table II, join rows:")
    backends = [
        framework.create(name)
        for name in ("arrayfire", "boost.compute", "thrust")
    ]
    table = render_table_ii(backends)
    for line in table.splitlines():
        if "Join" in line or "operator" in line or "---" in line:
            print("  " + line)

    print("\nGenerating TPC-H data (scale factor 0.1)...")
    catalog = TpchGenerator(scale_factor=0.1, seed=3).generate()

    configurations = (
        ("arrayfire", "nested_loop"),
        ("boost.compute", "nested_loop"),
        ("thrust", "nested_loop"),
        ("thrust", "merge"),
        ("thrust", "hash"),
        ("handwritten", "hash"),
    )
    print(f"\n{'backend':>16}  {'join algorithm':>16}  {'Q3 warm ms':>12}")
    timings = {}
    for name, algorithm in configurations:
        backend = framework.create(name, Device())
        executor = QueryExecutor(backend, catalog)
        plan = q3.plan(catalog, join_algorithm=algorithm)
        try:
            executor.execute(plan)
            warm = executor.execute(plan).report.simulated_ms
            timings[(name, algorithm)] = warm
            print(f"{name:>16}  {algorithm:>16}  {warm:12.4f}")
        except UnsupportedOperatorError as error:
            print(f"{name:>16}  {algorithm:>16}  unsupported: {error}")

    nlj = timings[("thrust", "nested_loop")]
    hash_join = timings[("handwritten", "hash")]
    print(
        f"\nhandwritten hash-join plan vs thrust NLJ plan: "
        f"{nlj / hash_join:.1f}x faster at whole-query level (uploads and"
        "\nfilters dilute the gap; at operator level the factor exceeds"
        " 100x — see benchmarks/bench_fig_join.py).  Hashing is 'one of the"
        "\nfundamental database primitives … currently not supported,"
        " leaving important tuning potential unused' (paper, abstract)."
    )


if __name__ == "__main__":
    main()
