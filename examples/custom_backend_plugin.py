#!/usr/bin/env python
"""Plug in your own library — the framework's extensibility story.

The paper: *"we develop a framework […] that allows a user to plug-in new
libraries and custom-written code."*  This example registers a fictional
"CuPy-like" library backend that only accelerates selections (falling
back to the inherited STL compositions elsewhere), then runs it alongside
the built-ins.

Run:  python examples/custom_backend_plugin.py
"""

import numpy as np

from repro import Device, default_framework
from repro.core import col_gt
from repro.core.backend import Handle, Operator, OperatorSupport, SupportLevel
from repro.core.predicate import Predicate
from repro.core.thrust_backend import ThrustBackend
from repro.gpu.kernel import EfficiencyProfile


class CupyLikeBackend(ThrustBackend):
    """A hypothetical library with one tuned primitive: fused selection.

    Everything else inherits the Thrust realizations — exactly how a
    practitioner would prototype with a new library that covers only part
    of Table II.
    """

    name = "cupy-like"

    #: The fictional library ships a well-tuned fused selection kernel.
    _FUSED_PROFILE = EfficiencyProfile(
        name="cupy-like", compute_efficiency=0.88,
        memory_efficiency=0.90, launch_multiplier=1.2,
    )

    def selection(self, columns: dict, predicate: Predicate) -> Handle:
        host = {name: handle.peek() for name, handle in columns.items()}
        ids = np.flatnonzero(predicate.evaluate(host)).astype(np.int64)
        read = float(sum(columns[c].itemsize for c in predicate.columns()))
        n = len(next(iter(columns.values())))
        # One fused kernel: predicate + compaction.
        from repro.gpu.kernel import KernelCost

        self.device.launch(
            KernelCost(
                name="cupy-like::fused_select",
                elements=n,
                flops_per_element=3.0,
                bytes_read_per_element=read,
                bytes_written_per_element=8.0 * len(ids) / max(n, 1),
                passes=2,
            ),
            self._FUSED_PROFILE,
        )
        self.device.transfer_to_host(8, "selection_count")
        return self.runtime._materialize(ids, "cupy::select_ids")

    def support(self):
        table = super().support()
        table[Operator.SELECTION] = OperatorSupport(
            SupportLevel.FULL, "fused_select()"
        )
        return table


def main() -> None:
    framework = default_framework()
    framework.register("cupy-like", CupyLikeBackend)
    print(f"registered backends: {', '.join(framework.backend_names)}\n")

    rng = np.random.default_rng(0)
    data = rng.integers(0, 1 << 20, 1 << 21).astype(np.int32)
    predicate = col_gt("x", 1 << 19)

    print(f"{'backend':>16}  {'warm selection ms':>18}  {'matches':>10}")
    for name in ("arrayfire", "thrust", "boost.compute", "cupy-like"):
        backend = framework.create(name, Device())
        handle = backend.upload(data)
        backend.selection({"x": handle}, predicate)  # warm
        t0 = backend.device.clock.now
        ids = backend.selection({"x": handle}, predicate)
        elapsed_ms = (backend.device.clock.now - t0) * 1e3
        print(f"{name:>16}  {elapsed_ms:18.4f}  {len(ids):10d}")

    print(
        "\nThe new backend slots into every harness in this repository —"
        "\nsweeps, TPC-H queries, the support matrix — with no other code"
        "\nchanges."
    )


if __name__ == "__main__":
    main()
