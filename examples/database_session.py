#!/usr/bin/env python
"""A GPU database session: resident columns + plan optimization.

Shows two production behaviours on top of the framework:

* a :class:`~repro.query.GpuSession` keeps hot columns resident on the
  device, so repeated queries stop paying PCIe uploads;
* :func:`~repro.query.optimize` merges stacked filters and pushes them
  through projections before execution, cutting kernel launches.

Run:  python examples/database_session.py
"""

from repro import Device, default_framework
from repro.core import col_gt, col_lt
from repro.core.expr import col, lit
from repro.query import GpuSession, explain, optimize, scan
from repro.tpch import TpchGenerator


def main() -> None:
    print("Generating TPC-H data (scale factor 0.02)...")
    catalog = TpchGenerator(scale_factor=0.02, seed=8).generate()
    backend = default_framework().create("thrust", Device())
    session = GpuSession(backend, catalog)

    # A deliberately naive plan: stacked filters behind a projection.
    naive = (
        scan("lineitem")
        .project([
            "l_quantity", "l_shipdate",
            ("disc_price",
             col("l_extendedprice") * (lit(1.0) - col("l_discount"))),
        ])
        .filter(col_lt("l_quantity", 25))
        .filter(col_gt("l_shipdate", 1000))
        .aggregate([("revenue", "sum", "disc_price")])
        .build()
    )
    optimized = optimize(naive)
    print("\nnaive plan:")
    print(explain(naive))
    print("\noptimized plan (filters merged, pushed below the projection):")
    print(explain(optimized))

    print("\nrunning each three times in one session:")
    print(f"{'run':>4}  {'plan':>10}  {'total ms':>10}  {'transfer ms':>12}  "
          f"{'kernels':>8}")
    for label, plan in (("naive", naive), ("optimized", optimized)):
        for run in range(1, 4):
            report = session.execute(plan).report
            print(
                f"{run:>4}  {label:>10}  {report.simulated_ms:10.4f}  "
                f"{report.breakdown()['transfer'] * 1e3:12.4f}  "
                f"{report.summary.kernel_count:8d}"
            )
    print(f"\nsession state: {session!r}")
    print(
        "run 1 pays the uploads; later runs reuse resident columns, and the"
        "\noptimized plan reaches the same answer faster: filtering before"
        "\nthe projection means every downstream kernel touches fewer rows."
    )


if __name__ == "__main__":
    main()
