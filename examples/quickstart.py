#!/usr/bin/env python
"""Quickstart: run one query on every GPU library and compare.

Builds a small TPC-H database, runs Q6 (the selection+reduction query) on
each backend through the framework, and prints result + simulated cost —
the 60-second tour of what the paper measures.

Run:  python examples/quickstart.py
"""

from repro import Device, QueryExecutor, default_framework
from repro.tpch import TpchGenerator, q6


def main() -> None:
    print("Generating TPC-H data (scale factor 0.01)...")
    catalog = TpchGenerator(scale_factor=0.01, seed=1).generate()
    lineitem_rows = catalog["lineitem"].num_rows
    print(f"  lineitem: {lineitem_rows:,} rows\n")

    framework = default_framework()
    plan = q6.plan()
    expected = q6.reference(catalog)["revenue"][0]
    print(f"TPC-H Q6 reference revenue: {expected:,.2f}\n")

    header = (
        f"{'backend':>16}  {'revenue':>16}  {'cold ms':>10}  {'warm ms':>10}"
        f"  {'kernels':>8}"
    )
    print(header)
    print("-" * len(header))
    for name in ("arrayfire", "boost.compute", "thrust", "handwritten"):
        backend = framework.create(name, Device())
        executor = QueryExecutor(backend, catalog)
        cold = executor.execute(plan)
        warm = executor.execute(plan)
        revenue = float(warm.table.column("revenue").data[0])
        print(
            f"{name:>16}  {revenue:16,.2f}  {cold.report.simulated_ms:10.3f}"
            f"  {warm.report.simulated_ms:10.3f}"
            f"  {warm.report.summary.kernel_count:8d}"
        )

    print(
        "\nEvery library returns the same answer; the costs differ because"
        "\nthe operator *realizations* differ (Table II): ArrayFire fuses"
        "\nthe predicate into one JIT kernel, the STL libraries chain"
        "\ntransform/scan/scatter calls, and Boost.Compute compiles its"
        "\nOpenCL kernels on first use (the cold-run penalty above)."
    )


if __name__ == "__main__":
    main()
