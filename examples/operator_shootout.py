#!/usr/bin/env python
"""Operator shootout: regenerate the paper's per-operator comparison.

Sweeps selection, grouped aggregation, sort, and reduction over input
sizes across all four backends, printing the simulated-time series —
Section IV's microbenchmarks in one script.

Run:  python examples/operator_shootout.py
"""

from repro.bench import (
    grouped_keys,
    render_all,
    run_simple_sweep,
    selection_workload,
    uniform_floats,
    uniform_ints,
)
from repro.core import col_lt

BACKENDS = ("arrayfire", "boost.compute", "thrust", "handwritten")
SIZES = (1 << 16, 1 << 19, 1 << 22)


def selection_sweep():
    def setup(backend, n):
        workload = selection_workload(n, 0.1)
        return backend.upload(workload.data), workload.threshold

    def run(backend, state):
        backend.selection({"x": state[0]}, col_lt("x", state[1]))

    return run_simple_sweep(
        "Selection (10% selectivity)", BACKENDS, SIZES, setup, run
    )


def groupby_sweep():
    def setup(backend, n):
        keys, values = grouped_keys(n, groups=1024)
        return backend.upload(keys), backend.upload(values)

    def run(backend, state):
        backend.grouped_aggregation(state[0], state[1], "sum")

    return run_simple_sweep(
        "Grouped aggregation (1024 groups)", BACKENDS, SIZES, setup, run
    )


def sort_sweep():
    def setup(backend, n):
        return backend.upload(uniform_ints(n))

    def run(backend, handle):
        backend.sort(handle)

    return run_simple_sweep("Sort (int32)", BACKENDS, SIZES, setup, run)


def reduction_sweep():
    def setup(backend, n):
        return backend.upload(uniform_floats(n))

    def run(backend, handle):
        backend.reduction(handle, "sum")

    return run_simple_sweep("Reduction (sum)", BACKENDS, SIZES, setup, run)


def main() -> None:
    for sweep in (selection_sweep, groupby_sweep, sort_sweep, reduction_sweep):
        result = sweep()
        print(render_all(result, baseline="handwritten"))
        print()


if __name__ == "__main__":
    main()
