"""Shared fixtures for the benchmark suite.

Every benchmark measures *simulated device time* (the quantity the paper's
figures plot) and renders the same rows/series the paper reports; the
pytest-benchmark fixture additionally records the harness wall-time.  Each
benchmark writes its rendered table to ``benchmarks/out/<name>.txt``.
"""

from __future__ import annotations

import pytest

from _util import SCALE_FACTORS
from repro.tpch import TpchGenerator


@pytest.fixture(scope="session")
def tpch_catalogs():
    """One generated catalog per scale factor (shared across benchmarks)."""
    return {
        sf: TpchGenerator(scale_factor=sf, seed=2021).generate()
        for sf in SCALE_FACTORS
    }
