"""Table I — the survey of 43 GPU libraries.

Regenerates the survey table, the category histogram the paper quotes
(13 math, 7 image/video, 5 database operators), and the three-library
selection rationale.
"""

from _util import out_dir, run_once
from repro.bench import write_report
from repro.survey import (
    render_category_histogram,
    render_selection_rationale,
    render_table_i,
    verify_against_paper,
)


def test_table1_survey(benchmark):
    def build() -> str:
        parts = [
            render_table_i(),
            "",
            render_category_histogram(),
            "",
            render_selection_rationale(),
        ]
        return "\n".join(parts)

    text = run_once(benchmark, build)
    assert verify_against_paper() == []
    print("\n" + text)
    write_report("table1_survey", text, directory=out_dir())
