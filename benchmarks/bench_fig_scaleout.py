"""Fig. scaleout (new) — multi-GPU speedup curves and the exchange crossover.

Two experiments on the ``repro.distributed`` layer, both deterministic
(seeded catalog, simulated clocks):

* **speedup curves** — Q1, Q6, and Q3 at SF 0.1 on device groups of
  1/2/4/8 NVLink-connected GPUs, hash-partitioned on ``l_orderkey``.
  Q1/Q6 run partition-parallel scan + partial-aggregate merge; Q3 runs a
  shuffle-partitioned hash join.  The 1-device run must stay
  bit-identical to the plain serial executor (asserted with
  ``Table.equals``), and Q6 must reach >= 2.5x at 4 devices (asserted —
  per-device H2D and compute engines overlap across devices, so the
  scan-bound queries scale until per-query fixed costs dominate).
* **broadcast-vs-shuffle crossover** — the exchange cost model and the
  measured exchange operators over a sweep of build-side sizes against a
  fixed fact side that needs re-sharding.  Small builds replicate
  (broadcast), large builds shuffle a 1/N slice each; the chosen mode
  must flip exactly once as the build side grows (asserted).

Run directly with ``--smoke`` for the CI fast lane: a 2-device Q6+Q3 run
differentially checked against the serial executor, metrics saved to
``fig_scaleout_smoke.json`` under the report directory.
"""


import numpy as np

from _util import out_dir, run_once
from common import write_smoke_json
from repro.bench import write_report
from repro.core import default_framework
from repro.distributed import (
    Broadcast,
    DistributedExecutor,
    Shuffle,
    choose_exchange,
)
from repro.gpu import GTX_1080TI, Device, DeviceGroup
from repro.query import QueryExecutor
from repro.tpch import TpchGenerator
from repro.tpch.queries import q1, q3, q6

SCALE_FACTOR = 0.1
CATALOG_SEED = 2021
DEVICE_COUNTS = (1, 2, 4, 8)
PARTITION = "hash:l_orderkey"
BACKEND = "thrust"

#: Acceptance floor: Q6 speedup at 4 devices.
Q6_FLOOR_AT_4 = 2.5


def _catalog(scale_factor=SCALE_FACTOR):
    return TpchGenerator(
        scale_factor=scale_factor, seed=CATALOG_SEED
    ).generate()


def _plans(catalog):
    return {"Q1": q1.plan(), "Q6": q6.plan(), "Q3": q3.plan(catalog)}


def _serial_table(catalog, plan):
    backend = default_framework().create(BACKEND, Device(GTX_1080TI))
    return QueryExecutor(backend, catalog).execute(plan).table


def _run(catalog, plan, devices, partition=PARTITION):
    group = DeviceGroup.of_size(devices)
    executor = DistributedExecutor(group, BACKEND, catalog, partition)
    return executor.execute(plan)


def test_fig_scaleout_speedup(benchmark):
    catalog = _catalog()
    plans = _plans(catalog)

    def sweep():
        rows = {}
        for name, plan in plans.items():
            runs = {n: _run(catalog, plan, n) for n in DEVICE_COUNTS}
            rows[name] = runs
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        f"== Fig. scaleout: TPC-H SF {SCALE_FACTOR} on 1-8 simulated GPUs "
        f"(NVLink P2P, {PARTITION}, {BACKEND}) ==",
        f"{'query':>6}  {'devices':>7}  {'strategy':>18}  "
        f"{'makespan ms':>12}  {'speedup':>8}",
    ]
    speedups = {}
    for name, runs in rows.items():
        base = runs[1].report.makespan_seconds
        for n in DEVICE_COUNTS:
            report = runs[n].report
            speedup = base / report.makespan_seconds
            speedups[(name, n)] = speedup
            lines.append(
                f"{name:>6}  {n:7d}  {report.strategy:>18}  "
                f"{report.simulated_ms:12.3f}  {speedup:8.2f}x"
            )
    lines.append(
        f"-- Q6 at 4 devices: {speedups[('Q6', 4)]:.2f}x "
        f"(floor {Q6_FLOOR_AT_4:.1f}x) --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_scaleout", text, directory=out_dir())

    # Acceptance: the partitioned path degenerates to the serial executor
    # on one device — bit-identical output, not just close.
    for name, plan in plans.items():
        assert rows[name][1].table.equals(_serial_table(catalog, plan)), name
        assert rows[name][1].report.strategy == "single_device"
    # Acceptance: Q6 reaches the speedup floor at 4 devices, and curves
    # are monotone in the device count for the scan-bound queries.
    assert speedups[("Q6", 4)] >= Q6_FLOOR_AT_4, speedups[("Q6", 4)]
    for name in ("Q1", "Q6"):
        for lo, hi in zip(DEVICE_COUNTS, DEVICE_COUNTS[1:]):
            assert speedups[(name, hi)] > speedups[(name, lo)], (name, hi)
    # Q3's join runs shuffle-partitioned on the co-located key.
    assert rows["Q3"][4].report.strategy == "shuffle_join"


#: Crossover sweep: build-side sizes against a fixed 64 MiB fact side
#: whose stored layout needs re-sharding onto the join key.
FACT_BYTES = 64 << 20
BUILD_SIZES = tuple((1 << 20) * (4 ** e) for e in range(5))  # 1 MiB..256 MiB
CROSSOVER_DEVICES = 4


def _measured_exchange(nbytes, devices, mode):
    """Wall time of the actual exchange operators on a fresh group."""
    group = DeviceGroup.of_size(devices)
    if mode == "broadcast":
        return Broadcast(nbytes).run(group)
    slice_bytes = nbytes // devices
    moved = [
        [0 if s == d else slice_bytes // devices for d in range(devices)]
        for s in range(devices)
    ]
    return Shuffle.from_matrix(moved).run(group)


def test_fig_scaleout_crossover(benchmark):
    def sweep():
        group = DeviceGroup.of_size(CROSSOVER_DEVICES)
        rows = []
        for build in BUILD_SIZES:
            choice = choose_exchange(
                group, build_bytes=build, fact_bytes=FACT_BYTES,
                reshard_required=True,
            )
            rows.append((
                build,
                choice,
                _measured_exchange(build, CROSSOVER_DEVICES, "broadcast"),
                _measured_exchange(build, CROSSOVER_DEVICES, "shuffle"),
            ))
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "== Fig. scaleout-crossover: broadcast vs shuffle exchange, "
        f"{CROSSOVER_DEVICES} GPUs, fact side {FACT_BYTES >> 20} MiB "
        "(re-shard required) ==",
        f"{'build MiB':>10}  {'bcast model ms':>15}  "
        f"{'shuffle model ms':>17}  {'bcast meas ms':>14}  "
        f"{'shuffle meas ms':>16}  {'chosen':>9}",
    ]
    for build, choice, bcast_meas, shuf_meas in rows:
        lines.append(
            f"{build >> 20:10d}  {choice.broadcast_cost * 1e3:15.3f}  "
            f"{choice.shuffle_cost * 1e3:17.3f}  {bcast_meas * 1e3:14.3f}  "
            f"{shuf_meas * 1e3:16.3f}  {choice.mode:>9}"
        )
    modes = [choice.mode for _b, choice, _bm, _sm in rows]
    flip = modes.index("shuffle") if "shuffle" in modes else len(modes)
    lines.append(
        f"-- crossover between {BUILD_SIZES[max(flip - 1, 0)] >> 20} and "
        f"{BUILD_SIZES[min(flip, len(modes) - 1)] >> 20} MiB builds --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_scaleout_crossover", text, directory=out_dir())

    # Acceptance: small builds broadcast, large builds shuffle, and the
    # decision flips exactly once across the sweep.
    assert modes[0] == "broadcast" and modes[-1] == "shuffle", modes
    assert modes == ["broadcast"] * flip + ["shuffle"] * (len(modes) - flip)
    # The model tracks the measured operators' ordering at the extremes.
    assert rows[0][2] < rows[0][3] or rows[0][1].mode == "broadcast"
    assert rows[-1][3] < rows[-1][2]


def _smoke(devices: int) -> int:
    """CI fast-lane: tiny differential scale-out run, metrics as JSON."""
    catalog = _catalog(0.01)
    plans = _plans(catalog)
    payload = {}
    for name, plan in plans.items():
        oracle = _serial_table(catalog, plan)
        base = _run(catalog, plan, 1)
        multi = _run(catalog, plan, devices)
        table = multi.table
        assert table.num_rows == oracle.num_rows, name
        for column in oracle.column_names:
            got = table.column(column).data
            want = oracle.column(column).data
            if got.dtype.kind == "f":
                assert np.allclose(got, want), (name, column)
            else:
                assert (got == want).all(), (name, column)
        assert base.table.equals(oracle), name
        payload[name] = {
            "devices": devices,
            "strategy": multi.report.strategy,
            "makespan_ms_1": base.report.simulated_ms,
            "makespan_ms_n": multi.report.simulated_ms,
            "speedup": (
                base.report.makespan_seconds
                / multi.report.makespan_seconds
            ),
            "merge_mode": multi.report.merge_mode,
            "exchange_bytes": multi.report.exchange_bytes,
        }
    path = write_smoke_json("fig_scaleout_smoke.json", payload)
    summary = ", ".join(
        f"{name} {row['speedup']:.2f}x" for name, row in payload.items()
    )
    print(f"scaleout smoke ({devices} devices): {summary} -> {path}")
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(
        lambda args: _smoke(args.devices),
        doc=__doc__,
        add_args=lambda parser: parser.add_argument(
            "--devices", type=int, default=2
        ),
    )
