"""Ablation 2 — Boost.Compute's program cache: cold vs. warm.

Boost.Compute compiles OpenCL kernels at first use.  This ablation runs a
suite of operators twice on one runtime (cold, then warm) and once with
the cache invalidated between operators (worst case), quantifying how
much of the cold-query penalty the cache recovers — the steady-state
numbers the paper reports assume a warm cache.
"""

from _util import out_dir, run_once
from repro.bench import grouped_keys, uniform_ints, write_report
from repro.core import BoostComputeBackend, col_gt
from repro.gpu import Device

N = 1 << 20


def _operator_suite(backend, state):
    backend.selection({"x": state["data"]}, col_gt("x", 500_000))
    backend.grouped_aggregation(state["keys"], state["values"], "sum")
    backend.sort(state["data"])
    backend.prefix_sum(state["keys"])
    backend.reduction(state["values"], "sum")


def _setup(backend):
    keys, values = grouped_keys(N, groups=512, seed=7)
    return {
        "data": backend.upload(uniform_ints(N, seed=8)),
        "keys": backend.upload(keys),
        "values": backend.upload(values),
    }


def test_ablation_program_cache(benchmark):
    def measure():
        backend = BoostComputeBackend(Device())
        state = _setup(backend)
        device = backend.device

        t0 = device.clock.now
        _operator_suite(backend, state)
        cold_ms = (device.clock.now - t0) * 1e3
        cold_stats = (
            backend.program_cache.stats.misses,
            backend.program_cache.stats.compile_time * 1e3,
        )

        t0 = device.clock.now
        _operator_suite(backend, state)
        warm_ms = (device.clock.now - t0) * 1e3

        # Worst case: no cache at all (invalidate before the run).
        backend.program_cache.invalidate()
        t0 = device.clock.now
        _operator_suite(backend, state)
        nocache_ms = (device.clock.now - t0) * 1e3

        return cold_ms, warm_ms, nocache_ms, cold_stats

    cold_ms, warm_ms, nocache_ms, (misses, compile_ms) = run_once(
        benchmark, measure
    )
    text = "\n".join([
        f"== Ablation 2: Boost.Compute program cache (operator suite, "
        f"n={N}) ==",
        f"  cold (first use, cache filling): {cold_ms:10.3f} ms "
        f"({misses} programs compiled, {compile_ms:.1f} ms compiling)",
        f"  warm (cache hits only):          {warm_ms:10.3f} ms",
        f"  invalidated (recompile all):     {nocache_ms:10.3f} ms",
        f"  cold / warm ratio: {cold_ms / warm_ms:8.1f}x",
    ])
    print("\n" + text)
    write_report("ablation_compile_cache", text, directory=out_dir())

    assert cold_ms > 5.0 * warm_ms
    assert nocache_ms > 5.0 * warm_ms
    assert compile_ms > 0.8 * (cold_ms - warm_ms)
