#!/usr/bin/env python
"""Benchmark-floor gate: fail CI when a smoke artifact regresses.

The fast lanes each save a small metrics JSON (``fig_serve_smoke.json``,
``fig_scaleout_smoke.json``, ``fig_fused_smoke.json``).  Before this
gate, the performance floors lived only inside the *full* benchmark
runs, which CI does not execute — a regression would sail through as
long as the smoke finished.  This script parses the uploaded artifacts
and enforces the floors:

* **fused** — warm kernel-time speedup of the compiled backend over the
  handwritten baseline, per query, against the floor recorded in the
  artifact itself (2x by default, matching
  ``bench_fig_fused_pipeline.py``);
* **scaleout** — Q6 multi-GPU speedup against a device-count-dependent
  floor (2.5x at >= 4 devices, the full benchmark's assertion; 1.2x for
  the 2-device smoke), and every query faster than 1 device;
* **serve** — every request completed, nothing shed, non-zero
  throughput;
* **tpch** — the whole-suite smoke (``fig_tpch_suite_smoke.json``):
  every query matches its NumPy oracle, warm runtime stays under the
  per-query ceiling recorded in the artifact, and the compiled backend
  never falls behind the eager baseline.  Not required by default —
  pass it explicitly via ``--require ...,tpch`` in lanes that upload it;
* **tiered** — the compressed-storage smoke (``fig_tiered_smoke.json``):
  every cell of the pressure grid matches the in-memory oracle, the
  effective-bandwidth gain from compression clears its floor, tiered
  runtime stays under the no-cliff ceiling relative to the raw chunked
  baseline, the lightest pressure level shows an outright win, and the
  deepest level actually spilled.  Opt-in like ``tpch`` — pass
  ``--require ...,tiered`` in the storage lane;
* **cluster** — the multi-node smoke (``fig_cluster_smoke.json``):
  under a mid-run node kill every request still completes (zero failed,
  zero lost-and-unreported), at least one failover fired, completed
  results stay bit-identical to the single-device oracle, the failure
  p99 stays under the ceiling relative to the healthy run, and
  saturated 1 -> N scale-out clears its throughput floor with the
  elastic run actually scaling up.  Opt-in like ``tpch`` — pass
  ``--require ...,cluster`` in the cluster lane;
* **hetero** — the CPU+GPU co-execution smoke
  (``fig_hetero_smoke.json``): both placement crossovers (build size,
  selectivity) actually flip between devices, every TPC-H query is
  oracle-identical *and* bit-identical across pure-CPU / pure-GPU /
  auto placement, auto never pays more than its regression floor over
  the best pure placement, the best mixed placement beats both pures by
  the hybrid floor, and the pressure-shed run completes every request
  with a nonzero number on the host.  Opt-in like ``tpch`` — pass
  ``--require ...,hetero`` in the hetero lane.

Every failing floor is reported — the gate collects failures across all
artifacts and prints each one with the offending file, the metric, and
the measured value against its floor, so one CI run shows the full
damage instead of stopping at the first regression.

Usage::

    python benchmarks/check_floors.py ARTIFACT_DIR [MORE_PATHS...]
    python benchmarks/check_floors.py --require fused out/fig_fused_smoke.json

Paths may be files or directories (searched recursively for the known
artifact names).  ``--require`` names the artifacts that must be present
(default: all three); a missing required artifact fails the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence

#: Fallback when an artifact predates the embedded "floor" field.
FUSED_DEFAULT_FLOOR = 2.0

#: Q6 scale-out floors keyed by minimum device count.  The full
#: ``bench_fig_scaleout.py`` run asserts 2.5x at 4 devices; the 2-device
#: CI smoke measures ~1.35x, gated at 1.2x.
SCALEOUT_Q6_FLOORS = ((4, 2.5), (2, 1.2))


def _scaleout_q6_floor(devices: int) -> float:
    for min_devices, floor in SCALEOUT_Q6_FLOORS:
        if devices >= min_devices:
            return floor
    return 1.0


def check_fused(payload: Dict) -> List[str]:
    failures = []
    floor = float(payload.get("floor", FUSED_DEFAULT_FLOOR))
    queries = payload.get("queries", {})
    if not queries:
        return ["fused: artifact has no queries"]
    for name, row in sorted(queries.items()):
        speedup = float(row["kernel_speedup"])
        if speedup < floor:
            failures.append(
                f"fused: {name} kernel speedup {speedup:.2f}x is below "
                f"the {floor:.1f}x floor"
            )
    return failures


def check_scaleout(payload: Dict) -> List[str]:
    failures = []
    if not payload:
        return ["scaleout: artifact has no queries"]
    for name, row in sorted(payload.items()):
        devices = int(row["devices"])
        speedup = float(row["speedup"])
        floor = _scaleout_q6_floor(devices) if name == "Q6" else 1.0
        if speedup < floor:
            failures.append(
                f"scaleout: {name} speedup {speedup:.2f}x at {devices} "
                f"devices is below the {floor:.1f}x floor"
            )
    return failures


def check_serve(payload: Dict) -> List[str]:
    metrics = payload.get("metrics", {})
    if not metrics:
        return ["serve: artifact has no metrics"]
    failures = []
    completed = int(metrics.get("completed", 0))
    total = int(metrics.get("total_requests", 0))
    shed = int(metrics.get("shed", 0))
    if completed != total:
        failures.append(
            f"serve: only {completed}/{total} requests completed"
        )
    if shed:
        failures.append(f"serve: {shed} requests shed under smoke load")
    if float(metrics.get("throughput_qps", 0.0)) <= 0.0:
        failures.append("serve: zero throughput")
    return failures


#: A smoke artifact with fewer queries than this has silently lost
#: suite coverage, whatever its per-query numbers say.
TPCH_MIN_QUERIES = 10


def check_tpch(payload: Dict) -> List[str]:
    failures = []
    queries = payload.get("queries", {})
    if len(queries) < TPCH_MIN_QUERIES:
        failures.append(
            f"tpch: only {len(queries)} queries in the artifact "
            f"(expected >= {TPCH_MIN_QUERIES})"
        )
    ratio_ceiling = float(payload.get("ratio_ceiling", 1.0))
    for name, row in sorted(queries.items()):
        if not row.get("oracle_match", False):
            failures.append(f"tpch: {name} result diverged from the oracle")
        warm_ms = float(row["warm_ms"])
        ceiling_ms = float(row["ceiling_ms"])
        if warm_ms > ceiling_ms:
            failures.append(
                f"tpch: {name} warm {warm_ms:.3f} ms is above its "
                f"{ceiling_ms:.2f} ms ceiling"
            )
        ratio = float(row["ratio"])
        if ratio > ratio_ceiling:
            failures.append(
                f"tpch: {name} compiled/eager ratio {ratio:.2f} exceeds "
                f"{ratio_ceiling:.2f} (fusion regression)"
            )
    return failures


#: Fallbacks when a tiered artifact predates the embedded fields.
TIERED_DEFAULT_GAIN_FLOOR = 1.5
TIERED_DEFAULT_RELATIVE_CEILING = 1.75
TIERED_DEFAULT_LIGHT_FLOOR = 1.05


def check_tiered(payload: Dict) -> List[str]:
    failures = []
    cells = payload.get("cells", [])
    if not cells:
        return ["tiered: artifact has no cells"]
    gain_floor = float(payload.get("floor", TIERED_DEFAULT_GAIN_FLOOR))
    ceiling = float(
        payload.get("relative_ceiling", TIERED_DEFAULT_RELATIVE_CEILING)
    )
    light_floor = float(
        payload.get("light_pressure_floor", TIERED_DEFAULT_LIGHT_FLOOR)
    )
    for cell in cells:
        key = f"{cell['query']}@{cell['multiple']}x"
        if not cell.get("oracle_match", False):
            failures.append(f"tiered: {key} diverged from the oracle")
        gain = float(cell["gain"])
        if gain < gain_floor:
            failures.append(
                f"tiered: {key} effective-bandwidth gain {gain:.2f}x is "
                f"below the {gain_floor:.1f}x floor"
            )
        if int(cell.get("promotes", 0)) <= 0:
            failures.append(
                f"tiered: {key} never promoted a chunk (store unused)"
            )
        relative = float(cell["tiered_ms"]) / float(cell["baseline_ms"])
        if relative > ceiling:
            failures.append(
                f"tiered: {key} runs {relative:.2f}x the raw baseline, "
                f"over the {ceiling:.2f}x no-cliff ceiling"
            )
    lightest = min(int(c["multiple"]) for c in cells)
    best = max(
        float(c["speedup"]) for c in cells
        if int(c["multiple"]) == lightest
    )
    if best < light_floor:
        failures.append(
            f"tiered: best light-pressure ({lightest}x) speedup "
            f"{best:.2f}x is below the {light_floor:.2f}x floor"
        )
    deepest = max(int(c["multiple"]) for c in cells)
    if not any(
        int(c.get("spills", 0)) > 0 for c in cells
        if int(c["multiple"]) == deepest
    ):
        failures.append(
            f"tiered: no spills at the deepest ({deepest}x) pressure "
            "level — the smoke never exercised the spill path"
        )
    return failures


#: Fallbacks when a cluster artifact predates the embedded floors.
CLUSTER_DEFAULT_RATIO_CEILING = 2.0
CLUSTER_DEFAULT_SCALEOUT_FLOOR = 1.5


def check_cluster(payload: Dict) -> List[str]:
    failures = []
    floors = payload.get("floors", {})
    ratio_ceiling = float(
        floors.get("p99_ratio_ceiling", CLUSTER_DEFAULT_RATIO_CEILING)
    )
    scaleout_floor = float(
        floors.get("scaleout_floor", CLUSTER_DEFAULT_SCALEOUT_FLOOR)
    )
    failover = payload.get("failover", {})
    if not failover:
        failures.append("cluster: artifact has no failover block")
    else:
        completed = int(failover.get("completed", 0))
        total = int(failover.get("total", 0))
        if completed != total:
            failures.append(
                f"cluster: only {completed}/{total} requests completed "
                "under node kill"
            )
        if int(failover.get("failed", 0)):
            failures.append(
                f"cluster: {failover['failed']} requests exhausted "
                "failover retries"
            )
        if int(failover.get("unreported", 0)):
            failures.append(
                f"cluster: {failover['unreported']} requests lost and "
                "unreported after node kill"
            )
        if int(failover.get("failovers", 0)) < 1:
            failures.append(
                "cluster: the node kill never caused a failover "
                "(scenario unexercised)"
            )
        if not failover.get("oracle_matches", False):
            failures.append(
                "cluster: completed results diverged from the "
                "single-device oracle"
            )
        ratio = float(failover.get("ratio", 0.0))
        if ratio > ratio_ceiling:
            failures.append(
                f"cluster: failure p99 is {ratio:.2f}x the healthy p99, "
                f"over the {ratio_ceiling:.1f}x ceiling"
            )
    elastic = payload.get("elastic", {})
    if not elastic:
        failures.append("cluster: artifact has no elastic block")
    else:
        speedup = float(elastic.get("speedup", 0.0))
        nodes = int(elastic.get("nodes", 0))
        if speedup < scaleout_floor:
            failures.append(
                f"cluster: saturated scale-out {speedup:.2f}x at "
                f"{nodes} nodes is below the {scaleout_floor:.1f}x floor"
            )
        if not any(
            event == "scale_up"
            for event in elastic.get("scale_events", [])
        ):
            failures.append(
                "cluster: the elastic run never scaled up"
            )
    return failures


#: Fallbacks when a hetero artifact predates the embedded floors.
HETERO_DEFAULT_HYBRID_FLOOR = 1.15
HETERO_DEFAULT_AUTO_FLOOR = 0.8
HETERO_MIN_QUERIES = 16


def check_hetero(payload: Dict) -> List[str]:
    failures = []
    floors = payload.get("floors", {})
    hybrid_floor = float(
        floors.get("hybrid_floor", HETERO_DEFAULT_HYBRID_FLOOR)
    )
    auto_floor = float(
        floors.get("auto_regression_floor", HETERO_DEFAULT_AUTO_FLOOR)
    )
    crossover = payload.get("crossover", {})
    for axis in ("size", "selectivity"):
        block = crossover.get(axis, {})
        if not block.get("flipped", False):
            failures.append(
                f"hetero: the {axis} crossover never flipped "
                f"(devices: {block.get('devices', [])})"
            )
    if not crossover.get("size", {}).get("endpoints_identical", True):
        failures.append(
            "hetero: size-crossover endpoint results diverged across "
            "placement modes"
        )
    queries = payload.get("queries", {})
    if len(queries) < HETERO_MIN_QUERIES:
        failures.append(
            f"hetero: only {len(queries)} queries in the artifact "
            f"(expected >= {HETERO_MIN_QUERIES})"
        )
    for name, row in sorted(queries.items()):
        if not row.get("oracle_match", False):
            failures.append(f"hetero: {name} diverged from the oracle")
        if not row.get("cross_mode_match", False):
            failures.append(
                f"hetero: {name} results differ across placement modes"
            )
        vs_best = min(float(row["vs_cpu"]), float(row["vs_gpu"]))
        if vs_best < auto_floor:
            failures.append(
                f"hetero: {name} auto placement runs at {vs_best:.2f}x "
                f"the best pure placement, below the {auto_floor:.2f}x "
                "floor"
            )
    hybrid = payload.get("hybrid", {})
    if not hybrid:
        failures.append("hetero: artifact has no hybrid block")
    else:
        margin = min(
            float(hybrid.get("vs_cpu", 0.0)),
            float(hybrid.get("vs_gpu", 0.0)),
        )
        if margin < hybrid_floor:
            failures.append(
                f"hetero: best hybrid win ({hybrid.get('query')}) is "
                f"{margin:.2f}x over the pure placements, below the "
                f"{hybrid_floor:.2f}x floor"
            )
    shed = payload.get("shed", {})
    if not shed:
        failures.append("hetero: artifact has no shed block")
    else:
        completed = int(shed.get("completed", 0))
        total = int(shed.get("total", 0))
        if completed != total or total == 0:
            failures.append(
                f"hetero: only {completed}/{total} requests completed "
                "under pressure"
            )
        if int(shed.get("shed", 0)):
            failures.append(
                f"hetero: {shed['shed']} requests shed despite the CPU "
                "fallback"
            )
        if int(shed.get("shed_to_cpu", 0)) < 1:
            failures.append(
                "hetero: the pressure run never shed a request to the "
                "CPU (scenario unexercised)"
            )
        if not shed.get("oracle_matches", False):
            failures.append(
                "hetero: shed-to-cpu results diverged from the oracle"
            )
    return failures


#: Known artifact file names -> (short name, checker).
CHECKS = {
    "fig_fused_smoke.json": ("fused", check_fused),
    "fig_scaleout_smoke.json": ("scaleout", check_scaleout),
    "fig_serve_smoke.json": ("serve", check_serve),
    "fig_tpch_suite_smoke.json": ("tpch", check_tpch),
    "fig_tiered_smoke.json": ("tiered", check_tiered),
    "fig_cluster_smoke.json": ("cluster", check_cluster),
    "fig_hetero_smoke.json": ("hetero", check_hetero),
}


def _collect(paths: Sequence[str]) -> Dict[str, Path]:
    """Map short artifact names to the files found under ``paths``."""
    found: Dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = [
                hit for name in CHECKS for hit in sorted(path.rglob(name))
            ]
        else:
            candidates = [path]
        for candidate in candidates:
            entry = CHECKS.get(candidate.name)
            if entry is not None and candidate.is_file():
                found.setdefault(entry[0], candidate)
    return found


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on the smoke artifacts' performance floors."
    )
    parser.add_argument(
        "paths", nargs="+",
        help="smoke JSON files, or directories to search recursively",
    )
    parser.add_argument(
        "--require", default="serve,scaleout,fused",
        help="comma-separated artifacts that must be present "
             "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    required = [
        name.strip() for name in args.require.split(",") if name.strip()
    ]
    known = {short for short, _check in CHECKS.values()}
    unknown = sorted(set(required) - known)
    if unknown:
        parser.error(
            f"unknown artifact(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )

    found = _collect(args.paths)
    failures: List[str] = []
    for short in required:
        if short not in found:
            failures.append(f"{short}: required artifact not found")
    for _name, (short, check) in CHECKS.items():
        path = found.get(short)
        if path is None:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{short}: cannot parse {path}: {exc}")
            continue
        # Tag each failure with the offending artifact so a multi-lane
        # run pinpoints every file in one pass.
        result = [f"{failure}  [{path.name}]" for failure in check(payload)]
        failures.extend(result)
        status = "FAIL" if result else "ok"
        print(f"[{status:>4}] {short:<9} {path}")
    if failures:
        print("\nfloor gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nfloor gate passed: "
          f"{', '.join(sorted(found))} within their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
