"""Fig. QJ (inferred) — TPC-H join queries (Q3, Q4) per library and join
algorithm.

The decisive comparison of the paper: with no hashing in any library, the
join queries run on nested loops (or the composed sort-merge); the
handwritten hash join runs the *same logical plan* orders of magnitude
faster once the joins dominate.
"""

from _util import SCALE_FACTORS, out_dir, run_once
from repro.bench import write_report
from repro.core import default_framework
from repro.errors import UnsupportedOperatorError
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.tpch import q3, q4

#: (backend, join algorithm) configurations the figure reports.
CONFIGURATIONS = (
    ("thrust", "nested_loop"),
    ("thrust", "merge"),
    ("thrust+hash", "hash"),
    ("boost.compute", "nested_loop"),
    ("arrayfire", "nested_loop"),
    ("handwritten", "nested_loop"),
    ("handwritten", "hash"),
)


def _measure(framework, backend_name, catalog, plan):
    backend = framework.create(backend_name, Device())
    executor = QueryExecutor(backend, catalog)
    try:
        executor.execute(plan)  # cold
        return executor.execute(plan).report.simulated_ms
    except UnsupportedOperatorError:
        return None


def _render(title, rows):
    lines = [
        f"== {title} (warm, simulated ms) ==",
        f"{'SF':>8}  " + "  ".join(
            f"{name}/{algo}"[:22].rjust(22) for name, algo in CONFIGURATIONS
        ),
    ]
    for sf, cells in rows.items():
        rendered = [
            "n/a".rjust(22) if cells[cfg] is None else f"{cells[cfg]:22.4f}"
            for cfg in CONFIGURATIONS
        ]
        lines.append(f"{sf:8.3f}  " + "  ".join(rendered))
    return "\n".join(lines)


def _sweep(framework, tpch_catalogs, make_plan):
    rows = {}
    for sf in SCALE_FACTORS:
        catalog = tpch_catalogs[sf]
        cells = {}
        for name, algo in CONFIGURATIONS:
            cells[(name, algo)] = _measure(
                framework, name, catalog, make_plan(catalog, algo)
            )
        rows[sf] = cells
    return rows


def test_fig_tpch_q3_join_algorithms(benchmark, tpch_catalogs):
    framework = default_framework()

    def sweep():
        return _sweep(
            framework, tpch_catalogs,
            lambda catalog, algo: q3.plan(catalog, join_algorithm=algo),
        )

    rows = run_once(benchmark, sweep)
    text = _render("Fig. QJ-a: TPC-H Q3 by backend and join algorithm", rows)
    largest = rows[SCALE_FACTORS[-1]]
    speedup = (
        largest[("thrust", "nested_loop")] / largest[("handwritten", "hash")]
    )
    text += (
        f"\nhash-join plan speedup over thrust NLJ plan at "
        f"SF {SCALE_FACTORS[-1]}: {speedup:.1f}x"
    )
    print("\n" + text)
    write_report("fig_tpch_q3_joins", text, directory=out_dir())
    assert largest[("handwritten", "hash")] < largest[("thrust", "nested_loop")]
    assert largest[("thrust", "merge")] < largest[("thrust", "nested_loop")]
    # The hash plan beats the NLJ plan on the *same* backend at scale,
    # and the extension closes most of thrust's gap.
    assert (
        largest[("handwritten", "hash")]
        < largest[("handwritten", "nested_loop")]
    )
    assert (
        largest[("thrust+hash", "hash")] < largest[("thrust", "nested_loop")]
    )
    # The gap widens with scale (quadratic vs linear joins).
    first = rows[SCALE_FACTORS[0]]
    gap_small = (
        first[("thrust", "nested_loop")] / first[("handwritten", "hash")]
    )
    assert speedup > gap_small


def test_fig_tpch_q4_join_algorithms(benchmark, tpch_catalogs):
    framework = default_framework()

    def sweep():
        return _sweep(
            framework, tpch_catalogs,
            lambda _catalog, algo: q4.plan(join_algorithm=algo),
        )

    rows = run_once(benchmark, sweep)
    text = _render("Fig. QJ-b: TPC-H Q4 by backend and join algorithm", rows)
    print("\n" + text)
    write_report("fig_tpch_q4_joins", text, directory=out_dir())
    largest = rows[SCALE_FACTORS[-1]]
    assert largest[("handwritten", "hash")] < largest[("thrust", "nested_loop")]
