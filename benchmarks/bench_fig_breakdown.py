"""Breakdown figure (inferred) — where query time goes, per library.

TPC-H Q6 at a fixed scale factor, split into kernel / transfer / compile
time, cold and warm.  This regenerates the discussion the paper attaches
to its query measurements: chained library calls move intermediates, and
runtime-compiling libraries pay once per process.
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import write_report
from repro.core import default_framework
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.tpch import q6

SCALE_FACTOR = 0.02


def test_fig_q6_cost_breakdown(benchmark, tpch_catalogs):
    framework = default_framework()
    catalog = tpch_catalogs[SCALE_FACTOR]

    def collect():
        rows = {}
        for name in ALL_GPU:
            executor = QueryExecutor(framework.create(name, Device()), catalog)
            cold = executor.execute(q6.plan()).report
            warm = executor.execute(q6.plan()).report
            rows[name] = (cold, warm)
        return rows

    rows = run_once(benchmark, collect)
    lines = [
        f"== Q6 cost breakdown at SF {SCALE_FACTOR} (simulated ms) ==",
        f"{'backend':>16} {'run':>6}  {'total':>10}  {'kernel':>10}  "
        f"{'transfer':>10}  {'compile':>10}  {'kernels':>8}",
    ]
    for name, (cold, warm) in rows.items():
        for label, report in (("cold", cold), ("warm", warm)):
            breakdown = report.breakdown()
            lines.append(
                f"{name:>16} {label:>6}  {report.simulated_ms:10.4f}  "
                f"{breakdown['kernel'] * 1e3:10.4f}  "
                f"{breakdown['transfer'] * 1e3:10.4f}  "
                f"{breakdown['compile'] * 1e3:10.4f}  "
                f"{report.summary.kernel_count:8d}"
            )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_q6_breakdown", text, directory=out_dir())

    # Cold boost.compute time is mostly OpenCL program builds.
    cold_boost = rows["boost.compute"][0]
    assert cold_boost.breakdown()["compile"] > 0.5 * cold_boost.simulated_seconds
    # Warm runs compile nothing.
    for name in ALL_GPU:
        assert rows[name][1].breakdown()["compile"] == 0.0
    # ArrayFire launches the fewest kernels on Q6 (fusion).
    warm_kernels = {
        name: rows[name][1].summary.kernel_count for name in ALL_GPU
    }
    assert warm_kernels["arrayfire"] <= warm_kernels["thrust"]
    assert warm_kernels["arrayfire"] <= warm_kernels["boost.compute"]
