"""Fig. Q6 (inferred) — TPC-H Q6 runtime vs. scale factor per library.

Q6 is the canonical selection+reduction query: a three-way conjunctive
filter, a product, and a sum.  Warm numbers isolate steady-state library
quality; the cold column shows the first-query penalty (OpenCL builds,
ArrayFire JIT) the paper attributes to runtime compilation.
"""

import numpy as np

from _util import ALL_GPU, SCALE_FACTORS, out_dir, run_once
from repro.bench import write_report
from repro.core import default_framework
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.tpch import q6


def _measure(framework, backend_name, catalog):
    backend = framework.create(backend_name, Device())
    executor = QueryExecutor(backend, catalog)
    plan = q6.plan()
    cold = executor.execute(plan).report.simulated_ms
    warm = executor.execute(plan).report.simulated_ms
    return cold, warm


def test_fig_tpch_q6_scale_sweep(benchmark, tpch_catalogs):
    framework = default_framework()

    def sweep():
        rows = {}
        for sf in SCALE_FACTORS:
            rows[sf] = {
                name: _measure(framework, name, tpch_catalogs[sf])
                for name in ALL_GPU
            }
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        "== Fig. Q6: TPC-H Q6 vs scale factor (simulated ms) ==",
        f"{'SF':>8}  " + "  ".join(
            f"{name + ' warm':>18}  {name + ' cold':>18}" for name in ALL_GPU
        ),
    ]
    for sf, per_backend in rows.items():
        cells = []
        for name in ALL_GPU:
            cold, warm = per_backend[name]
            cells.append(f"{warm:18.4f}  {cold:18.4f}")
        lines.append(f"{sf:8.3f}  " + "  ".join(cells))
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_tpch_q6", text, directory=out_dir())

    largest = rows[SCALE_FACTORS[-1]]
    warm = {name: largest[name][1] for name in ALL_GPU}
    cold = {name: largest[name][0] for name in ALL_GPU}
    # Warm ordering: handwritten < thrust < boost; AF competitive with
    # thrust thanks to predicate fusion.
    assert warm["handwritten"] < warm["thrust"] < warm["boost.compute"]
    assert warm["arrayfire"] < warm["boost.compute"]
    # Cold boost is dominated by OpenCL program builds.
    assert cold["boost.compute"] > 3.0 * warm["boost.compute"]
    # Warm runtimes grow with SF for every library.
    for name in ALL_GPU:
        series = [rows[sf][name][1] for sf in SCALE_FACTORS]
        assert series[-1] > series[0]


def test_fig_tpch_q6_results_agree_across_backends(benchmark, tpch_catalogs):
    """All libraries must compute the same revenue (framework property)."""
    framework = default_framework()
    catalog = tpch_catalogs[SCALE_FACTORS[-1]]
    expected = q6.reference(catalog)["revenue"][0]

    def check():
        revenues = {}
        for name in ALL_GPU:
            executor = QueryExecutor(framework.create(name, Device()), catalog)
            result = executor.execute(q6.plan())
            revenues[name] = float(result.table.column("revenue").data[0])
        return revenues

    revenues = run_once(benchmark, check)
    for name, revenue in revenues.items():
        assert np.isclose(revenue, expected), name
