"""Extension — device heterogeneity.

The paper's opening motivation is "the increasing heterogeneity of GPUs
and their capabilities".  The simulator makes that sweep free: the same
library code on three device classes (GTX-1080-Ti-class discrete, V100
server, integrated-with-shared-memory).  Kernel-heavy operators favour
the big discrete parts; transfer-heavy single-pass queries let the
integrated device's shared-memory link claw time back.
"""

from _util import out_dir, run_once
from repro.bench import uniform_ints, write_report
from repro.core import default_framework
from repro.gpu import Device, GTX_1080TI, INTEGRATED_GPU, TESLA_V100
from repro.query import QueryExecutor
from repro.tpch import TpchGenerator, q6

SPECS = (GTX_1080TI, TESLA_V100, INTEGRATED_GPU)
SORT_N = 1 << 22


def test_ext_device_sweep(benchmark):
    framework = default_framework()
    catalog = TpchGenerator(scale_factor=0.02, seed=9).generate()
    sort_data = uniform_ints(SORT_N)

    def collect():
        rows = {}
        for spec in SPECS:
            backend = framework.create("thrust", Device(spec))
            # Kernel-heavy: a large sort on resident data.
            handle = backend.upload(sort_data)
            t0 = backend.device.clock.now
            backend.sort(handle)
            sort_ms = (backend.device.clock.now - t0) * 1e3
            # Transfer-heavy: Q6 including its column uploads.
            executor = QueryExecutor(
                framework.create("thrust", Device(spec)), catalog
            )
            executor.execute(q6.plan())
            report = executor.execute(q6.plan()).report
            rows[spec.name] = (sort_ms, report)
        return rows

    rows = run_once(benchmark, collect)
    lines = [
        "== Extension: one library (thrust), three device classes ==",
        f"{'device':>12}  {'sort ms':>10}  {'Q6 total':>10}  {'Q6 kernel':>10}"
        f"  {'Q6 transfer':>12}",
    ]
    for name, (sort_ms, report) in rows.items():
        breakdown = report.breakdown()
        lines.append(
            f"{name:>12}  {sort_ms:10.4f}  {report.simulated_ms:10.4f}  "
            f"{breakdown['kernel'] * 1e3:10.4f}  "
            f"{breakdown['transfer'] * 1e3:12.4f}"
        )
    lines.append(
        "(the integrated part loses 5x on kernels but wins 5x on the PCIe-"
        "free uploads — library portability lets one codebase span all "
        "three, the paper's core argument for libraries)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("ext_devices", text, directory=out_dir())

    sort = {name: row[0] for name, row in rows.items()}
    q6_report = {name: row[1] for name, row in rows.items()}
    # Kernel-heavy: server > discrete > integrated, by wide margins.
    assert sort["tesla-v100"] < sort["gtx-1080ti"] < sort["integrated"]
    assert sort["integrated"] > 5.0 * sort["gtx-1080ti"]
    # Transfer-heavy: the integrated link is the cheapest of the three.
    transfers = {
        name: report.breakdown()["transfer"]
        for name, report in q6_report.items()
    }
    assert transfers["integrated"] < transfers["tesla-v100"]
    assert transfers["integrated"] < transfers["gtx-1080ti"]
    # ...which keeps the integrated device within ~2x of discrete on Q6
    # despite its 5x kernel handicap.
    assert q6_report["integrated"].simulated_ms < (
        2.0 * q6_report["gtx-1080ti"].simulated_ms
    )
