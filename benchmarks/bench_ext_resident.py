"""Extension — resident columns vs. streaming uploads.

The paper's commercial-systems framing (SQreamDB, BlazingDB) assumes hot
columns live on the device.  This benchmark contrasts the streaming
regime (every query re-uploads its scan columns) with a
:class:`~repro.query.session.GpuSession` (upload once, reuse), over a
mixed Q6+Q1 workload.
"""

from _util import out_dir, run_once
from repro.bench import write_report
from repro.core import default_framework
from repro.gpu import Device
from repro.query import GpuSession, QueryExecutor
from repro.tpch import TpchGenerator, q1, q6

SCALE_FACTOR = 0.02
QUERIES_PER_KIND = 5


def test_ext_resident_columns(benchmark):
    framework = default_framework()
    catalog = TpchGenerator(scale_factor=SCALE_FACTOR, seed=13).generate()
    plans = [q6.plan(), q1.plan()] * QUERIES_PER_KIND

    def measure():
        streaming_backend = framework.create("thrust", Device())
        streaming = QueryExecutor(streaming_backend, catalog)
        streaming_ms = 0.0
        streaming_transfer = 0.0
        for plan in plans:
            report = streaming.execute(plan).report
            streaming_ms += report.simulated_ms
            streaming_transfer += report.breakdown()["transfer"] * 1e3

        session = GpuSession(framework.create("thrust", Device()), catalog)
        resident_ms = 0.0
        resident_transfer = 0.0
        for plan in plans:
            report = session.execute(plan).report
            resident_ms += report.simulated_ms
            resident_transfer += report.breakdown()["transfer"] * 1e3
        return (
            streaming_ms, streaming_transfer,
            resident_ms, resident_transfer,
            session.resident_bytes,
        )

    (streaming_ms, streaming_transfer, resident_ms, resident_transfer,
     resident_bytes) = run_once(benchmark, measure)
    text = "\n".join([
        f"== Extension: resident vs streaming columns "
        f"({len(plans)} queries, Q6+Q1 mix, SF {SCALE_FACTOR}, thrust) ==",
        f"  streaming: {streaming_ms:10.3f} ms total "
        f"({streaming_transfer:8.3f} ms in transfers)",
        f"  resident:  {resident_ms:10.3f} ms total "
        f"({resident_transfer:8.3f} ms in transfers, "
        f"{resident_bytes / 1e6:.1f} MB pinned)",
        f"  speedup: {streaming_ms / resident_ms:.2f}x "
        "(all of it recovered transfer time)",
    ])
    print("\n" + text)
    write_report("ext_resident", text, directory=out_dir())

    assert resident_ms < streaming_ms
    # Residual transfers = first-run uploads + per-query result downloads.
    assert resident_transfer < 0.3 * streaming_transfer
    # The saving equals the avoided transfer time (kernels unchanged).
    saving = streaming_ms - resident_ms
    transfer_saving = streaming_transfer - resident_transfer
    assert abs(saving - transfer_saving) < 0.05 * streaming_ms
