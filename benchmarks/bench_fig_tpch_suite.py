"""Fig. TPC-H suite (new) — the whole 16-query suite, end to end.

"Rethinking Analytical Processing in the GPU Era" benchmarks whole-suite
TPC-H rather than single queries; with the SQL frontend the simulator
can finally do the same.  Every registered query runs end to end — the
ten SQL-frontend queries from their SQL *text* (parse → bind → optimize
→ execute), the four legacy hand-built plans plus Q5/Q10 from their
builders — on the handwritten (expert eager) backend and the compiled
(fused-pipeline) backend, warm, and each result is checked against the
query module's NumPy oracle before any time is reported.

Acceptance floors:

* every query's result matches its oracle (exact ints, ``allclose``
  floats) on both backends;
* the compiled backend is never slower than the eager baseline on any
  query (``RATIO_CEILING``);
* in the smoke artifact, each query's warm end-to-end time stays under a
  per-query ceiling (``CEILING_MS``) — the times are *simulated* and
  deterministic, so absolute ceilings are stable gates, not flaky ones.

Run under pytest for the SF sweep, or directly with ``--smoke`` for the
CI fast lane: per-query warm runtimes and oracle verdicts saved to
``fig_tpch_suite_smoke.json`` (parsed by ``check_floors.py``).
"""

import inspect

import numpy as np

from _util import out_dir, run_once
from common import write_smoke_json
from repro.bench import write_report
from repro.core import CompiledBackend, default_framework
from repro.gpu import GTX_1080TI, Device
from repro.query import QueryExecutor
from repro.sql import sql_to_plan
from repro.tpch import ALL_QUERIES, SQL_QUERIES, TpchGenerator

CATALOG_SEED = 19920101
SMOKE_SCALE_FACTOR = 0.005
SWEEP_SCALE_FACTORS = (0.002, 0.005)

#: Compiled may never be slower than the eager baseline on any query.
RATIO_CEILING = 1.0

#: Per-query ceilings (ms, warm, handwritten, SF 0.005) for the smoke
#: gate — roughly 2x the measured simulated time, which is deterministic.
CEILING_MS = {
    "Q1": 1.1, "Q3": 1.1, "Q4": 0.6, "Q5": 1.2, "Q6": 0.35,
    "Q7": 1.6, "Q8": 2.0, "Q9": 1.9, "Q10": 0.7, "Q11": 0.7,
    "Q12": 0.7, "Q14": 0.55, "Q16": 0.6, "Q18": 0.75, "Q19": 0.7,
    "Q22": 0.6,
}


def _catalog(scale_factor):
    return TpchGenerator(
        scale_factor=scale_factor, seed=CATALOG_SEED
    ).generate()


def _plan_of(name, catalog):
    """The query's plan: from SQL text when the module ships it."""
    module = ALL_QUERIES[name]
    if name in SQL_QUERIES:
        return sql_to_plan(module.sql(), catalog)
    if "catalog" in inspect.signature(module.plan).parameters:
        return module.plan(catalog)
    return module.plan()


def _reference_of(name, catalog):
    module = ALL_QUERIES[name]
    if "catalog" in inspect.signature(module.reference).parameters:
        expected = module.reference(catalog)
    else:
        expected = module.reference()
    # Q3/Q10-style oracles return the full sorted result and leave the
    # LIMIT to the caller; apply it so shapes line up.  Q3 hardcodes its
    # top-10 in the plan rather than in its params.
    limit = getattr(
        module.DEFAULT_PARAMS, "limit", 10 if name == "Q3" else None
    )
    if limit is not None:
        expected = {name: data[:limit] for name, data in expected.items()}
    return expected


def _matches(table, expected):
    """True when ``table`` equals the oracle columns (allclose floats)."""
    num_rows = len(next(iter(expected.values()))) if expected else 0
    if table.num_rows != num_rows:
        return False
    for column, want in expected.items():
        if column not in table.column_names:
            return False
        got = table.column(column).data
        if np.issubdtype(np.asarray(want).dtype, np.floating):
            if not np.allclose(got, want, rtol=1e-9):
                return False
        elif not np.array_equal(got, want):
            return False
    return True


def _warm(executor, plan):
    executor.execute(plan)
    return executor.execute(plan)


def _run_suite(catalog):
    """(name -> (eager result, fused result)) for every query, warm."""
    results = {}
    for name in sorted(ALL_QUERIES, key=lambda q: int(q[1:])):
        plan = _plan_of(name, catalog)
        eager = _warm(
            QueryExecutor(
                default_framework().create("handwritten", Device(GTX_1080TI)),
                catalog,
            ),
            plan,
        )
        fused = _warm(
            QueryExecutor(
                CompiledBackend(Device(GTX_1080TI), fusion="auto"), catalog
            ),
            plan,
        )
        results[name] = (eager, fused)
    return results


def test_fig_tpch_suite(benchmark):
    def sweep():
        return [
            (scale_factor, _catalog(scale_factor))
            for scale_factor in SWEEP_SCALE_FACTORS
        ]

    catalogs = run_once(benchmark, sweep)

    lines = [
        "== Fig. TPC-H suite: all 16 queries end to end "
        "(SQL-frontend queries from SQL text), warm ==",
        f"{'SF':>6}  {'query':>6}  {'eager ms':>9}  {'fused ms':>9}  "
        f"{'ratio':>6}  {'rows':>6}  {'source':>7}",
    ]
    for scale_factor, catalog in catalogs:
        for name, (eager, fused) in _run_suite(catalog).items():
            expected = _reference_of(name, catalog)
            assert _matches(eager.table, expected), (scale_factor, name)
            assert _matches(fused.table, expected), (scale_factor, name)
            eager_ms = eager.report.simulated_seconds * 1e3
            fused_ms = fused.report.simulated_seconds * 1e3
            ratio = fused_ms / eager_ms
            source = "sql" if name in SQL_QUERIES else "builder"
            lines.append(
                f"{scale_factor:6.3f}  {name:>6}  {eager_ms:9.4f}  "
                f"{fused_ms:9.4f}  {ratio:6.2f}  "
                f"{eager.table.num_rows:6d}  {source:>7}"
            )
            # Acceptance: fusion never loses to the eager chain.
            assert ratio <= RATIO_CEILING, (scale_factor, name, ratio)
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_tpch_suite", text, directory=out_dir())


def _smoke() -> int:
    """CI fast lane: the full suite once, per-query metrics as JSON."""
    catalog = _catalog(SMOKE_SCALE_FACTOR)
    payload = {
        "scale_factor": SMOKE_SCALE_FACTOR,
        "ratio_ceiling": RATIO_CEILING,
        "queries": {},
    }
    for name, (eager, fused) in _run_suite(catalog).items():
        expected = _reference_of(name, catalog)
        eager_ms = eager.report.simulated_seconds * 1e3
        fused_ms = fused.report.simulated_seconds * 1e3
        payload["queries"][name] = {
            "warm_ms": eager_ms,
            "compiled_ms": fused_ms,
            "ratio": fused_ms / eager_ms,
            "rows": eager.table.num_rows,
            "from_sql": name in SQL_QUERIES,
            "oracle_match": (
                _matches(eager.table, expected)
                and _matches(fused.table, expected)
            ),
            "ceiling_ms": CEILING_MS[name],
        }
    path = write_smoke_json("fig_tpch_suite_smoke.json", payload)
    worst = max(
        payload["queries"].items(),
        key=lambda kv: kv[1]["warm_ms"] / kv[1]["ceiling_ms"],
    )
    print(
        f"tpch suite smoke (SF {SMOKE_SCALE_FACTOR}): "
        f"{len(payload['queries'])} queries, "
        f"{sum(r['from_sql'] for r in payload['queries'].values())} from "
        f"SQL text; tightest ceiling {worst[0]} "
        f"{worst[1]['warm_ms']:.3f}/{worst[1]['ceiling_ms']:.2f} ms "
        f"-> {path}"
    )
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(lambda args: _smoke(), doc=__doc__)
