"""Fig. Q1 (inferred) — TPC-H Q1 runtime vs. scale factor per library.

Q1 is the grouped-aggregation stress test: 8 aggregates over 2 group
keys.  The library realization re-sorts per reduce_by_key call (the
"chained library calls" overhead the paper criticises), while the
handwritten backend's hash aggregation never sorts.
"""

from _util import ALL_GPU, SCALE_FACTORS, out_dir, run_once
from repro.bench import write_report
from repro.core import default_framework
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.tpch import q1


def test_fig_tpch_q1_scale_sweep(benchmark, tpch_catalogs):
    framework = default_framework()

    def sweep():
        rows = {}
        for sf in SCALE_FACTORS:
            per_backend = {}
            for name in ALL_GPU:
                executor = QueryExecutor(
                    framework.create(name, Device()), tpch_catalogs[sf]
                )
                plan = q1.plan()
                executor.execute(plan)  # cold
                per_backend[name] = executor.execute(plan).report.simulated_ms
            rows[sf] = per_backend
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        "== Fig. Q1: TPC-H Q1 vs scale factor (warm, simulated ms) ==",
        f"{'SF':>8}  " + "  ".join(f"{name:>16}" for name in ALL_GPU),
    ]
    for sf, per_backend in rows.items():
        lines.append(
            f"{sf:8.3f}  "
            + "  ".join(f"{per_backend[name]:16.4f}" for name in ALL_GPU)
        )
    largest = rows[SCALE_FACTORS[-1]]
    lines.append(
        f"handwritten speedup over thrust at SF {SCALE_FACTORS[-1]}: "
        f"{largest['thrust'] / largest['handwritten']:.1f}x "
        "(hash aggregation vs sort-per-aggregate)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_tpch_q1", text, directory=out_dir())

    assert largest["handwritten"] * 2.0 < largest["thrust"]
    assert largest["thrust"] < largest["boost.compute"]
    for name in ALL_GPU:
        series = [rows[sf][name] for sf in SCALE_FACTORS]
        assert series[-1] > series[0]
