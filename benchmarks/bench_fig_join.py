"""Fig. J (inferred) — join algorithms across libraries.

Two views:

* the only join every library can express (nested loops via
  ``for_each_n`` / batched gfor) swept over the outer-relation size;
* the algorithm ladder at a fixed size — library NLJ vs. the composed
  sort-merge join vs. the handwritten hash join that **no library can
  express** (the paper's headline "unused tuning potential").
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import (
    fk_join_keys,
    render_all,
    run_simple_sweep,
    write_report,
)
from repro.core import default_framework
from repro.errors import UnsupportedOperatorError
from repro.gpu import Device

OUTER_SIZES = (1 << 12, 1 << 14, 1 << 16)
INNER_SIZE = 1 << 14
LADDER_OUTER = 1 << 17
LADDER_INNER = 1 << 15


def _setup(backend, n_outer):
    left, right = fk_join_keys(n_outer, INNER_SIZE)
    return backend.upload(left), backend.upload(right)


def _run_nlj(backend, state):
    backend.nested_loop_join(*state)


def test_fig_join_nlj_size_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            f"Fig. J-a: nested-loops join vs outer size (inner={INNER_SIZE})",
            ALL_GPU, OUTER_SIZES, _setup, _run_nlj,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_join_nlj", text, directory=out_dir())
    last = {name: result.ms(name)[-1] for name in ALL_GPU}
    # ArrayFire's partial-support NLJ (materialised boolean matrices)
    # trails the STL libraries' for_each_n loop.
    assert last["arrayfire"] > last["thrust"]


def test_fig_join_algorithm_ladder(benchmark):
    """NLJ vs composed merge join vs hash join at one size."""
    framework = default_framework()
    left, right = fk_join_keys(LADDER_OUTER, LADDER_INNER)

    def measure(backend_name, method):
        backend = framework.create(backend_name, Device())
        handles = backend.upload(left), backend.upload(right)
        runner = getattr(backend, method)
        try:
            runner(*handles)  # warm (compiles for boost)
        except UnsupportedOperatorError:
            return None
        t0 = backend.device.clock.now
        runner(*handles)
        return (backend.device.clock.now - t0) * 1e3

    def ladder():
        rows = []
        for name in ALL_GPU:
            for method in ("nested_loop_join", "merge_join", "hash_join"):
                rows.append((name, method, measure(name, method)))
        return rows

    rows = run_once(benchmark, ladder)
    lines = [
        f"== Fig. J-b: join algorithm ladder "
        f"(outer={LADDER_OUTER}, inner={LADDER_INNER}, FK join, warm) ==",
        f"{'backend':>16}  {'algorithm':>18}  {'simulated ms':>14}",
    ]
    timings = {}
    for name, method, ms in rows:
        text_ms = "n/a (Table II: unsupported)" if ms is None else f"{ms:14.4f}"
        lines.append(f"{name:>16}  {method:>18}  {text_ms}")
        timings[(name, method)] = ms
    nlj = timings[("thrust", "nested_loop_join")]
    hash_join = timings[("handwritten", "hash_join")]
    lines.append(
        f"hash join speedup over library NLJ: {nlj / hash_join:10.1f}x "
        "(the paper's 'unused tuning potential')"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_join_ladder", text, directory=out_dir())
    # Libraries cannot hash-join; the expert kernel runs away with it.
    for library in ("thrust", "boost.compute", "arrayfire"):
        assert timings[(library, "hash_join")] is None
    assert nlj / hash_join > 100.0
