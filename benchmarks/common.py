"""Shared CLI and artifact plumbing for the ``bench_fig_*`` smoke lanes.

Every figure script with a CI fast lane used to carry the same three
blocks of boilerplate: an ``argparse`` tail that accepts ``--smoke`` and
refuses anything else, the canonical smoke-artifact write
(``json.dump(..., indent=1)`` plus a trailing newline — the byte format
``check_floors.py`` and the CI artifact diffs rely on), and the
``SystemExit`` plumbing.  This module is that boilerplate, once.

Usage, at the bottom of a figure script::

    if __name__ == "__main__":
        from common import smoke_main
        smoke_main(lambda args: _smoke(), doc=__doc__)

Scripts with extra knobs pass an ``add_args`` hook::

    smoke_main(
        lambda args: _smoke(args.clients, args.requests),
        doc=__doc__,
        add_args=lambda parser: [
            parser.add_argument("--clients", type=int, default=2),
            parser.add_argument("--requests", type=int, default=8),
        ],
    )
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from _util import out_dir

#: The refusal printed when a figure script is run without ``--smoke``:
#: the full sweeps only make sense under pytest(-benchmark).
NOT_SMOKE_ERROR = "run under pytest for the full sweep, or pass --smoke"


def write_smoke_json(filename: str, payload: Dict[str, Any]) -> Path:
    """Write ``payload`` as a smoke artifact; returns the path.

    One canonical byte format — ``indent=1`` plus a trailing newline —
    so artifacts diff cleanly across lanes and ``check_floors.py`` can
    parse any of them.
    """
    path = out_dir() / filename
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return path


def smoke_main(
    smoke: Callable[[argparse.Namespace], Optional[int]],
    doc: Optional[str] = None,
    add_args: Optional[Callable[[argparse.ArgumentParser], Any]] = None,
    help_text: str = "run the tiny CI smoke configuration",
) -> None:
    """The standard figure-script entry point.

    Parses ``--smoke`` (plus whatever ``add_args`` registers on the
    parser), refuses a smoke-less invocation with :data:`NOT_SMOKE_ERROR`,
    runs ``smoke(args)``, and exits with its return code.
    """
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("--smoke", action="store_true", help=help_text)
    if add_args is not None:
        add_args(parser)
    args = parser.parse_args()
    if not args.smoke:
        parser.error(NOT_SMOKE_ERROR)
    raise SystemExit(smoke(args))
