"""Fig. S (inferred) — selection runtime per library.

Two sweeps, matching the paper's per-operator methodology:

* input size at fixed 10% selectivity;
* selectivity at fixed input size (output-size sensitivity).

Expected shape: handwritten < ArrayFire (fused ``where``) < Thrust
(transform/scan/scatter chain) < Boost.Compute (same chain at OpenCL tier).
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import (
    render_all,
    render_bar_chart,
    render_series,
    run_simple_sweep,
    selection_workload,
    write_report,
)
from repro.core import col_lt

SIZES = (1 << 16, 1 << 18, 1 << 20, 1 << 22)
SELECTIVITIES = (0.01, 0.1, 0.5, 0.9)
FIXED_N = 1 << 20


def _setup_size(backend, n):
    workload = selection_workload(n, selectivity=0.1)
    return {
        "handle": backend.upload(workload.data),
        "threshold": workload.threshold,
    }


def _setup_selectivity(backend, selectivity):
    workload = selection_workload(FIXED_N, selectivity=selectivity)
    return {
        "handle": backend.upload(workload.data),
        "threshold": workload.threshold,
    }


def _run(backend, state):
    backend.selection({"x": state["handle"]}, col_lt("x", state["threshold"]))


def test_fig_selection_size_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            "Fig. S-a: selection vs input size (selectivity 10%, warm)",
            ALL_GPU, SIZES, _setup_size, _run,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    text += "\n\n" + render_bar_chart(result)
    print("\n" + text)
    write_report("fig_selection_size", text, directory=out_dir())
    # Shape assertions: the paper's qualitative result at the largest size.
    last = {name: result.ms(name)[-1] for name in ALL_GPU}
    assert last["handwritten"] < last["arrayfire"]
    assert last["arrayfire"] < last["thrust"]
    assert last["thrust"] < last["boost.compute"]


def test_fig_selection_selectivity_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            f"Fig. S-b: selection vs selectivity (n={FIXED_N}, warm)",
            ALL_GPU, SELECTIVITIES, _setup_selectivity, _run,
        )

    result = run_once(benchmark, sweep)
    text = render_series(result, point_header="selectivity")
    print("\n" + text)
    write_report("fig_selection_selectivity", text, directory=out_dir())
    # Higher selectivity writes more row ids -> strictly more time.
    for name in ALL_GPU:
        series = result.ms(name)
        assert series[0] < series[-1]
