"""Fig. hetero (new) — CPU+GPU co-execution: crossovers, hybrid wins, shed.

Shanbhag et al. ("A Study of the Fundamental Performance Characteristics
of GPUs and CPUs for Database Analytics") show the CPU/GPU crossover is
per-operator: transfer cost alone decides small builds and
low-selectivity scans.  This figure drives the heterogeneous placement
layer (:mod:`repro.hetero`) through exactly those regimes:

* **size crossover** — a single-column sort, swept over row counts: at a
  few hundred rows two host dispatches beat a kernel launch plus PCIe
  latency, past a few thousand the GPU's radix passes at device
  bandwidth win.  The placement must *flip* along the axis;
* **selectivity crossover** — a filtered global aggregate at fixed size,
  swept over the filter's selectivity (passed explicitly to the
  placement model): low selectivity means the PCIe scan upload is pure
  overhead and the CPU wins, high selectivity feeds enough gather/agg
  traffic to the GPU's bandwidth advantage.  Again: the placement flips;
* **whole-suite hybrid** — all 16 TPC-H queries under pure-CPU,
  pure-GPU, and cost-chosen (auto) placement, every result checked
  against the NumPy oracle *and* across modes (bit-identity is the
  executor's core contract).  At least one query with a genuinely mixed
  placement must beat **both** pure placements by ``HYBRID_FLOOR``;
* **pressure shed** — a serving run whose admission budget is far below
  the working set, with ``shed_to_cpu`` enabled: every request must
  complete (none shed), a nonzero number on the host, all results
  oracle-identical.

Run under pytest for the report, or with ``--smoke`` for the CI fast
lane: the crossover tables, per-query mode comparison, hybrid-win
margins and shed outcome are saved to ``fig_hetero_smoke.json``
(parsed by ``check_floors.py --require hetero``).
"""

import numpy as np

from _util import out_dir, run_once
from bench_fig_tpch_suite import ALL_QUERIES, _matches, _plan_of, _reference_of
from common import write_smoke_json
from repro.bench import write_report
from repro.core import default_framework
from repro.core.expr import col
from repro.core.predicate import col_lt
from repro.hetero import CPU, GPU, HeterogeneousExecutor, PlacementModel, place_pipelines
from repro.query.pipeline import lower_plan
from repro.query.plan import Aggregate, Filter, GroupBy, OrderBy, Scan
from repro.relational.table import Table
from repro.serve import QueryServer, QuerySpec, ServerConfig, repeated_workload
from repro.tpch import TpchGenerator

CATALOG_SEED = 11
SMOKE_SCALE_FACTOR = 0.02

#: On at least one TPC-H query, the cost-chosen *hybrid* placement must
#: beat both pure placements by this factor.
HYBRID_FLOOR = 1.15

#: Auto placement may never pay more than 25% over the best pure
#: placement on any query (the cost model is allowed to be imperfect,
#: not wrong).
AUTO_REGRESSION_FLOOR = 0.8

#: Row counts for the size crossover (single-column sort).  The model
#: flips around ~4k rows: below it CPU dispatch wins, above it device
#: bandwidth does.
SIZE_AXIS = (256, 1024, 4096, 16384, 65536)

#: Selectivities for the selectivity crossover (filter + global sum over
#: 200k rows).  The model flips around ~0.35.
SELECTIVITY_AXIS = (0.05, 0.2, 0.35, 0.5, 0.8, 0.95)
SELECTIVITY_ROWS = 200_000

#: Admission budget for the pressure-shed run — far below the TPC-H
#: working set at SF 0.02, so large queries cannot be admitted and the
#: CPU fallback is the only way to complete them.
SHED_BUDGET_BYTES = 3_000_000
SHED_QUERIES = ("Q1", "Q6", "Q12")


def _catalog(scale_factor):
    return TpchGenerator(
        scale_factor=scale_factor, seed=CATALOG_SEED
    ).generate()


def _size_catalog(rows):
    rng = np.random.default_rng(7)
    return {"series": Table.from_arrays("series", {"v": rng.random(rows)})}


def _size_plan():
    return OrderBy(Scan("series"), "v")


def _selectivity_catalog():
    rng = np.random.default_rng(7)
    return {
        "events": Table.from_arrays(
            "events", {"v": rng.random(SELECTIVITY_ROWS)}
        )
    }


def _selectivity_plan():
    filtered = Filter(Scan("events"), col_lt("v", 0.5))
    return GroupBy(filtered, (), (Aggregate("total", "sum", col("v")),))


def _placement_devices(plan, catalog, model, selectivity=None):
    """The device string ("cpu"/"gpu"/"mixed") auto placement chooses."""
    program = lower_plan(plan, catalog=catalog)
    placement = place_pipelines(
        program, catalog, model, selectivity=selectivity
    )
    devices = set(placement.devices)
    if devices == {CPU}:
        return CPU
    if devices == {GPU}:
        return GPU
    return "mixed"


def _crossover_size(model):
    """[(rows, device)] along the size axis, plus endpoint bit-identity."""
    points = []
    for rows in SIZE_AXIS:
        catalog = _size_catalog(rows)
        points.append(
            (rows, _placement_devices(_size_plan(), catalog, model))
        )
    # Endpoints run for real, in all three modes, against the NumPy sort.
    identical = True
    for rows in (SIZE_AXIS[0], SIZE_AXIS[-1]):
        catalog = _size_catalog(rows)
        expected = np.sort(catalog["series"].column("v").data)
        for mode in ("cpu", "gpu", "auto"):
            executor = HeterogeneousExecutor(
                default_framework().create("compiled"), catalog
            )
            result = executor.execute(_size_plan(), mode=mode)
            if not np.array_equal(result.table.column("v").data, expected):
                identical = False
    return points, identical


def _crossover_selectivity(model):
    """[(selectivity, device)] with the fraction given to the model."""
    catalog = _selectivity_catalog()
    plan = _selectivity_plan()
    return [
        (fraction, _placement_devices(plan, catalog, model, fraction))
        for fraction in SELECTIVITY_AXIS
    ]


def _flipped(points):
    """True when both devices appear and the flip is a single switch."""
    devices = [device for _x, device in points]
    if not (CPU in devices and GPU in devices):
        return False
    return devices == sorted(devices, key=devices.index)


def _run_suite(catalog):
    """name -> per-mode microseconds, placement string, oracle verdicts."""
    results = {}
    for name in sorted(ALL_QUERIES, key=lambda q: int(q[1:])):
        executor = HeterogeneousExecutor(
            default_framework().create("compiled"), catalog
        )
        plan = _plan_of(name, catalog)
        expected = _reference_of(name, catalog)
        times, tables, placements = {}, {}, {}
        for mode in ("cpu", "gpu", "auto"):
            executor.execute(plan, mode=mode)  # warm: amortise the JIT
            result = executor.execute(plan, mode=mode)
            times[mode] = result.report.simulated_seconds
            tables[mode] = result.table
            placements[mode] = "".join(
                device[0].upper()
                for device in executor.last_placement.devices
            )
        oracle_match = all(
            _matches(tables[mode], expected) for mode in tables
        )
        cross_mode_match = tables["cpu"].equals(tables["gpu"]) and tables[
            "gpu"
        ].equals(tables["auto"])
        results[name] = {
            "placement": placements["auto"],
            "hybrid": len(set(placements["auto"])) > 1,
            "auto_us": times["auto"] * 1e6,
            "cpu_us": times["cpu"] * 1e6,
            "gpu_us": times["gpu"] * 1e6,
            "vs_cpu": times["cpu"] / times["auto"],
            "vs_gpu": times["gpu"] / times["auto"],
            "oracle_match": oracle_match,
            "cross_mode_match": cross_mode_match,
        }
    return results


def _best_hybrid(queries):
    """The mixed-placement query with the largest min(vs_cpu, vs_gpu)."""
    candidates = {
        name: row for name, row in queries.items() if row["hybrid"]
    }
    name = max(
        candidates,
        key=lambda n: min(candidates[n]["vs_cpu"], candidates[n]["vs_gpu"]),
    )
    row = candidates[name]
    return {
        "query": name,
        "placement": row["placement"],
        "vs_cpu": row["vs_cpu"],
        "vs_gpu": row["vs_gpu"],
    }


def _run_shed(catalog):
    """One pressure run with the CPU fallback on; oracle-checked."""
    specs = [
        QuerySpec(name=name, plan=_plan_of(name, catalog))
        for name in SHED_QUERIES
    ]
    workload = repeated_workload(
        specs, rate=2000.0, repeats=4, tenants=("tenant-a", "tenant-b"),
        seed=3,
    )
    config = ServerConfig(
        num_streams=2,
        admission_budget_bytes=SHED_BUDGET_BYTES,
        shed_to_cpu=True,
        keep_results=True,
        result_cache=False,
    )
    backend = default_framework().create("compiled")
    with QueryServer(backend, catalog, config) as server:
        report = server.run(workload)
    metrics = report.metrics
    oracle_matches = all(
        _matches(record.table, _reference_of(record.name, catalog))
        for record in report.records
    )
    return {
        "total": metrics.total_requests,
        "completed": metrics.completed,
        "shed": metrics.shed,
        "shed_to_cpu": metrics.shed_to_cpu,
        "oracle_matches": oracle_matches,
        "p99_latency_s": metrics.p99_latency,
    }


def _collect(scale_factor):
    """The full figure payload (shared by the pytest run and the smoke)."""
    model = PlacementModel.default()
    size_points, size_identical = _crossover_size(model)
    selectivity_points = _crossover_selectivity(model)
    catalog = _catalog(scale_factor)
    queries = _run_suite(catalog)
    return {
        "scale_factor": scale_factor,
        "floors": {
            "hybrid_floor": HYBRID_FLOOR,
            "auto_regression_floor": AUTO_REGRESSION_FLOOR,
        },
        "crossover": {
            "size": {
                "axis": [rows for rows, _d in size_points],
                "devices": [device for _r, device in size_points],
                "flipped": _flipped(size_points),
                "endpoints_identical": size_identical,
            },
            "selectivity": {
                "axis": [fraction for fraction, _d in selectivity_points],
                "devices": [device for _f, device in selectivity_points],
                "flipped": _flipped(selectivity_points),
            },
        },
        "queries": queries,
        "hybrid": _best_hybrid(queries),
        "shed": _run_shed(catalog),
    }


def _assert_floors(payload):
    crossover = payload["crossover"]
    assert crossover["size"]["flipped"], crossover["size"]
    assert crossover["size"]["endpoints_identical"]
    assert crossover["selectivity"]["flipped"], crossover["selectivity"]
    for name, row in payload["queries"].items():
        assert row["oracle_match"], name
        assert row["cross_mode_match"], name
        vs_best = min(row["vs_cpu"], row["vs_gpu"])
        assert vs_best >= AUTO_REGRESSION_FLOOR, (name, vs_best)
    hybrid = payload["hybrid"]
    assert min(hybrid["vs_cpu"], hybrid["vs_gpu"]) >= HYBRID_FLOOR, hybrid
    shed = payload["shed"]
    assert shed["completed"] == shed["total"], shed
    assert shed["shed"] == 0, shed
    assert shed["shed_to_cpu"] > 0, shed
    assert shed["oracle_matches"]


def test_fig_hetero(benchmark):
    payload = run_once(benchmark, lambda: _collect(SMOKE_SCALE_FACTOR))
    _assert_floors(payload)

    lines = [
        "== Fig. hetero: CPU+GPU co-execution "
        f"(SF {payload['scale_factor']}, warm) ==",
        "-- size crossover (sort) --",
    ]
    for rows, device in zip(
        payload["crossover"]["size"]["axis"],
        payload["crossover"]["size"]["devices"],
    ):
        lines.append(f"{rows:8d} rows -> {device}")
    lines.append("-- selectivity crossover (filter + agg) --")
    for fraction, device in zip(
        payload["crossover"]["selectivity"]["axis"],
        payload["crossover"]["selectivity"]["devices"],
    ):
        lines.append(f"{fraction:8.2f}      -> {device}")
    lines.append(
        f"{'query':>6}  {'placement':>12}  {'auto us':>9}  {'cpu us':>9}  "
        f"{'gpu us':>9}  {'vs cpu':>6}  {'vs gpu':>6}"
    )
    for name, row in payload["queries"].items():
        lines.append(
            f"{name:>6}  {row['placement']:>12}  {row['auto_us']:9.1f}  "
            f"{row['cpu_us']:9.1f}  {row['gpu_us']:9.1f}  "
            f"{row['vs_cpu']:6.2f}  {row['vs_gpu']:6.2f}"
        )
    hybrid = payload["hybrid"]
    shed = payload["shed"]
    lines.append(
        f"hybrid win: {hybrid['query']} ({hybrid['placement']}) "
        f"{hybrid['vs_cpu']:.2f}x vs cpu, {hybrid['vs_gpu']:.2f}x vs gpu "
        f"(floor {HYBRID_FLOOR}x)"
    )
    lines.append(
        f"pressure shed: {shed['completed']}/{shed['total']} completed, "
        f"{shed['shed_to_cpu']} on the host, 0 shed"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_hetero", text, directory=out_dir())


def _smoke() -> int:
    """CI fast lane: the whole figure once, floors asserted, JSON saved."""
    payload = _collect(SMOKE_SCALE_FACTOR)
    _assert_floors(payload)
    path = write_smoke_json("fig_hetero_smoke.json", payload)
    hybrid = payload["hybrid"]
    shed = payload["shed"]
    print(
        f"hetero smoke (SF {SMOKE_SCALE_FACTOR}): crossovers flipped, "
        f"{len(payload['queries'])} queries oracle-identical x3 modes; "
        f"hybrid win {hybrid['query']} {hybrid['vs_cpu']:.2f}x/"
        f"{hybrid['vs_gpu']:.2f}x (floor {HYBRID_FLOOR}x); "
        f"shed-to-cpu {shed['shed_to_cpu']}/{shed['total']} "
        f"-> {path}"
    )
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(lambda args: _smoke(), doc=__doc__)
