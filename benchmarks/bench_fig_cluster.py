"""Fig. cluster (new) — multi-node serving: failover and elasticity.

Two experiments on the ``repro.cluster`` layer, both bit-deterministic
(seeded workloads on the simulated clock, NETWORK-tier fabric between
nodes):

* **failover** — a seeded open-loop mix (Q6/Q1/Q3/Q4) replayed twice on
  a 4-node, replication-2 cluster: once healthy, once with node 1 killed
  30% into the healthy run's makespan.  Queries in flight on the dead
  node fail over to surviving replicas with deterministic backoff.
  Asserted: every request completes (zero failed, zero lost-and-
  unreported), at least one failover actually happened, every completed
  result is bit-identical to the single-device NumPy-free oracle
  (``QueryExecutor`` on a fresh device), and the failure run's p99 stays
  within 2x the healthy p99.
* **elasticity** — the same mix on 1 fixed node vs 4 fixed nodes
  (saturated: arrival rate well past single-node capacity, result cache
  off so every request does device work), asserting >= 1.5x throughput
  from scale-out; plus an elastic run starting at 1 active node with
  queue-depth-driven scale-up, asserting the cluster actually grew and
  beat the single node.

Run directly with ``--smoke`` for the CI fast lane: a smaller replay of
both scenarios that writes ``benchmarks/out/fig_cluster_smoke.json``
for ``check_floors.py --require cluster``.
"""


from _util import out_dir
from common import write_smoke_json
from repro.bench import write_report
from repro.cluster import Cluster, ClusterConfig, ClusterServer
from repro.core import default_framework
from repro.gpu import GTX_1080TI, Device
from repro.query import QueryExecutor
from repro.serve import OpenLoopWorkload, QuerySpec
from repro.tpch import TpchGenerator
from repro.tpch.queries import q1, q3, q4, q6

SCALE_FACTOR = 0.01
CATALOG_SEED = 7
WORKLOAD_SEED = 11

NUM_REQUESTS = 200
#: Arrival rate, well past single-node capacity (~4k req/s at SF 0.01)
#: so the 1-node baseline is queue-bound and scale-out pays.
ARRIVAL_RATE = 20000.0
TENANTS = ("tenant-0", "tenant-1", "tenant-2", "tenant-3")

NODES = 4
REPLICATION = 2
#: Node killed mid-run and where in the healthy makespan it dies.
KILLED_NODE = 1
KILL_FRACTION = 0.3

#: CI-gated floors (also embedded in the smoke artifact).
P99_RATIO_CEILING = 2.0
SCALEOUT_FLOOR = 1.5


def _catalog(scale_factor=SCALE_FACTOR):
    return TpchGenerator(
        scale_factor=scale_factor, seed=CATALOG_SEED
    ).generate()


def _specs(catalog):
    return [
        QuerySpec("Q6", q6.plan()),
        QuerySpec("Q1", q1.plan()),
        QuerySpec("Q3", q3.plan(catalog)),
        QuerySpec("Q4", q4.plan()),
    ]


def _workload(catalog, num_requests=NUM_REQUESTS, rate=ARRIVAL_RATE):
    return OpenLoopWorkload(
        _specs(catalog), rate=rate, num_requests=num_requests,
        tenants=TENANTS, seed=WORKLOAD_SEED,
    )


def _config(**kwargs):
    kwargs.setdefault("policy", "sjf")
    kwargs.setdefault("result_cache", False)
    return ClusterConfig(**kwargs)


def _run(catalog, num_nodes, workload, *, replication=REPLICATION,
         kill=None, **config_kwargs):
    cluster = Cluster(
        num_nodes, catalog, "handwritten", replication=replication,
        framework=default_framework(),
    )
    if kill is not None:
        cluster.fail_node_at(*kill)
    with ClusterServer(cluster, _config(**config_kwargs)) as server:
        return server.run(workload)


def _oracle_tables(catalog):
    """Ground-truth result per query shape, on a fresh single device."""
    device = Device(GTX_1080TI, allocator="pool")
    backend = default_framework().create("handwritten", device)
    executor = QueryExecutor(backend, catalog)
    return {
        spec.name: executor.execute(spec.plan).table
        for spec in _specs(catalog)
    }


def _oracle_matches(records, oracles):
    """True when every completed result table equals its oracle."""
    done = [r for r in records if r.completed]
    return bool(done) and all(
        r.table is not None and r.table.equals(oracles[r.name])
        for r in done
    )


def _failover_pair(catalog, num_requests=NUM_REQUESTS, rate=ARRIVAL_RATE):
    """(healthy report, failure report, kill time) on the same workload."""
    healthy = _run(catalog, NODES, _workload(catalog, num_requests, rate))
    kill_time = healthy.metrics.makespan * KILL_FRACTION
    failure = _run(
        catalog, NODES, _workload(catalog, num_requests, rate),
        kill=(KILLED_NODE, kill_time), keep_results=True,
    )
    return healthy, failure, kill_time


def test_fig_cluster_failover(benchmark):
    catalog = _catalog()

    def scenario():
        return _failover_pair(catalog)

    healthy, failure, kill_time = benchmark.pedantic(
        scenario, rounds=1, iterations=1, warmup_rounds=0
    )
    ratio = failure.metrics.p99_latency / healthy.metrics.p99_latency
    oracle_ok = _oracle_matches(failure.records, _oracle_tables(catalog))
    lines = [
        "== Fig. cluster-failover: node kill mid-run on a 4-node, "
        f"replication-{REPLICATION} cluster ({NUM_REQUESTS} requests, "
        f"Q6/Q1/Q3/Q4, sjf, handwritten) ==",
        f"{'run':>9}  {'thr/s':>8}  {'p50 ms':>8}  {'p99 ms':>8}  "
        f"{'done':>5}  {'failed':>6}",
    ]
    for label, report in (("healthy", healthy), ("node-kill", failure)):
        m = report.metrics
        lines.append(
            f"{label:>9}  {m.throughput:8.0f}  {m.p50_latency * 1e3:8.3f}  "
            f"{m.p99_latency * 1e3:8.3f}  {m.completed:5d}  {m.failed:6d}"
        )
    lines.append(
        f"-- killed node {KILLED_NODE} at {kill_time * 1e3:.3f} ms: "
        f"{failure.failovers} failovers, p99 ratio {ratio:.2f}x "
        f"(ceiling {P99_RATIO_CEILING:.1f}x), oracle "
        f"{'bit-identical' if oracle_ok else 'DIVERGED'} --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_cluster_failover", text, directory=out_dir())

    # Acceptance: nothing lost, nothing silently dropped, real failovers.
    assert failure.metrics.completed == NUM_REQUESTS
    assert failure.metrics.failed == 0
    assert failure.unreported == []
    assert failure.failovers >= 1
    assert KILLED_NODE in failure.dead_nodes
    # Completed results stay bit-identical to the single-device oracle.
    assert oracle_ok
    # Tail under failure stays within the ceiling of the healthy tail.
    assert ratio <= P99_RATIO_CEILING, ratio


def test_fig_cluster_elastic_scaleout(benchmark):
    catalog = _catalog()

    def scenario():
        one = _run(
            catalog, 1, _workload(catalog), replication=1
        )
        four = _run(catalog, NODES, _workload(catalog))
        elastic = _run(
            catalog, NODES, _workload(catalog), initial_nodes=1
        )
        return one, four, elastic

    one, four, elastic = benchmark.pedantic(
        scenario, rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = four.metrics.throughput / one.metrics.throughput
    elastic_gain = elastic.metrics.throughput / one.metrics.throughput
    scale_events = [
        (entry["event"], entry["node"]) for entry in elastic.timeline
        if entry["event"].startswith("scale")
    ]
    lines = [
        "== Fig. cluster-elastic: saturated scale-out "
        f"({ARRIVAL_RATE:.0f} req/s offered, {NUM_REQUESTS} requests, "
        "result cache off) ==",
        f"{'fleet':>12}  {'thr/s':>8}  {'p99 ms':>8}  {'requests/node':>24}",
    ]
    for label, report in (
        ("1 fixed", one), (f"{NODES} fixed", four), ("elastic 1->", elastic)
    ):
        m = report.metrics
        lines.append(
            f"{label:>12}  {m.throughput:8.0f}  "
            f"{m.p99_latency * 1e3:8.3f}  {str(report.node_requests):>24}"
        )
    lines.append(
        f"-- scale-out {speedup:.2f}x (floor {SCALEOUT_FLOOR:.1f}x); "
        f"elastic grew to {len(elastic.active_nodes)} nodes "
        f"({elastic_gain:.2f}x over 1 fixed) via {scale_events} --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_cluster_elastic", text, directory=out_dir())

    # Acceptance: saturated throughput scales >= 1.5x from 1 -> 4 nodes.
    assert speedup >= SCALEOUT_FLOOR, speedup
    # The elastic fleet actually grew and beat the single node.
    assert len(elastic.active_nodes) > 1, elastic.active_nodes
    assert any(event == "scale_up" for event, _node in scale_events)
    assert elastic_gain > 1.0, elastic_gain
    # Every fleet completes the full workload.
    for report in (one, four, elastic):
        assert report.metrics.completed == NUM_REQUESTS
        assert report.unreported == []


#: Smoke scale: smaller catalog and workload, same floors.
SMOKE_SCALE_FACTOR = 0.004
SMOKE_REQUESTS = 96
SMOKE_RATE = 20000.0


def _smoke() -> int:
    """CI fast lane: both scenarios at smoke scale, floors embedded."""
    catalog = _catalog(SMOKE_SCALE_FACTOR)
    one = _run(
        catalog, 1, _workload(catalog, SMOKE_REQUESTS, SMOKE_RATE),
        replication=1,
    )
    four = _run(catalog, NODES, _workload(catalog, SMOKE_REQUESTS, SMOKE_RATE))
    elastic = _run(
        catalog, NODES, _workload(catalog, SMOKE_REQUESTS, SMOKE_RATE),
        initial_nodes=1,
    )
    kill_time = four.metrics.makespan * KILL_FRACTION
    failure = _run(
        catalog, NODES, _workload(catalog, SMOKE_REQUESTS, SMOKE_RATE),
        kill=(KILLED_NODE, kill_time), keep_results=True,
    )
    oracle_ok = _oracle_matches(failure.records, _oracle_tables(catalog))
    speedup = four.metrics.throughput / one.metrics.throughput
    ratio = failure.metrics.p99_latency / four.metrics.p99_latency
    payload = {
        "failover": {
            "healthy_p99_s": four.metrics.p99_latency,
            "failure_p99_s": failure.metrics.p99_latency,
            "ratio": ratio,
            "total": failure.metrics.total_requests,
            "completed": failure.metrics.completed,
            "failed": failure.metrics.failed,
            "unreported": len(failure.unreported),
            "failovers": failure.failovers,
            "oracle_matches": oracle_ok,
            "killed_node": KILLED_NODE,
            "kill_time_s": kill_time,
        },
        "elastic": {
            "throughput_1": one.metrics.throughput,
            "throughput_n": four.metrics.throughput,
            "nodes": NODES,
            "speedup": speedup,
            "elastic_throughput": elastic.metrics.throughput,
            "scale_events": [
                entry["event"] for entry in elastic.timeline
                if entry["event"].startswith("scale")
            ],
        },
        "floors": {
            "p99_ratio_ceiling": P99_RATIO_CEILING,
            "scaleout_floor": SCALEOUT_FLOOR,
        },
    }
    path = write_smoke_json("fig_cluster_smoke.json", payload)
    print(
        f"cluster smoke: {failure.metrics.completed} completed under "
        f"node kill ({failure.failovers} failovers, p99 ratio "
        f"{ratio:.2f}x), scale-out {speedup:.2f}x -> {path}"
    )
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(lambda args: _smoke(), doc=__doc__)
