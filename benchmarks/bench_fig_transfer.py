"""Transfer figure (inferred) — PCIe transfer share of operator time.

The paper's Section II notes that chained library calls cause "unwanted
intermediate data movements"; this figure quantifies the *edge*
transfers: how the one-time column upload compares to the on-device
operator time, per input size.  Small inputs are transfer-dominated,
which is why GPU offloading only pays off beyond a size threshold.
"""

from _util import out_dir, run_once
from repro.bench import selection_workload, write_report
from repro.core import ThrustBackend, col_lt
from repro.gpu import Device

SIZES = (1 << 14, 1 << 17, 1 << 20, 1 << 23)


def test_fig_transfer_vs_compute(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            backend = ThrustBackend(Device())
            workload = selection_workload(n, 0.1)
            device = backend.device
            t0 = device.clock.now
            handle = backend.upload(workload.data)
            upload_ms = (device.clock.now - t0) * 1e3
            predicate = col_lt("x", workload.threshold)
            backend.selection({"x": handle}, predicate)  # warm
            t0 = device.clock.now
            backend.selection({"x": handle}, predicate)
            op_ms = (device.clock.now - t0) * 1e3
            rows.append((n, upload_ms, op_ms))
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        "== Transfer vs compute: column upload against one warm selection "
        "(thrust) ==",
        f"{'n':>12}  {'upload ms':>12}  {'selection ms':>14}  "
        f"{'upload share':>14}",
    ]
    for n, upload_ms, op_ms in rows:
        share = upload_ms / (upload_ms + op_ms)
        lines.append(
            f"{n:12d}  {upload_ms:12.4f}  {op_ms:14.4f}  {share:13.1%}"
        )
    lines.append(
        "(PCIe is ~35x slower per byte than device DRAM: once sizes "
        "amortise kernel-launch overheads, the one-time upload dominates a "
        "single operator pass — the reason resident columnar data is the "
        "GPU DBMS norm)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_transfer", text, directory=out_dir())

    # At small n the operator's fixed launch costs dominate; at large n
    # upload dominates and its share keeps growing with size.
    shares = [upload / (upload + op) for _n, upload, op in rows]
    assert all(a < b for a, b in zip(shares, shares[1:]))
    assert shares[-1] > 0.7
    assert rows[-1][1] > rows[-1][2]
