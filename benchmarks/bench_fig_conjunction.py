"""Fig. C (inferred) — conjunctive and disjunctive selections.

Sweeps the number of ANDed predicates.  This is where the realization
strategies of Table II diverge most: ArrayFire fuses k comparisons into
one JIT kernel (+ one ``where``), while the STL libraries launch one
``transform`` per comparison plus one ``bit_and`` per combine.
"""

import numpy as np

from _util import ALL_GPU, out_dir, run_once
from repro.bench import render_all, run_simple_sweep, uniform_ints, write_report
from repro.core import col_gt, conjunction, disjunction

N = 1 << 20
PREDICATE_COUNTS = (1, 2, 3, 4)


def _make_setup(combine):
    def setup(backend, k):
        columns = {}
        predicates = []
        for i in range(k):
            data = uniform_ints(N, seed=100 + i)
            columns[f"c{i}"] = backend.upload(data)
            predicates.append(col_gt(f"c{i}", 250_000))
        return {"columns": columns, "predicate": combine(predicates)}

    return setup


def _run(backend, state):
    backend.selection(state["columns"], state["predicate"])


def test_fig_conjunction_predicate_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            f"Fig. C-a: conjunctive selection vs #predicates (n={N}, warm)",
            ALL_GPU, PREDICATE_COUNTS, _make_setup(conjunction), _run,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_conjunction", text, directory=out_dir())
    # ArrayFire's advantage over Thrust grows with predicate count (fusion).
    ratio_at = [
        thrust_ms / af_ms
        for thrust_ms, af_ms in zip(result.ms("thrust"), result.ms("arrayfire"))
    ]
    assert ratio_at[-1] > ratio_at[0]


def test_fig_disjunction_predicate_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            f"Fig. C-b: disjunctive selection vs #predicates (n={N}, warm)",
            ALL_GPU, PREDICATE_COUNTS[1:], _make_setup(disjunction), _run,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_disjunction", text, directory=out_dir())
    for name in ALL_GPU:
        assert all(ms is not None for ms in result.ms(name))


def test_fig_conjunction_set_ops_vs_fused(benchmark):
    """Table II's literal ArrayFire realization (per-leaf ``where`` +
    ``setIntersect``) against the fused strategy."""
    from repro.core import ArrayFireBackend
    from repro.gpu import Device

    data = [uniform_ints(N, seed=200 + i) for i in range(3)]
    predicate = conjunction(
        [col_gt(f"c{i}", 250_000) for i in range(3)]
    )

    def measure(strategy: str) -> float:
        backend = ArrayFireBackend(Device(), conjunction_strategy=strategy)
        columns = {f"c{i}": backend.upload(data[i]) for i in range(3)}
        backend.selection(columns, predicate)  # warm
        t0 = backend.device.clock.now
        ids = backend.selection(columns, predicate)
        elapsed = (backend.device.clock.now - t0) * 1e3
        return elapsed, np.sort(backend.download(ids).astype(np.int64))

    def compare():
        fused_ms, fused_ids = measure("fused")
        setops_ms, setops_ids = measure("set_ops")
        assert np.array_equal(fused_ids, setops_ids)
        return fused_ms, setops_ms

    fused_ms, setops_ms = run_once(benchmark, compare)
    text = (
        "== Fig. C-c: ArrayFire conjunction strategies (3 predicates, "
        f"n={N}, warm) ==\n"
        f"  fused (where on fused mask):        {fused_ms:10.4f} ms\n"
        f"  set_ops (where per leaf + setIntersect): {setops_ms:10.4f} ms\n"
        f"  set-ops / fused ratio:              {setops_ms / fused_ms:10.2f}x"
    )
    print("\n" + text)
    write_report("fig_conjunction_af_strategies", text, directory=out_dir())
    assert fused_ms < setops_ms
