"""Calibration appendix — the cost model behind every figure.

Dumps the constants the simulation rests on and the steady-state
throughputs they imply, for the default device and the V100 preset.
DESIGN.md points here for "why do these gaps have these magnitudes".
"""

from _util import out_dir, run_once
from repro.bench import render_calibration_report, write_report
from repro.gpu import GTX_1080TI, TESLA_V100


def test_calibration_report(benchmark):
    def build() -> str:
        return "\n\n".join(
            render_calibration_report(spec)
            for spec in (GTX_1080TI, TESLA_V100)
        )

    text = run_once(benchmark, build)
    print("\n" + text)
    write_report("calibration", text, directory=out_dir())
    assert "boost.compute" in text
    assert "tesla-v100" in text
