"""Fig. R (inferred) — reduction (sum over a column).

The simplest operator: every library has full support (Table II), so the
figure isolates pure kernel-tier efficiency plus per-launch overheads.
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import (
    render_all,
    run_simple_sweep,
    uniform_floats,
    write_report,
)

SIZES = (1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)


def _setup(backend, n):
    return backend.upload(uniform_floats(n))


def _run(backend, handle):
    backend.reduction(handle, "sum")


def test_fig_reduction_size_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            "Fig. R: reduction (sum) vs input size (warm)",
            ALL_GPU, SIZES, _setup, _run,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_reduction", text, directory=out_dir())
    last = {name: result.ms(name)[-1] for name in ALL_GPU}
    # Memory-bound operator: ordering follows memory-tier efficiency.
    assert last["handwritten"] <= last["thrust"]
    assert last["thrust"] < last["boost.compute"]
    # Large-n scaling is linear (last/first ≈ size ratio within 2x).
    for name in ALL_GPU:
        series = result.ms(name)
        ratio = series[-1] / series[-2]
        assert 2.0 < ratio < 8.0
