"""Fig. overlap (new) — chunked scans vs. the max(transfer, compute) bound.

A Q6-style selection that *materialises* its qualifying rows moves data
across PCIe in both directions: column uploads (H2D), selection + gather
kernels (compute), and the filtered result download (D2H).  Executed
serially those three phases add up; executed in chunks on rotating
streams they pipeline, so the makespan approaches the busiest single
engine — the classic CUDA-streams overlap figure.

The sweep varies chunk count at several input sizes.  One chunk on one
stream reproduces the serial timeline bit-exactly (asserted); at the
largest input the best chunked configuration must beat serial by >= 1.3x
(acceptance floor; the measured curve peaks around 8 chunks and dips
again at 16 as per-chunk fixed costs — PCIe latency, kernel launches —
start to dominate).
"""

import numpy as np

from _util import out_dir, run_once
from repro.bench import write_report
from repro.core import default_framework
from repro.core.expr import col
from repro.core.predicate import col_lt
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.query.builder import scan
from repro.relational.table import Table

#: Rows in the synthetic lineitem sample, smallest to largest.
ROW_COUNTS = (100_000, 400_000, 1_600_000)

#: (chunks, streams) configurations swept at every size; (1, 1) is the
#: serial-equivalence control.
CONFIGS = ((1, 1), (2, 2), (4, 3), (8, 3), (16, 3))


def _lineitem_sample(n: int, seed: int = 42) -> Table:
    """A Q6-shaped lineitem sample: the three columns Q6's predicate and
    revenue expression touch, with TPC-H-like value distributions."""
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        "lineitem",
        {
            "l_quantity": rng.integers(1, 51, n).astype(np.float64),
            "l_extendedprice": rng.uniform(900.0, 105_000.0, n),
            "l_discount": rng.uniform(0.0, 0.1, n),
        },
    )


def _selection_plan():
    """Q6-style selection materialising qualifying rows (~78% pass
    ``l_quantity < 40``), so all three engines carry real traffic."""
    return (
        scan("lineitem")
        .filter(col_lt("l_quantity", 40))
        .project(
            [
                ("l_extendedprice", col("l_extendedprice")),
                ("l_discount", col("l_discount")),
                ("revenue", col("l_extendedprice") * col("l_discount")),
            ]
        )
        .build()
    )


def _measure(framework, catalog, chunks=None, streams=2):
    backend = framework.create("thrust", Device())
    executor = QueryExecutor(
        backend, catalog, scan_chunks=chunks, scan_streams=streams
    )
    result = executor.execute(_selection_plan())
    stats = backend.device.engine_summary()
    return result, stats


def test_fig_overlap_chunk_sweep(benchmark):
    framework = default_framework()

    def sweep():
        rows = {}
        for n in ROW_COUNTS:
            catalog = {"lineitem": _lineitem_sample(n)}
            serial, _ = _measure(framework, catalog)
            per_config = {}
            for chunks, streams in CONFIGS:
                result, stats = _measure(framework, catalog, chunks, streams)
                per_config[(chunks, streams)] = (result, stats)
            rows[n] = (serial, per_config)
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "== Fig. overlap: chunked Q6-style selection vs serial "
        "(simulated ms, thrust) ==",
        f"{'rows':>10}  {'serial':>10}  " + "  ".join(
            f"{f'{c}ch/{s}st':>10}" for c, s in CONFIGS
        ) + f"  {'best':>6}  {'bound':>6}",
    ]
    for n, (serial, per_config) in rows.items():
        serial_ms = serial.report.simulated_ms
        cells = []
        best = serial_ms
        bound_ms = 0.0
        for key in CONFIGS:
            result, stats = per_config[key]
            ms = result.report.simulated_ms
            best = min(best, ms)
            bound_ms = max(bound_ms, max(stats.busy_by_engine.values()) * 1e3)
            cells.append(f"{ms:10.4f}")
        lines.append(
            f"{n:10d}  {serial_ms:10.4f}  " + "  ".join(cells)
            + f"  {serial_ms / best:5.2f}x  {serial_ms / bound_ms:5.2f}x"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_overlap", text, directory=out_dir())

    for n, (serial, per_config) in rows.items():
        # Semantics are chunking-invariant: same rows out of every config.
        expected = serial.table
        for (chunks, streams), (result, _stats) in per_config.items():
            assert result.table.num_rows == expected.num_rows, (n, chunks)
            assert np.allclose(
                result.table.column("revenue").data,
                expected.column("revenue").data,
            ), (n, chunks)
        # The serial-equivalence control: 1 chunk / 1 stream is bit-exact.
        control, _ = per_config[(1, 1)]
        assert control.report.simulated_seconds == serial.report.simulated_seconds

    # Acceptance: at the largest input the best chunked configuration
    # beats serial by at least 1.3x and never beats the busiest-engine
    # (max of transfer/compute) lower bound.
    largest = ROW_COUNTS[-1]
    serial, per_config = rows[largest]
    serial_s = serial.report.simulated_seconds
    best_s = min(
        result.report.simulated_seconds for result, _ in per_config.values()
    )
    assert serial_s / best_s >= 1.3, serial_s / best_s
    for (chunks, streams), (result, stats) in per_config.items():
        bound = max(stats.busy_by_engine.values())
        assert result.report.simulated_seconds >= bound or chunks == 1
