"""Table II — mapping of library functions to database operators.

Regenerates the support matrix from the live backends and asserts it
matches the paper cell-for-cell (support levels).
"""

from _util import LIBRARIES, out_dir, run_once
from repro.bench import write_report
from repro.core import compare_with_paper, default_framework, render_table_ii


def test_table2_support_matrix(benchmark):
    framework = default_framework()
    backends = [framework.create(name) for name in LIBRARIES]

    def build() -> str:
        return render_table_ii(backends)

    text = run_once(benchmark, build)
    mismatches = compare_with_paper(backends)
    assert mismatches == [], mismatches
    print("\n" + text)
    write_report("table2_support", text, directory=out_dir())


def test_table2_extended_with_cudf(benchmark):
    """Extension: the same matrix with the cuDF-class backend appended —
    the hash-join row flips from three dashes to full support."""
    framework = default_framework()
    backends = [
        framework.create(name) for name in LIBRARIES + ("cudf",)
    ]

    def build() -> str:
        return render_table_ii(backends)

    text = run_once(benchmark, build)
    print("\n" + text)
    write_report("table2_support_extended", text, directory=out_dir())
    hash_row = next(
        line for line in text.splitlines() if line.startswith("Hash Join")
    )
    assert "inner_join" in hash_row
    assert hash_row.count(" - ") >= 2  # the studied libraries still lack it
