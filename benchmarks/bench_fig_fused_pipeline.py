"""Fig. fused-pipeline (new) — whole-pipeline compilation vs the eager chain.

The paper measures libraries that execute a query as a chain of
per-operator kernels (ArrayFire's JIT fuses element-wise chains only);
Eiger-style whole-pipeline compilation runs each pipeline segment as ONE
generated kernel touching DRAM once.  This figure quantifies that gap on
the simulator with the ``compiled`` backend against the ``handwritten``
baseline (the paper's expert-tuned eager kernels):

* **speedup figure** — TPC-H Q1 and Q6, warm (program cache and resident
  data primed), at SF 0.01 and 0.02.  The floor asserts the **kernel
  time** ratio: both backends share a fixed per-query tail (result D2H,
  the post-group-by sort, the group-key round-trip) that fusion cannot
  touch and that shrinks with scale, so kernel time is the honest
  measure of the execution-model gap.  End-to-end ratios are reported
  alongside.
* **fusion on/off ablation** — the same compiled backend with fusion
  forced off replays the eager chain exactly, isolating fusion (not
  operator quality) as the win, across the TPC-H scale-factor sweep.

Results are asserted bit-identical to the eager baseline in every
configuration.  Run directly with ``--smoke`` for the CI fast lane:
kernel/e2e speedups for both queries saved to ``fig_fused_smoke.json``
under the report directory (the benchmark-floor gate parses it).
"""


import numpy as np

from _util import SCALE_FACTORS, out_dir, run_once
from common import write_smoke_json
from repro.bench import write_report
from repro.core import CompiledBackend, default_framework
from repro.gpu import GTX_1080TI, Device
from repro.query import QueryExecutor
from repro.tpch import TpchGenerator
from repro.tpch.queries import q1, q6

CATALOG_SEED = 19920101

#: Acceptance floor: fused/eager *kernel-time* speedup on Q1 and Q6.
FUSED_FLOOR = 2.0
#: Scale factors the floor is asserted at.  Fusion's advantage is
#: launch-bound below this range; far above it Q6's narrow predicate
#: starts to favour the eager early-exit (the cost model's loss case,
#: see DESIGN.md) and the ratio decays toward parity.
FLOOR_SCALE_FACTORS = (0.01, 0.02)
SMOKE_SCALE_FACTOR = 0.01


def _catalog(scale_factor):
    return TpchGenerator(
        scale_factor=scale_factor, seed=CATALOG_SEED
    ).generate()


def _plans():
    return {"Q1": q1.plan(), "Q6": q6.plan()}


def _eager_executor(catalog):
    backend = default_framework().create("handwritten", Device(GTX_1080TI))
    return QueryExecutor(backend, catalog)


def _compiled_executor(catalog, fusion):
    backend = CompiledBackend(Device(GTX_1080TI), fusion=fusion)
    return QueryExecutor(backend, catalog)


def _warm(executor, plan):
    """Cold run primes the program cache; the second run is measured."""
    executor.execute(plan)
    return executor.execute(plan)


def _assert_identical(actual, expected, context):
    assert actual.column_names == expected.column_names, context
    assert actual.num_rows == expected.num_rows, context
    for name in expected.column_names:
        a = actual.column(name).data
        b = expected.column(name).data
        assert a.dtype == b.dtype and np.array_equal(a, b), (context, name)


def _measure(catalog, plan):
    """Warm eager + warm fused runs; returns (eager, fused) results."""
    eager = _warm(_eager_executor(catalog), plan)
    fused = _warm(_compiled_executor(catalog, "on"), plan)
    return eager, fused


def test_fig_fused_pipeline(benchmark):
    def sweep():
        rows = []
        for scale_factor in FLOOR_SCALE_FACTORS:
            catalog = _catalog(scale_factor)
            for name, plan in _plans().items():
                eager, fused = _measure(catalog, plan)
                rows.append((scale_factor, name, eager, fused))
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "== Fig. fused-pipeline: compiled (1 kernel/segment) vs "
        "handwritten (eager chain), warm ==",
        f"{'SF':>6}  {'query':>6}  {'eager krn ms':>13}  "
        f"{'fused krn ms':>13}  {'krn speedup':>12}  {'e2e speedup':>12}",
    ]
    speedups = {}
    for scale_factor, name, eager, fused in rows:
        eager_kernel = eager.report.breakdown()["kernel"]
        fused_kernel = fused.report.breakdown()["kernel"]
        kernel_speedup = eager_kernel / fused_kernel
        e2e_speedup = (
            eager.report.simulated_seconds / fused.report.simulated_seconds
        )
        speedups[(scale_factor, name)] = kernel_speedup
        lines.append(
            f"{scale_factor:6.2f}  {name:>6}  {eager_kernel * 1e3:13.4f}  "
            f"{fused_kernel * 1e3:13.4f}  {kernel_speedup:11.2f}x  "
            f"{e2e_speedup:11.2f}x"
        )
        _assert_identical(
            fused.table, eager.table, (scale_factor, name)
        )
    floor_line = ", ".join(
        f"{name} @ SF {sf:.2f}: {value:.2f}x"
        for (sf, name), value in speedups.items()
    )
    lines.append(f"-- kernel-time floor {FUSED_FLOOR:.1f}x: {floor_line} --")
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_fused_pipeline", text, directory=out_dir())

    # Acceptance: >= 2x kernel time over the expert eager baseline on
    # both queries at both scale factors.
    for key, value in speedups.items():
        assert value >= FUSED_FLOOR, (key, value)


def test_fig_fused_ablation(benchmark):
    """Fusion on vs off on the SAME backend: the off path replays the
    eager chain (compiled:: namespace), isolating fusion as the win."""

    def sweep():
        rows = []
        for scale_factor in SCALE_FACTORS:
            catalog = _catalog(scale_factor)
            plan = q6.plan()
            on = _warm(_compiled_executor(catalog, "on"), plan)
            off = _warm(_compiled_executor(catalog, "off"), plan)
            rows.append((scale_factor, on, off))
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "== Fig. fused-pipeline ablation: Q6, compiled backend, fusion "
        "on vs off (warm) ==",
        f"{'SF':>6}  {'off krn ms':>11}  {'on krn ms':>10}  "
        f"{'speedup':>8}  {'off kernels':>12}  {'on kernels':>11}",
    ]
    for scale_factor, on, off in rows:
        on_kernel = on.report.breakdown()["kernel"]
        off_kernel = off.report.breakdown()["kernel"]
        lines.append(
            f"{scale_factor:6.3f}  {off_kernel * 1e3:11.4f}  "
            f"{on_kernel * 1e3:10.4f}  {off_kernel / on_kernel:7.2f}x  "
            f"{off.report.summary.kernel_count:12d}  "
            f"{on.report.summary.kernel_count:11d}"
        )
        _assert_identical(on.table, off.table, scale_factor)
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_fused_ablation", text, directory=out_dir())

    # Acceptance: fusion wins at every swept size (launch-bound at the
    # small end, DRAM-pass-bound at the large end), and the fused plan
    # launches strictly fewer kernels.
    for scale_factor, on, off in rows:
        assert (
            on.report.breakdown()["kernel"]
            < off.report.breakdown()["kernel"]
        ), scale_factor
        assert (
            on.report.summary.kernel_count
            < off.report.summary.kernel_count
        ), scale_factor


def _smoke() -> int:
    """CI fast-lane: warm Q1/Q6 speedups at one SF, metrics as JSON."""
    catalog = _catalog(SMOKE_SCALE_FACTOR)
    payload = {
        "floor": FUSED_FLOOR,
        "scale_factor": SMOKE_SCALE_FACTOR,
        "queries": {},
    }
    for name, plan in _plans().items():
        eager, fused = _measure(catalog, plan)
        _assert_identical(fused.table, eager.table, name)
        eager_kernel = eager.report.breakdown()["kernel"]
        fused_kernel = fused.report.breakdown()["kernel"]
        payload["queries"][name] = {
            "kernel_ms_eager": eager_kernel * 1e3,
            "kernel_ms_fused": fused_kernel * 1e3,
            "kernel_speedup": eager_kernel / fused_kernel,
            "e2e_speedup": (
                eager.report.simulated_seconds
                / fused.report.simulated_seconds
            ),
        }
    path = write_smoke_json("fig_fused_smoke.json", payload)
    summary = ", ".join(
        f"{name} {row['kernel_speedup']:.2f}x"
        for name, row in payload["queries"].items()
    )
    print(
        f"fused smoke (SF {SMOKE_SCALE_FACTOR}): {summary} "
        f"(floor {FUSED_FLOOR:.1f}x) -> {path}"
    )
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(lambda args: _smoke(), doc=__doc__)
