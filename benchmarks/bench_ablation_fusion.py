"""Ablation 1 — how much of ArrayFire's selection advantage is JIT fusion?

Runs the same conjunctive selection with (a) fusion on, (b) fusion off
(every element-wise op evaluated eagerly, like an STL library), and
compares against Thrust.  DESIGN.md calls this design choice out as the
mechanism behind ArrayFire's Table II "full support" column for
selections.

Scope note: this measures ArrayFire's **element-wise JIT fusion** — the
lazy evaluation that collapses a chain of map-style ops (the predicate
arithmetic of one selection) into one generated kernel.  It fuses only
within an operator's expression; the pipeline still materialises between
operators.  **Whole-pipeline fusion** — scan → filter → probe →
partial-aggregate as one kernel, the ``compiled`` backend — is a
different, larger mechanism, ablated separately in
``bench_fig_fused_pipeline.py``.  Don't read this figure as the ceiling
on fusion.
"""

import numpy as np

from _util import out_dir, run_once
from repro.bench import uniform_ints, write_report
from repro.core import ArrayFireBackend, ThrustBackend, col_gt, conjunction
from repro.gpu import Device

N = 1 << 21
PREDICATES = 3


def _selection_time(backend, data_columns, predicate) -> float:
    columns = {
        name: backend.upload(data) for name, data in data_columns.items()
    }
    backend.selection(columns, predicate)  # warm
    t0 = backend.device.clock.now
    backend.selection(columns, predicate)
    return (backend.device.clock.now - t0) * 1e3


def test_ablation_jit_fusion(benchmark):
    data_columns = {
        f"c{i}": uniform_ints(N, seed=300 + i) for i in range(PREDICATES)
    }
    predicate = conjunction(
        [col_gt(f"c{i}", 500_000) for i in range(PREDICATES)]
    )

    def measure():
        fused = _selection_time(
            ArrayFireBackend(Device(), fusion_enabled=True),
            data_columns, predicate,
        )
        unfused = _selection_time(
            ArrayFireBackend(Device(), fusion_enabled=False),
            data_columns, predicate,
        )
        thrust = _selection_time(
            ThrustBackend(Device()), data_columns, predicate
        )
        return fused, unfused, thrust

    fused, unfused, thrust = run_once(benchmark, measure)
    edge_with = thrust / fused
    edge_without = thrust / unfused
    text = "\n".join([
        f"== Ablation 1: ArrayFire element-wise JIT fusion "
        f"({PREDICATES}-predicate conjunction, n={N}, warm) ==",
        f"  arrayfire, fusion ON   (1 fused kernel): {fused:10.4f} ms",
        f"  arrayfire, fusion OFF  (eager per-op):   {unfused:10.4f} ms",
        f"  thrust (eager chain, CUDA tier):         {thrust:10.4f} ms",
        f"  fusion speedup: {unfused / fused:.2f}x",
        f"  edge over thrust with fusion: {edge_with:.2f}x, "
        f"without: {edge_without:.2f}x",
        "  (the residual unfused edge comes from ArrayFire's 1-byte bool"
        " intermediates vs the chain's int32 flags)",
        "  (element-wise JIT fusion only; whole-pipeline fusion is"
        " ablated in bench_fig_fused_pipeline.py)",
    ])
    print("\n" + text)
    write_report("ablation_jit_fusion", text, directory=out_dir())

    # Fusion is worth a material factor on multi-predicate selections...
    assert unfused / fused > 1.4
    # ...and accounts for most of ArrayFire's edge over Thrust.
    assert fused < thrust
    assert (edge_with - 1.0) > 1.5 * (edge_without - 1.0)


def test_ablation_jit_fusion_preserves_results(benchmark):
    data = uniform_ints(N // 16, seed=301)
    predicate = col_gt("c0", 500_000)

    def check():
        ids = {}
        for flag in (True, False):
            backend = ArrayFireBackend(Device(), fusion_enabled=flag)
            handle = backend.selection(
                {"c0": backend.upload(data)}, predicate
            )
            ids[flag] = np.sort(backend.download(handle).astype(np.int64))
        return ids

    ids = run_once(benchmark, check)
    assert np.array_equal(ids[True], ids[False])
