"""Ablation 3 — pooled device allocator and OOM-recovery overhead.

Two measurements:

1. **Allocation cost.** The same operator suite runs on a device that
   prices every allocation as a raw ``cudaMalloc`` (host latency plus an
   engine drain, killing stream overlap) and on one with the pooling
   sub-allocator (freed blocks are reused for the cost of host
   bookkeeping).  The pool must recover most of the allocator time —
   the reason RMM/Thrust ship caching allocators.

2. **Graceful degradation.** Q1 and Q6 run on a device too small for
   their whole-table working set: the executor catches the OOM and
   retries through the chunked path.  The recovered run must produce
   the NumPy oracle's numbers; the report records the chunk count and
   the slowdown relative to a comfortably-sized device.
"""

import dataclasses

import numpy as np

from _util import out_dir, run_once
from repro.bench import grouped_keys, uniform_ints, write_report
from repro.core import col_gt, default_framework
from repro.gpu import GTX_1080TI, Device
from repro.query import QueryExecutor
from repro.tpch import TpchGenerator, q1, q6

N = 1 << 18
ROUNDS = 8
SCALE_FACTOR = 0.005


def _operator_suite(backend, state):
    backend.selection({"x": state["data"]}, col_gt("x", 500_000))
    backend.grouped_aggregation(state["keys"], state["values"], "sum")
    backend.sort(state["data"])
    backend.reduction(state["values"], "sum")


def _allocator_run(allocator: str):
    """Total simulated ms and allocator-only ms for ROUNDS suite runs."""
    backend = default_framework().create(
        "thrust", device=Device(GTX_1080TI, allocator=allocator)
    )
    device = backend.device
    keys, values = grouped_keys(N, groups=512, seed=7)
    state = {
        "data": backend.upload(uniform_ints(N, seed=8)),
        "keys": backend.upload(keys),
        "values": backend.upload(values),
    }
    cursor = device.profiler.mark()
    t0 = device.clock.now
    for _ in range(ROUNDS):
        _operator_suite(backend, state)
    total_ms = (device.clock.now - t0) * 1e3
    summary = device.profiler.summary(since=cursor)
    return total_ms, summary.alloc_time * 1e3, device


def _oom_recovery_run(qmod, columns_rtol):
    """Run one query on undersized vs. comfortable devices; verify the
    recovered result against the NumPy oracle."""
    catalog = TpchGenerator(scale_factor=SCALE_FACTOR, seed=23).generate()
    lineitem_bytes = catalog["lineitem"].nbytes
    framework = default_framework()

    roomy = framework.create(
        "thrust", device=Device(GTX_1080TI, allocator="pool")
    )
    baseline = QueryExecutor(roomy, catalog).execute(qmod.plan())
    assert baseline.report.oom_recovery_chunks is None

    small_spec = dataclasses.replace(
        GTX_1080TI, memory_bytes=lineitem_bytes // 2
    )
    small = framework.create(
        "thrust", device=Device(small_spec, allocator="pool")
    )
    recovered = QueryExecutor(small, catalog).execute(qmod.plan())
    assert recovered.report.oom_recovery_chunks is not None

    reference = qmod.reference(catalog)
    for name, expected in reference.items():
        got = np.asarray(recovered.table.column(name).data, dtype=np.float64)
        expected = np.asarray(expected, dtype=np.float64)
        assert np.allclose(got, expected, rtol=columns_rtol), name

    return (
        baseline.report.simulated_ms,
        recovered.report.simulated_ms,
        recovered.report.oom_recovery_chunks,
    )


def test_ablation_pool_allocator(benchmark):
    def measure():
        malloc_ms, malloc_alloc_ms, _ = _allocator_run("malloc")
        pool_ms, pool_alloc_ms, pool_device = _allocator_run("pool")
        stats = pool_device.pool.stats()
        q6_numbers = _oom_recovery_run(q6, 1e-9)
        q1_numbers = _oom_recovery_run(q1, 1e-9)
        return (
            malloc_ms, malloc_alloc_ms, pool_ms, pool_alloc_ms, stats,
            q6_numbers, q1_numbers,
        )

    (
        malloc_ms, malloc_alloc_ms, pool_ms, pool_alloc_ms, stats,
        (q6_base, q6_rec, q6_chunks), (q1_base, q1_rec, q1_chunks),
    ) = run_once(benchmark, measure)

    text = "\n".join([
        f"== Ablation 3: pooled device allocator (operator suite x"
        f"{ROUNDS}, n={N}) ==",
        f"  cudaMalloc every call: {malloc_ms:10.3f} ms total "
        f"({malloc_alloc_ms:.3f} ms in the allocator)",
        f"  pooling sub-allocator: {pool_ms:10.3f} ms total "
        f"({pool_alloc_ms:.3f} ms in the allocator)",
        f"  allocator time recovered: "
        f"{(1.0 - pool_alloc_ms / malloc_alloc_ms) * 100.0:5.1f}%",
        f"  {stats}",
        "== OOM recovery (TPC-H on a device half the size of lineitem) ==",
        f"  Q6: {q6_base:8.3f} ms roomy -> {q6_rec:8.3f} ms recovered "
        f"({q6_chunks} chunks)",
        f"  Q1: {q1_base:8.3f} ms roomy -> {q1_rec:8.3f} ms recovered "
        f"({q1_chunks} chunks)",
    ])
    print("\n" + text)
    write_report("ablation_pool", text, directory=out_dir())

    # The pool must eliminate most per-call allocation cost...
    assert pool_alloc_ms < 0.25 * malloc_alloc_ms
    assert pool_ms < malloc_ms
    # ...by actually reusing blocks, not by skipping accounting.
    assert stats.hits > stats.misses
    # Recovery completed (oracle checks above) at a bounded chunk count.
    assert 2 <= q6_chunks <= 64
    assert 2 <= q1_chunks <= 64
