"""Shared constants and helpers for the benchmark suite."""

from __future__ import annotations

import os
from pathlib import Path

#: Default report directory, regardless of the process cwd.  The
#: ``REPRO_BENCH_OUT`` environment variable overrides it at run time (CI
#: lanes point it at per-job artifact directories).
OUT_DIR = Path(__file__).resolve().parent / "out"

#: The three studied libraries, in Table II column order.
LIBRARIES = ("arrayfire", "boost.compute", "thrust")
#: The studied libraries plus the expert baseline.
ALL_GPU = ("arrayfire", "boost.compute", "thrust", "handwritten")

#: Scale factors for the TPC-H sweeps (simulator-sized; the paper used
#: SF 1-10 on physical hardware — shapes, not absolutes, transfer).
SCALE_FACTORS = (0.002, 0.005, 0.01, 0.02)


def out_dir() -> Path:
    """The report directory, created (with parents) on first use.

    Honours ``REPRO_BENCH_OUT`` at call time, so a lane (or a test) can
    redirect every report without touching the checkout.
    """
    path = Path(os.environ.get("REPRO_BENCH_OUT") or OUT_DIR)
    path.mkdir(parents=True, exist_ok=True)
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The interesting measurements are simulated; repeating the sweep would
    only re-measure the simulator's wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
