"""Shared constants and helpers for the benchmark suite."""

from __future__ import annotations

from pathlib import Path

#: Where rendered benchmark reports land, regardless of the process cwd.
OUT_DIR = Path(__file__).resolve().parent / "out"

#: The three studied libraries, in Table II column order.
LIBRARIES = ("arrayfire", "boost.compute", "thrust")
#: The studied libraries plus the expert baseline.
ALL_GPU = ("arrayfire", "boost.compute", "thrust", "handwritten")

#: Scale factors for the TPC-H sweeps (simulator-sized; the paper used
#: SF 1-10 on physical hardware — shapes, not absolutes, transfer).
SCALE_FACTORS = (0.002, 0.005, 0.01, 0.02)


def out_dir() -> Path:
    """The report directory, created (with parents) on first use."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The interesting measurements are simulated; repeating the sweep would
    only re-measure the simulator's wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
