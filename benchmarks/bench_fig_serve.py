"""Fig. serve (new) — multi-query serving: policy and cache ablations.

Two experiments on the ``repro.serve`` layer, both bit-deterministic
(seeded workloads on the simulated clock):

* **policy sweep** — an open-loop Poisson stream of mostly-cheap Q6
  lookups salted with rare expensive Q5 joins (~0.5% of requests, ~6x
  the service time), swept across arrival rates on a single-stream
  server with caches off.  Below saturation the scheduling policy is
  irrelevant; near saturation FIFO's head-of-line blocking inflates the
  cheap majority's tail while shortest-job-first defers the rare long
  queries, so SJF's p99 must come out below FIFO's at the top rate
  (asserted).
* **cache ablation** — a repeated-query workload (two shapes cycled 100
  times) with the plan+result caches on vs off.  Warm hits skip planning
  and all device work, so cached throughput must be >= 2x the uncached
  run (asserted; the measured ratio is ~3x).

Run directly with ``--smoke`` for the CI fast lane: a tiny closed-loop
run that writes its metrics JSON to ``benchmarks/out/fig_serve_smoke.json``.
"""


from _util import out_dir
from common import write_smoke_json
from repro.bench import write_report
from repro.core import default_framework
from repro.gpu import GTX_1080TI, Device
from repro.serve import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    QueryServer,
    QuerySpec,
    ServerConfig,
    metrics_report,
    repeated_workload,
)
from repro.tpch import TpchGenerator
from repro.tpch.queries import q1, q5, q6

#: Catalog scale: big enough that Q5 >> Q6, small enough to stay fast.
SCALE_FACTOR = 0.004
CATALOG_SEED = 2021
WORKLOAD_SEED = 31

#: Arrival rates swept (requests per simulated second).  Cheap-query
#: service capacity is ~4.8k req/s, so the last point sits just above
#: saturation — the regime where scheduling policy decides the tail.
ARRIVAL_RATES = (2000.0, 4000.0, 5000.0)
NUM_REQUESTS = 400
#: Expensive-query fraction: ~2 of 400 requests, safely under 1% so the
#: p99 rank lands on the cheap majority, not the long queries themselves.
EXPENSIVE_WEIGHT = 0.005

POLICIES = ("fifo", "sjf")


def _catalog():
    return TpchGenerator(
        scale_factor=SCALE_FACTOR, seed=CATALOG_SEED
    ).generate()


def _mixed_specs(catalog):
    return [
        QuerySpec("Q6", q6.plan(), weight=1.0 - EXPENSIVE_WEIGHT),
        QuerySpec("Q5", q5.plan(catalog), weight=EXPENSIVE_WEIGHT),
    ]


def _serve(catalog, workload, **config_kwargs):
    device = Device(GTX_1080TI, allocator="pool")
    backend = default_framework().create("thrust", device)
    with QueryServer(backend, catalog, ServerConfig(**config_kwargs)) as server:
        return server.run(workload)


def test_fig_serve_policy_sweep(benchmark):
    catalog = _catalog()
    specs = _mixed_specs(catalog)

    def sweep():
        rows = {}
        for rate in ARRIVAL_RATES:
            workload = OpenLoopWorkload(
                specs, rate=rate, num_requests=NUM_REQUESTS,
                tenants=("t0", "t1"), seed=WORKLOAD_SEED,
            )
            expensive = sum(
                1 for r in workload.arrivals() if r.name == "Q5"
            )
            rows[rate] = (expensive, {
                policy: _serve(
                    catalog, workload, policy=policy, num_streams=1,
                    plan_cache=False, result_cache=False,
                ).metrics
                for policy in POLICIES
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    lines = [
        "== Fig. serve-policy: FIFO vs SJF under a mostly-cheap mix "
        f"(Q6 + {EXPENSIVE_WEIGHT:.1%} Q5, {NUM_REQUESTS} requests, "
        "1 stream, caches off, thrust) ==",
        f"{'rate/s':>8}  {'#Q5':>4}  "
        + "  ".join(
            f"{p + ' thr/s':>10}  {p + ' p50ms':>10}  {p + ' p99ms':>10}"
            for p in POLICIES
        ),
    ]
    for rate, (expensive, by_policy) in rows.items():
        cells = []
        for policy in POLICIES:
            m = by_policy[policy]
            cells.append(
                f"{m.throughput:10.0f}  {m.p50_latency * 1e3:10.3f}  "
                f"{m.p99_latency * 1e3:10.3f}"
            )
        lines.append(f"{rate:8.0f}  {expensive:4d}  " + "  ".join(cells))

    top = rows[ARRIVAL_RATES[-1]]
    expensive, by_policy = top
    fifo_p99 = by_policy["fifo"].p99_latency
    sjf_p99 = by_policy["sjf"].p99_latency
    lines.append(
        f"-- at {ARRIVAL_RATES[-1]:.0f} req/s: SJF p99 "
        f"{sjf_p99 * 1e3:.3f} ms vs FIFO p99 {fifo_p99 * 1e3:.3f} ms "
        f"({fifo_p99 / sjf_p99:.2f}x better tail) --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_serve_policies", text, directory=out_dir())

    # The seeded mix must keep expensive queries under the p99 rank.
    assert 1 <= expensive <= 4, expensive
    # Acceptance: SJF beats FIFO on p99 at the highest arrival rate.
    assert sjf_p99 < fifo_p99, (sjf_p99, fifo_p99)
    # Everything completes (no shedding at default budgets).
    assert all(
        m.completed == NUM_REQUESTS
        for _n, by in rows.values() for m in by.values()
    )


#: Cache ablation: two query shapes cycled this many times each.
CACHE_REPEATS = 100
CACHE_RATE = 5000.0


def test_fig_serve_cache_ablation(benchmark):
    catalog = _catalog()
    specs = [QuerySpec("Q6", q6.plan()), QuerySpec("Q1", q1.plan())]

    def ablate():
        results = {}
        for label, cache in (("cache on", True), ("cache off", False)):
            workload = repeated_workload(
                specs, rate=CACHE_RATE, repeats=CACHE_REPEATS, seed=17
            )
            results[label] = _serve(
                catalog, workload, policy="fifo", num_streams=2,
                plan_cache=cache, result_cache=cache,
            ).metrics
        return results

    results = benchmark.pedantic(
        ablate, rounds=1, iterations=1, warmup_rounds=0
    )
    on, off = results["cache on"], results["cache off"]
    speedup = on.throughput / off.throughput
    lines = [
        "== Fig. serve-cache: plan+result caches on a repeated-query "
        f"workload (2 shapes x {CACHE_REPEATS}, {CACHE_RATE:.0f} req/s, "
        "thrust) ==",
        f"{'config':>10}  {'thr/s':>8}  {'p50 ms':>8}  {'p99 ms':>8}  "
        f"{'hits':>5}  {'misses':>7}",
    ]
    for label, m in results.items():
        lines.append(
            f"{label:>10}  {m.throughput:8.0f}  "
            f"{m.p50_latency * 1e3:8.3f}  {m.p99_latency * 1e3:8.3f}  "
            f"{m.result_cache_hits:5d}  {m.result_cache_misses:7d}"
        )
    lines.append(
        f"-- result cache speedup: {speedup:.2f}x throughput "
        f"({on.result_cache_hit_rate:.0%} hit rate) --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_serve_cache", text, directory=out_dir())

    # Acceptance: >= 2x throughput from the cache on repeated queries.
    assert speedup >= 2.0, speedup
    assert on.result_cache_misses == 2
    assert on.result_cache_hits == 2 * CACHE_REPEATS - 2


def _smoke(clients: int, requests: int) -> int:
    """CI fast-lane: a tiny closed-loop run, metrics saved as JSON."""
    catalog = TpchGenerator(scale_factor=0.002, seed=CATALOG_SEED).generate()
    workload = ClosedLoopWorkload(
        [QuerySpec("Q6", q6.plan()), QuerySpec("Q1", q1.plan())],
        num_clients=clients, requests_per_client=requests, seed=7,
    )
    device = Device(GTX_1080TI, allocator="pool")
    backend = default_framework().create("thrust", device)
    config = ServerConfig(policy="sjf", num_streams=2)
    with QueryServer(backend, catalog, config) as server:
        report = server.run(workload)
    metrics = report.metrics
    expected = clients * requests
    assert metrics.completed == expected, (metrics.completed, expected)
    path = write_smoke_json(
        "fig_serve_smoke.json", metrics_report(metrics, report.records)
    )
    print(
        f"serve smoke: {metrics.completed} requests, "
        f"{metrics.throughput:.0f} req/s, "
        f"p99 {metrics.p99_latency * 1e3:.3f} ms -> {path}"
    )
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(
        lambda args: _smoke(args.clients, args.requests),
        doc=__doc__,
        add_args=lambda parser: [
            parser.add_argument("--clients", type=int, default=2),
            parser.add_argument("--requests", type=int, default=8),
        ],
    )
