"""Fig. O (inferred) — sort and sort-by-key.

Radix-sort shootout: Thrust (8-bit digits, CUDA tier) vs. Boost.Compute
(4-bit digits, OpenCL tier — twice the passes) vs. ArrayFire (8-bit
digits + out-of-place copy-out) vs. a tuned handwritten sort.
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import (
    render_all,
    run_simple_sweep,
    uniform_ints,
    write_report,
)

SIZES = (1 << 16, 1 << 18, 1 << 20, 1 << 22)


def _setup_sort(backend, n):
    return backend.upload(uniform_ints(n))


def _run_sort(backend, handle):
    backend.sort(handle)


def _setup_sort_by_key(backend, n):
    keys = uniform_ints(n, seed=11)
    values = uniform_ints(n, seed=12)
    return backend.upload(keys), backend.upload(values)


def _run_sort_by_key(backend, state):
    backend.sort_by_key(state[0], state[1])


def test_fig_sort_size_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            "Fig. O-a: sort (int32 keys) vs input size (warm)",
            ALL_GPU, SIZES, _setup_sort, _run_sort,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_sort", text, directory=out_dir())
    last = {name: result.ms(name)[-1] for name in ALL_GPU}
    assert last["thrust"] < last["arrayfire"]
    assert last["thrust"] < last["boost.compute"]
    # Boost's 4-bit digit passes are the biggest structural handicap.
    assert last["boost.compute"] > 2.0 * last["thrust"]


def test_fig_sort_by_key_size_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            "Fig. O-b: sort-by-key (int32/int32) vs input size (warm)",
            ALL_GPU, SIZES, _setup_sort_by_key, _run_sort_by_key,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_sort_by_key", text, directory=out_dir())
    for name in ALL_GPU:
        assert all(ms is not None for ms in result.ms(name))
    # Carrying a payload costs more than sorting keys alone.
    keys_only = run_simple_sweep(
        "keys-only", ("thrust",), (SIZES[-1],), _setup_sort, _run_sort
    )
    assert result.ms("thrust")[-1] > keys_only.ms("thrust")[0]
