"""Fig. JH (extension) — hash join vs. nested loops, per library tier.

The paper stops at the negative result: no studied library can hash-join,
so Fig. J-b prices the gap only through the handwritten kernel.  This
figure quantifies the counterfactual with the ``<library>+hash`` extension
backends: the same build/probe kernels priced at each library's own
efficiency tier, swept over the outer-relation size, against that
library's native nested-loops join.

Also reruns the TPC-H Q3/Q4 plans with both strategies end-to-end on the
handwritten backend — the acceptance numbers for the hash-join subsystem
(identical results, lower simulated time at the largest scale).
"""

import numpy as np

from _util import SCALE_FACTORS, out_dir, run_once
from repro.bench import fk_join_keys, write_report
from repro.core import default_framework
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.tpch import TpchGenerator, q3, q4

#: One extra scale beyond the shared sweep: Q4's single FK join only
#: clears the hash join's fixed overheads once the tables are this big.
EXTRA_SCALE = 0.05

#: (native-NLJ backend, hash-capable twin) pairs per efficiency tier.
PAIRS = (
    ("thrust", "thrust+hash"),
    ("boost.compute", "boost.compute+hash"),
    ("arrayfire", "arrayfire+hash"),
    ("handwritten", "handwritten"),
)

OUTER_SIZES = (1 << 14, 1 << 16, 1 << 18)
INNER_FRACTION = 4  # inner = outer / 4 (FK-shaped)


def _join_ms(backend_name, method, left, right):
    backend = default_framework().create(backend_name, Device())
    handles = backend.upload(left), backend.upload(right)
    runner = getattr(backend, method)
    runner(*handles)  # warm (compiles for boost)
    t0 = backend.device.clock.now
    runner(*handles)
    return (backend.device.clock.now - t0) * 1e3


def test_fig_hash_vs_nlj_ladder(benchmark):
    """Hash beats NLJ at every tier once the join is large enough."""

    def sweep():
        rows = {}
        for n_outer in OUTER_SIZES:
            left, right = fk_join_keys(n_outer, n_outer // INNER_FRACTION)
            cells = {}
            for nlj_name, hash_name in PAIRS:
                cells[nlj_name] = (
                    _join_ms(nlj_name, "nested_loop_join", left, right),
                    _join_ms(hash_name, "hash_join", left, right),
                )
            rows[n_outer] = cells
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        "== Fig. JH-a: hash join vs native NLJ per library tier "
        f"(inner = outer/{INNER_FRACTION}, FK join, warm, simulated ms) ==",
        f"{'outer':>10}  {'backend':>16}  {'nlj ms':>12}  {'hash ms':>12}  "
        f"{'speedup':>8}",
    ]
    for n_outer, cells in rows.items():
        for name, (nlj_ms, hash_ms) in cells.items():
            lines.append(
                f"{n_outer:>10}  {name:>16}  {nlj_ms:12.4f}  "
                f"{hash_ms:12.4f}  {nlj_ms / hash_ms:7.1f}x"
            )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_join_hash_ladder", text, directory=out_dir())
    largest = rows[OUTER_SIZES[-1]]
    for name, (nlj_ms, hash_ms) in largest.items():
        assert hash_ms < nlj_ms, name
    # Library-tier hash joins recover most of the handwritten gap: they
    # land within ~20x of the expert kernel where the NLJ was >100x off.
    hw_hash = largest["handwritten"][1]
    assert largest["thrust"][1] / hw_hash < 20.0
    assert largest["thrust"][0] / hw_hash > 100.0


def _query_ms(catalog, plan):
    backend = default_framework().create("handwritten", Device())
    executor = QueryExecutor(backend, catalog)
    executor.execute(plan)  # cold
    result = executor.execute(plan)
    return result.table, result.report.simulated_ms


def test_fig_tpch_hash_vs_nlj(benchmark, tpch_catalogs):
    """Q3/Q4 with both strategies: identical results, hash faster at scale."""

    scales = SCALE_FACTORS + (EXTRA_SCALE,)
    catalogs = dict(tpch_catalogs)
    catalogs[EXTRA_SCALE] = TpchGenerator(
        scale_factor=EXTRA_SCALE, seed=2021
    ).generate()

    def sweep():
        rows = {}
        for sf in scales:
            catalog = catalogs[sf]
            plans = {
                "Q3": lambda algo, c=catalog: q3.plan(c, join_algorithm=algo),
                "Q4": lambda algo, c=catalog: q4.plan(join_algorithm=algo),
            }
            for query, make_plan in plans.items():
                hash_table, hash_ms = _query_ms(catalog, make_plan("hash"))
                nlj_table, nlj_ms = _query_ms(catalog, make_plan("nested_loop"))
                identical = all(
                    np.array_equal(
                        hash_table.column(name).data,
                        nlj_table.column(name).data,
                    )
                    for name in hash_table.column_names
                )
                rows[(query, sf)] = (nlj_ms, hash_ms, identical)
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        "== Fig. JH-b: TPC-H Q3/Q4, hash vs nested-loop plans "
        "(handwritten backend, warm, simulated ms) ==",
        f"{'query':>6}  {'SF':>8}  {'nlj ms':>12}  {'hash ms':>12}  "
        f"{'speedup':>8}  {'identical':>9}",
    ]
    for (query, sf), (nlj_ms, hash_ms, identical) in rows.items():
        lines.append(
            f"{query:>6}  {sf:8.3f}  {nlj_ms:12.4f}  {hash_ms:12.4f}  "
            f"{nlj_ms / hash_ms:7.1f}x  {str(identical):>9}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_tpch_hash_vs_nlj", text, directory=out_dir())
    # Results must be bit-identical everywhere ...
    assert all(identical for _nlj, _hash, identical in rows.values())
    # ... and the hash plan strictly faster at the largest scale.
    for query in ("Q3", "Q4"):
        nlj_ms, hash_ms, _ = rows[(query, scales[-1])]
        assert hash_ms < nlj_ms, query
