"""Fig. G (inferred) — grouped aggregation (sum by key).

Sweeps input size and group count.  Library realization is
``sort_by_key`` + ``reduce_by_key`` (Table II); the handwritten backend
uses single-pass hash aggregation, which is why it wins by a widening
margin — the sort dominates the libraries' time.
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import (
    grouped_keys,
    render_all,
    render_series,
    run_simple_sweep,
    write_report,
)

SIZES = (1 << 16, 1 << 18, 1 << 20, 1 << 22)
GROUP_COUNTS = (16, 1 << 10, 1 << 16)
FIXED_N = 1 << 20


def _setup_size(backend, n):
    keys, values = grouped_keys(n, groups=1024)
    return backend.upload(keys), backend.upload(values)


def _setup_groups(backend, groups):
    keys, values = grouped_keys(FIXED_N, groups=groups)
    return backend.upload(keys), backend.upload(values)


def _run(backend, state):
    backend.grouped_aggregation(state[0], state[1], "sum")


def test_fig_groupby_size_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            "Fig. G-a: grouped aggregation (sum) vs input size "
            "(1024 groups, warm)",
            ALL_GPU, SIZES, _setup_size, _run,
        )

    result = run_once(benchmark, sweep)
    text = render_all(result, baseline="handwritten")
    print("\n" + text)
    write_report("fig_groupby_size", text, directory=out_dir())
    last = {name: result.ms(name)[-1] for name in ALL_GPU}
    assert last["handwritten"] < last["thrust"] / 2.0
    assert last["thrust"] < last["boost.compute"]


def test_fig_groupby_group_count_sweep(benchmark):
    def sweep():
        return run_simple_sweep(
            f"Fig. G-b: grouped aggregation vs group count (n={FIXED_N}, warm)",
            ALL_GPU, GROUP_COUNTS, _setup_groups, _run,
        )

    result = run_once(benchmark, sweep)
    text = render_series(result, point_header="groups")
    print("\n" + text)
    write_report("fig_groupby_groups", text, directory=out_dir())
    # Sort-based realizations are insensitive to group count; no library
    # series may vary by more than ~2x across three orders of magnitude.
    for name in ("thrust", "boost.compute", "arrayfire"):
        series = result.ms(name)
        assert max(series) < 2.0 * min(series)
