"""Extension — does a cuDF-class library close the hashing gap?

Beyond the paper's scope (documented in DESIGN.md): the paper finds that
no studied library exposes hashing.  cuDF (named in the paper's intro as
BlazingDB's engine) does.  This benchmark reruns the decisive
experiments with the cuDF-class backend in the mix: the join ladder and
the grouped aggregation sweep.
"""

from _util import out_dir, run_once
from repro.bench import fk_join_keys, grouped_keys, write_report
from repro.core import default_framework
from repro.errors import UnsupportedOperatorError
from repro.gpu import Device

OUTER, INNER = 1 << 17, 1 << 15
GROUP_N = 1 << 21
BACKENDS = ("thrust", "arrayfire", "cudf", "handwritten")


def test_ext_cudf_closes_join_gap(benchmark):
    framework = default_framework()
    left, right = fk_join_keys(OUTER, INNER)

    def measure(name, method):
        backend = framework.create(name, Device())
        handles = backend.upload(left), backend.upload(right)
        runner = getattr(backend, method)
        try:
            runner(*handles)
        except UnsupportedOperatorError:
            return None
        t0 = backend.device.clock.now
        runner(*handles)
        return (backend.device.clock.now - t0) * 1e3

    def collect():
        return {
            (name, method): measure(name, method)
            for name in BACKENDS
            for method in ("nested_loop_join", "hash_join")
        }

    timings = run_once(benchmark, collect)
    lines = [
        f"== Extension: cuDF-class library vs the paper's join gap "
        f"(outer={OUTER}, inner={INNER}, warm) ==",
        f"{'backend':>16}  {'NLJ ms':>12}  {'hash join ms':>14}",
    ]
    for name in BACKENDS:
        nlj = timings[(name, "nested_loop_join")]
        hash_join = timings[(name, "hash_join")]
        hash_text = "n/a" if hash_join is None else f"{hash_join:14.4f}"
        lines.append(f"{name:>16}  {nlj:12.4f}  {hash_text:>14}")
    cudf_hash = timings[("cudf", "hash_join")]
    thrust_nlj = timings[("thrust", "nested_loop_join")]
    handwritten_hash = timings[("handwritten", "hash_join")]
    lines.append(
        f"cudf hash join recovers {thrust_nlj / cudf_hash:.0f}x of the "
        f"{thrust_nlj / handwritten_hash:.0f}x gap the paper leaves on the "
        "table — a newer library answers the paper's headline criticism."
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("ext_cudf_joins", text, directory=out_dir())

    assert cudf_hash is not None
    assert timings[("thrust", "hash_join")] is None
    # cuDF-tier hash join lands within ~2x of hand-tuned, >>100x under NLJ.
    assert cudf_hash < 2.0 * handwritten_hash
    assert thrust_nlj / cudf_hash > 100.0


def test_ext_cudf_hash_groupby(benchmark):
    framework = default_framework()
    keys, values = grouped_keys(GROUP_N, groups=1024)

    def measure(name):
        backend = framework.create(name, Device())
        kh, vh = backend.upload(keys), backend.upload(values)
        backend.grouped_aggregation(kh, vh, "sum")
        t0 = backend.device.clock.now
        backend.grouped_aggregation(kh, vh, "sum")
        return (backend.device.clock.now - t0) * 1e3

    def collect():
        return {name: measure(name) for name in BACKENDS}

    timings = run_once(benchmark, collect)
    lines = [
        f"== Extension: hash group-by (n={GROUP_N}, 1024 groups, warm) ==",
    ] + [
        f"{name:>16}  {timings[name]:12.4f} ms" for name in BACKENDS
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_report("ext_cudf_groupby", text, directory=out_dir())

    # Hash aggregation (cudf, handwritten) beats sort-based (thrust, af).
    assert timings["cudf"] < timings["thrust"] / 2.0
    assert timings["handwritten"] <= timings["cudf"]
