"""Fig. P (inferred) — parallel primitives: prefix sum, scatter, gather,
product.

The paper studies these because they materialise selection/projection
results ("commonly used for materializing final values").
"""

from _util import ALL_GPU, out_dir, run_once
from repro.bench import (
    render_series,
    run_simple_sweep,
    scatter_permutation,
    summarize_winners,
    uniform_floats,
    uniform_ints,
    write_report,
)

SIZES = (1 << 18, 1 << 20, 1 << 22)


def _setup_prefix_sum(backend, n):
    return backend.upload(uniform_ints(n, low=0, high=100))


def _run_prefix_sum(backend, handle):
    backend.prefix_sum(handle)


def _setup_gather(backend, n):
    return (
        backend.upload(uniform_floats(n)),
        backend.upload(scatter_permutation(n)),
    )


def _run_gather(backend, state):
    backend.gather(state[0], state[1])


def _setup_scatter(backend, n):
    return (
        backend.upload(uniform_floats(n)),
        backend.upload(scatter_permutation(n)),
        n,
    )


def _run_scatter(backend, state):
    backend.scatter(state[0], state[1], state[2])


def _setup_product(backend, n):
    return (
        backend.upload(uniform_floats(n, seed=21)),
        backend.upload(uniform_floats(n, seed=22)),
    )


def _run_product(backend, state):
    backend.product(state[0], state[1])


PRIMITIVES = (
    ("prefix_sum", _setup_prefix_sum, _run_prefix_sum),
    ("gather", _setup_gather, _run_gather),
    ("scatter", _setup_scatter, _run_scatter),
    ("product", _setup_product, _run_product),
)


def test_fig_primitives(benchmark):
    def sweep_all():
        results = {}
        for name, setup, run in PRIMITIVES:
            results[name] = run_simple_sweep(
                f"Fig. P: {name} vs input size (warm)",
                ALL_GPU, SIZES, setup, run,
            )
        return results

    results = run_once(benchmark, sweep_all)
    parts = []
    for name, result in results.items():
        parts.append(render_series(result))
        parts.append(summarize_winners(result))
    text = "\n\n".join(parts)
    print("\n" + text)
    write_report("fig_primitives", text, directory=out_dir())
    # Uncoalesced scatter/gather cost more than the streaming product.
    for backend in ALL_GPU:
        assert results["gather"].ms(backend)[-1] > (
            results["product"].ms(backend)[-1]
        )
    # Handwritten single-pass scan beats the libraries' 3-phase scans.
    assert results["prefix_sum"].ms("handwritten")[-1] < (
        results["prefix_sum"].ms("thrust")[-1]
    )
