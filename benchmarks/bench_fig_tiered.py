"""Fig. tiered (new) — compressed tiered storage at 2-8x device memory.

Shanbhag et al. show the host-device interconnect dominates GPU
analytics once the working set outgrows device memory, and that
compression raises the link's *effective* bandwidth by the compression
ratio.  This figure runs TPC-H Q1/Q6/Q3 on devices sized to 1/2, 1/4,
and 1/8 of the catalog (so the data is 2-8x device memory) and compares:

* **baseline** — raw int64/float64 uploads with chunked OOM recovery
  (the engine's pre-existing larger-than-memory path), and
* **tiered** — the same device scanning a :class:`TieredColumnStore`:
  compressed chunks promoted over PCIe, decoded on device, pressure-
  spilled down-tier under memory pressure.

Acceptance floors (also enforced on the smoke artifact by
``check_floors.py``):

* **bit-correctness** — every cell matches the in-memory oracle (exact;
  float aggregates to 1e-12 when chunked recombination reorders sums),
* **effective-bandwidth gain >= 1.5x** — raw bytes delivered per
  compressed byte promoted over PCIe, the paper's compression argument,
* **no cliff** — at every pressure level the tiered run stays within
  ``RELATIVE_CEILING`` of the raw baseline (degradation tracks the
  baseline's own chunking curve instead of falling off), and the tiered
  path *wins* outright at light pressure where transfer time dominates
  and chunking has not yet fragmented the scans.

Run directly with ``--smoke`` for the CI fast lane: a Q1/Q6 mini-grid
saved to ``fig_tiered_smoke.json`` under the report directory.
"""

from dataclasses import replace

import numpy as np

from _util import out_dir, run_once
from common import write_smoke_json
from repro.bench import write_report
from repro.core import HandwrittenBackend
from repro.gpu import GTX_1080TI, Device
from repro.query import QueryExecutor
from repro.storage import TieredColumnStore
from repro.tpch import TpchGenerator
from repro.tpch.queries import q1, q3, q6

CATALOG_SEED = 19920101
SCALE_FACTOR = 0.01

#: Catalog bytes / device memory: the "larger-than-memory" pressure axis.
MEMORY_MULTIPLES = (2, 4, 8)

#: Effective-bandwidth floor: raw bytes delivered per compressed byte
#: moved over PCIe must be at least this (the paper's compression win).
GAIN_FLOOR = 1.5
#: No-cliff ceiling: tiered runtime / baseline runtime at every cell.
RELATIVE_CEILING = 1.75
#: At the lightest pressure level the tiered path must win outright.
LIGHT_PRESSURE_FLOOR = 1.05

#: Store tuning: small chunks keep promotion granular; the batched
#: fetch path amortises their per-chunk fixed costs (see DESIGN.md).
STORE_CHUNK_ROWS = 8192

SMOKE_MULTIPLES = (2, 4, 8)
SMOKE_QUERIES = ("Q1", "Q6")


def _catalog():
    return TpchGenerator(
        scale_factor=SCALE_FACTOR, seed=CATALOG_SEED
    ).generate()


def _plans(catalog):
    return {
        "Q1": q1.plan(),
        "Q6": q6.plan(),
        "Q3": q3.plan(catalog),
    }


def _small_device(catalog_bytes, multiple):
    return Device(
        replace(GTX_1080TI, memory_bytes=catalog_bytes // multiple)
    )


def _make_store(device, catalog):
    store = TieredColumnStore(
        device,
        device_budget=device.spec.memory_bytes // 2,
        chunk_rows=STORE_CHUNK_ROWS,
    )
    for name, table in sorted(catalog.items()):
        store.ingest_table(table)
    return store


def _matches_oracle(table, oracle):
    if (
        table.num_rows != oracle.num_rows
        or table.column_names != oracle.column_names
    ):
        return False
    for name in oracle.column_names:
        want = oracle.column(name).data
        got = table.column(name).data
        if got.dtype != want.dtype:
            return False
        if np.array_equal(got, want):
            continue
        # Chunked recombination may reorder float summation.
        if not (
            np.issubdtype(want.dtype, np.floating)
            and np.allclose(got, want, rtol=1e-12)
        ):
            return False
    return True


def _run_cell(catalog, catalog_bytes, plan, multiple, tiered):
    device = _small_device(catalog_bytes, multiple)
    store = _make_store(device, catalog) if tiered else None
    executor = QueryExecutor(
        HandwrittenBackend(device), catalog, store=store
    )
    result = executor.execute(plan)
    stats = store.snapshot_stats() if store is not None else None
    if store is not None:
        store.close()
    return result, stats


def _sweep(catalog, multiples, query_names):
    catalog_bytes = sum(t.nbytes for t in catalog.values())
    plans = _plans(catalog)
    oracle_executor = QueryExecutor(
        HandwrittenBackend(Device(GTX_1080TI)), catalog
    )
    cells = []
    for name in query_names:
        plan = plans[name]
        oracle = oracle_executor.execute(plan).table
        for multiple in multiples:
            baseline, _ = _run_cell(
                catalog, catalog_bytes, plan, multiple, tiered=False
            )
            tiered, stats = _run_cell(
                catalog, catalog_bytes, plan, multiple, tiered=True
            )
            cells.append(
                {
                    "query": name,
                    "multiple": multiple,
                    "baseline_ms": baseline.report.simulated_ms,
                    "tiered_ms": tiered.report.simulated_ms,
                    "speedup": (
                        baseline.report.simulated_seconds
                        / tiered.report.simulated_seconds
                    ),
                    "gain": stats.effective_bandwidth_gain,
                    "spills": stats.spills,
                    "promotes": stats.promotes,
                    "oracle_match": (
                        _matches_oracle(baseline.table, oracle)
                        and _matches_oracle(tiered.table, oracle)
                    ),
                }
            )
    return cells


def _assert_floors(cells):
    for cell in cells:
        key = (cell["query"], cell["multiple"])
        assert cell["oracle_match"], key
        assert cell["gain"] >= GAIN_FLOOR, (key, cell["gain"])
        assert cell["promotes"] > 0, key
        relative = cell["tiered_ms"] / cell["baseline_ms"]
        assert relative <= RELATIVE_CEILING, (key, relative)
    light = [c for c in cells if c["multiple"] == min(
        c["multiple"] for c in cells
    )]
    best = max(c["speedup"] for c in light)
    assert best >= LIGHT_PRESSURE_FLOOR, best
    # Deep pressure really exercises the spill machinery.
    deepest = max(c["multiple"] for c in cells)
    assert any(
        c["spills"] > 0 for c in cells if c["multiple"] == deepest
    )


def test_fig_tiered(benchmark):
    catalog = _catalog()

    cells = run_once(
        benchmark,
        lambda: _sweep(catalog, MEMORY_MULTIPLES, ("Q1", "Q6", "Q3")),
    )

    lines = [
        "== Fig. tiered: compressed tiered store vs raw chunked "
        f"baseline, SF {SCALE_FACTOR} ==",
        f"{'query':>6}  {'mem x':>6}  {'base ms':>9}  {'tiered ms':>10}  "
        f"{'speedup':>8}  {'bw gain':>8}  {'spills':>7}  {'match':>6}",
    ]
    for cell in cells:
        lines.append(
            f"{cell['query']:>6}  {cell['multiple']:>5}x  "
            f"{cell['baseline_ms']:9.3f}  {cell['tiered_ms']:10.3f}  "
            f"{cell['speedup']:7.2f}x  {cell['gain']:7.2f}x  "
            f"{cell['spills']:7d}  {str(cell['oracle_match']):>6}"
        )
    lines.append(
        f"-- floors: gain >= {GAIN_FLOOR}x, tiered <= "
        f"{RELATIVE_CEILING}x baseline, light-pressure win >= "
        f"{LIGHT_PRESSURE_FLOOR}x --"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("fig_tiered", text, directory=out_dir())

    _assert_floors(cells)


def _smoke() -> int:
    """CI fast-lane: the Q1/Q6 mini-grid, metrics as JSON."""
    catalog = _catalog()
    cells = _sweep(catalog, SMOKE_MULTIPLES, SMOKE_QUERIES)
    _assert_floors(cells)
    payload = {
        "floor": GAIN_FLOOR,
        "relative_ceiling": RELATIVE_CEILING,
        "light_pressure_floor": LIGHT_PRESSURE_FLOOR,
        "scale_factor": SCALE_FACTOR,
        "cells": cells,
    }
    path = write_smoke_json("fig_tiered_smoke.json", payload)
    summary = ", ".join(
        f"{c['query']}@{c['multiple']}x {c['speedup']:.2f}x/"
        f"gain {c['gain']:.2f}x"
        for c in cells
    )
    print(f"tiered smoke (SF {SCALE_FACTOR}): {summary} -> {path}")
    return 0


if __name__ == "__main__":
    from common import smoke_main

    smoke_main(lambda args: _smoke(), doc=__doc__)
