"""repro — reproduction of *Analysis of GPU-Libraries for Rapid
Prototyping Database Operations* (ICDE 2021) on a simulated GPU.

Public API tour:

* :mod:`repro.gpu` — the simulated GPU device (clock, memory, cost model);
* :mod:`repro.libs` — emulations of Thrust, Boost.Compute, ArrayFire;
* :mod:`repro.core` — the paper's plug-in operator framework and the five
  built-in backends, plus the Table II support matrix;
* :mod:`repro.relational` — column-store tables;
* :mod:`repro.query` — logical plans, fluent builder, executor;
* :mod:`repro.tpch` — TPC-H generator and queries Q1/Q3/Q4/Q6;
* :mod:`repro.survey` — the 43-library survey (Table I);
* :mod:`repro.bench` — sweep runner and report renderers.

Quickstart::

    from repro import Device, default_framework, scan, QueryExecutor
    from repro.tpch import TpchGenerator, q6

    catalog = TpchGenerator(scale_factor=0.01).generate()
    backend = default_framework().create("arrayfire")
    result = QueryExecutor(backend, catalog).execute(q6.plan())
    print(result.table.head())
    print(f"simulated time: {result.report.simulated_ms:.3f} ms")
"""

from repro.core import (
    GPU_BACKENDS,
    STUDIED_LIBRARIES,
    GpuOperatorFramework,
    Operator,
    OperatorBackend,
    SupportLevel,
    default_framework,
    render_table_ii,
)
from repro.errors import (
    ReproError,
    UnsupportedOperatorError,
)
from repro.gpu import Device, DeviceSpec, get_spec
from repro.query import ExecutionResult, QueryExecutor, scan
from repro.relational import Column, Table

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Device",
    "DeviceSpec",
    "get_spec",
    "GpuOperatorFramework",
    "default_framework",
    "OperatorBackend",
    "Operator",
    "SupportLevel",
    "STUDIED_LIBRARIES",
    "GPU_BACKENDS",
    "render_table_ii",
    "QueryExecutor",
    "ExecutionResult",
    "scan",
    "Column",
    "Table",
    "ReproError",
    "UnsupportedOperatorError",
]
