"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — print Table I (survey) and Table II (support matrix);
* ``operators`` — run one operator sweep across backends;
* ``calibration`` — print the cost-model calibration report;
* ``tpch`` — run one TPC-H query on every backend and compare;
* ``serve`` — replay a multi-tenant query stream through the serving
  layer and report throughput / latency percentiles / cache hit rates.
  ``--nodes N`` serves on a replicated multi-node cluster instead
  (``--replicas`` copies per shard, ``--kill-node-at`` arms a mid-run
  node death to demonstrate failover).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.bench import render_all, render_calibration_report, run_simple_sweep
from repro.core import STUDIED_LIBRARIES, default_framework, render_table_ii
from repro.gpu import Device
from repro.query import QueryExecutor
from repro.survey import render_category_histogram, render_table_i
from repro.tpch import ALL_QUERIES, TpchGenerator

DEFAULT_BACKENDS = ("arrayfire", "boost.compute", "thrust", "handwritten")


def _cmd_tables(_args: argparse.Namespace) -> int:
    print(render_table_i())
    print()
    print(render_category_histogram())
    print()
    framework = default_framework()
    backends = [framework.create(name) for name in STUDIED_LIBRARIES]
    print(render_table_ii(backends))
    return 0


def _operator_sweep(op: str, sizes: List[int]):
    from repro.bench import (
        grouped_keys,
        selection_workload,
        uniform_floats,
        uniform_ints,
    )
    from repro.core import col_lt

    if op == "selection":
        def setup(backend, n):
            workload = selection_workload(n, 0.1)
            return backend.upload(workload.data), workload.threshold

        def run(backend, state):
            backend.selection({"x": state[0]}, col_lt("x", state[1]))
    elif op == "groupby":
        def setup(backend, n):
            keys, values = grouped_keys(n, groups=1024)
            return backend.upload(keys), backend.upload(values)

        def run(backend, state):
            backend.grouped_aggregation(state[0], state[1], "sum")
    elif op == "sort":
        def setup(backend, n):
            return backend.upload(uniform_ints(n))

        def run(backend, handle):
            backend.sort(handle)
    elif op == "reduction":
        def setup(backend, n):
            return backend.upload(uniform_floats(n))

        def run(backend, handle):
            backend.reduction(handle, "sum")
    else:
        raise SystemExit(f"unknown operator {op!r}")
    return run_simple_sweep(
        f"{op} sweep", DEFAULT_BACKENDS, sizes, setup, run
    )


def _cmd_operators(args: argparse.Namespace) -> int:
    sizes = [1 << e for e in args.log2_sizes]
    result = _operator_sweep(args.op, sizes)
    print(render_all(result, baseline="handwritten"))
    return 0


def _cmd_calibration(_args: argparse.Namespace) -> int:
    from repro.gpu import PRESETS

    print("\n\n".join(
        render_calibration_report(spec) for spec in PRESETS.values()
    ))
    return 0


_MEM_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_mem_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix ("256M", "4g")."""
    raw = text.strip().lower().rstrip("b")
    multiplier = 1
    if raw and raw[-1] in _MEM_SUFFIXES:
        multiplier = _MEM_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse memory size {text!r} (examples: 512K, 64M, 2G)"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(f"memory size must be positive: {text!r}")
    return int(value * multiplier)


def _make_device(args: argparse.Namespace) -> Device:
    """A device honouring the tpch command's --pool / --device-mem flags."""
    import dataclasses

    from repro.gpu import GTX_1080TI

    spec = GTX_1080TI
    if args.device_mem is not None:
        spec = dataclasses.replace(spec, memory_bytes=args.device_mem)
    allocator = "pool" if args.pool else "null"
    return Device(spec, allocator=allocator)


def _make_group(args: argparse.Namespace):
    """A device group honouring --devices / --interconnect / --pool."""
    import dataclasses

    from repro.gpu import GTX_1080TI, NVLINK_P2P, PCIE_HOST_BRIDGE, DeviceGroup

    spec = GTX_1080TI
    if args.device_mem is not None:
        spec = dataclasses.replace(spec, memory_bytes=args.device_mem)
    interconnect = (
        NVLINK_P2P if args.interconnect == "nvlink" else PCIE_HOST_BRIDGE
    )
    return DeviceGroup.of_size(
        args.devices,
        spec,
        interconnect=interconnect,
        allocator="pool" if args.pool else "null",
    )


def _make_store(args: argparse.Namespace, device: Device, catalog):
    """A tiered compressed store over the catalog when --tiered is set."""
    if not getattr(args, "tiered", False):
        return None
    from repro.storage import TieredColumnStore

    store = TieredColumnStore(
        device, device_budget=getattr(args, "store_budget", None)
    )
    for name, table in sorted(catalog.items()):
        for column_name in table.column_names:
            store.ingest_column(
                name, column_name, table.column(column_name).data
            )
    return store


def _store_summary(store) -> str:
    """One summary line of a run's tiered-store statistics."""
    stats = store.snapshot_stats()
    return (
        f"store: ratio {stats.compression_ratio:.2f}x | "
        f"{stats.promotes} promotes, {stats.spills} spills, "
        f"{stats.nvme_reads + stats.nvme_writes} NVMe ops | "
        f"bandwidth gain {stats.effective_bandwidth_gain:.2f}x"
    )


def _tpch_backends(args: argparse.Namespace) -> tuple:
    """Backend list for the tpch command: ``--backend a,b`` or defaults."""
    raw = getattr(args, "backend", None)
    if not raw:
        return DEFAULT_BACKENDS
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def _tpch_distributed(args: argparse.Namespace, catalog, plan) -> int:
    """Partition-parallel tpch run: one device group per backend."""
    from repro.distributed import DistributedExecutor

    backends = _tpch_backends(args)
    framework = default_framework()
    print(
        f"\n{'backend':>16}  {'cold ms':>10}  {'warm ms':>10}  "
        f"{'strategy':>18}  {'rows':>6}"
    )
    trace_group = None
    for name in backends:
        group = _make_group(args)
        executor = DistributedExecutor(
            group,
            name,
            catalog,
            args.partition,
            framework=framework,
            scan_chunks=args.chunks,
        )
        cold = executor.execute(plan)
        warm = executor.execute(plan)
        if args.trace is not None and name == args.trace_backend:
            trace_group = group
        report = warm.report
        note = ""
        if report.strategy == "single_device" and report.reason:
            note = f"  [fallback: {report.reason}]"
        elif report.exchange_bytes:
            note = f"  [reshard {report.exchange_bytes >> 10} KiB]"
        print(
            f"{name:>16}  {cold.report.simulated_ms:10.3f}  "
            f"{report.simulated_ms:10.3f}  "
            f"{report.strategy:>18}  "
            f"{warm.table.num_rows:6d}{note}"
        )
    if args.trace is not None:
        from repro.distributed import write_group_chrome_trace

        if trace_group is None:
            known = ", ".join(backends)
            raise SystemExit(
                f"unknown trace backend {args.trace_backend!r}; known: {known}"
            )
        write_group_chrome_trace(args.trace, trace_group)
        events = sum(len(d.profiler.events) for d in trace_group)
        print(
            f"\nwrote {events} events across {len(trace_group)} device "
            f"rows to {args.trace} (open at chrome://tracing or "
            "ui.perfetto.dev)"
        )
    return 0


def _cmd_tpch(args: argparse.Namespace) -> int:
    module = None
    if args.sql is None:
        query_name = args.query.upper()
        try:
            module = ALL_QUERIES[query_name]
        except KeyError:
            known = ", ".join(sorted(ALL_QUERIES))
            raise SystemExit(f"unknown query {args.query!r}; known: {known}")
    print(f"Generating TPC-H data (scale factor {args.scale_factor})...")
    catalog = TpchGenerator(scale_factor=args.scale_factor).generate()
    if args.sql is not None:
        from repro.sql import SqlError, sql_to_plan

        try:
            plan = sql_to_plan(args.sql, catalog)
        except SqlError as error:
            raise SystemExit(f"SQL error: {error}")
    else:
        # Catalog-aware plans (SQL-frontend queries, Q3/Q5/Q10) need the
        # generated tables for dictionary codes and schema lookups.
        import inspect

        if "catalog" in inspect.signature(module.plan).parameters:
            plan = module.plan(catalog)
        else:
            plan = module.plan()
    if args.devices > 1:
        if args.tiered:
            raise SystemExit("--tiered runs on a single device (--devices 1)")
        return _tpch_distributed(args, catalog, plan)
    backends = _tpch_backends(args)
    framework = default_framework()
    print(
        f"\n{'backend':>16}  {'cold ms':>10}  {'warm ms':>10}  "
        f"{'kernels':>8}  {'rows':>6}"
    )
    trace_device = None
    for name in backends:
        device = _make_device(args)
        store = _make_store(args, device, catalog)
        executor = QueryExecutor(
            framework.create(name, device),
            catalog,
            scan_chunks=args.chunks,
            store=store,
        )
        cold = executor.execute(plan)
        warm = executor.execute(plan)
        if args.trace is not None and name == args.trace_backend:
            trace_device = device
        recovered = cold.report.oom_recovery_chunks
        note = f"  [oom: retried in {recovered} chunks]" if recovered else ""
        print(
            f"{name:>16}  {cold.report.simulated_ms:10.3f}  "
            f"{warm.report.simulated_ms:10.3f}  "
            f"{warm.report.summary.kernel_count:8d}  "
            f"{warm.table.num_rows:6d}{note}"
        )
        if store is not None:
            print(f"{'':>16}  {_store_summary(store)}")
            store.close()
        if args.pool:
            print(f"{'':>16}  {device.pool.stats()}")
    if args.trace is not None:
        from repro.gpu import write_chrome_trace

        if trace_device is None:
            known = ", ".join(backends)
            raise SystemExit(
                f"unknown trace backend {args.trace_backend!r}; known: {known}"
            )
        write_chrome_trace(args.trace, trace_device.profiler.events)
        print(
            f"\nwrote {len(trace_device.profiler.events)} events to "
            f"{args.trace} (open at chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def _query_specs(names: Sequence[str], catalog) -> list:
    """Resolve query names ("Q6,Q1") into serving QuerySpecs."""
    import inspect

    from repro.serve import QuerySpec

    specs = []
    for raw in names:
        name = raw.strip().upper()
        try:
            module = ALL_QUERIES[name]
        except KeyError:
            known = ", ".join(sorted(ALL_QUERIES))
            raise SystemExit(f"unknown query {raw!r}; known: {known}")
        if "catalog" in inspect.signature(module.plan).parameters:
            plan = module.plan(catalog)
        else:
            plan = module.plan()
        specs.append(QuerySpec(name, plan))
    return specs


def _serve_group(args: argparse.Namespace, catalog, workload, config) -> int:
    """Serve the workload on one replica server per device."""
    from repro.distributed import GroupServer, write_group_chrome_trace
    from repro.serve import format_metrics, metrics_report

    group = _make_group(args)
    with GroupServer(group, args.backend, catalog, config) as server:
        report = server.run(workload)
    print()
    for line in format_metrics(report.metrics):
        print(line)
    print(
        "device placement   "
        + " | ".join(
            f"gpu{i}: {sum(1 for r in report.records if report.assignment[r.tenant] == i)} reqs"
            for i in range(len(group))
        )
    )
    if args.json is not None:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics_report(report.metrics, report.records),
                      handle, indent=1)
            handle.write("\n")
        print(f"wrote metrics to {args.json}")
    if args.trace is not None:
        write_group_chrome_trace(args.trace, group)
        events = sum(len(d.profiler.events) for d in group)
        print(
            f"wrote {events} events across {len(group)} device rows to "
            f"{args.trace} (open at chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def _serve_cluster(args: argparse.Namespace, catalog, workload) -> int:
    """Serve the workload on a replicated multi-node cluster."""
    from repro.cluster import Cluster, ClusterConfig, ClusterServer
    from repro.serve import format_metrics, metrics_report

    config = ClusterConfig(
        policy=args.policy,
        num_streams=args.streams,
        plan_cache=args.cache in ("both", "plan"),
        result_cache=args.cache in ("both", "result"),
    )
    cluster = Cluster(
        args.nodes, catalog, args.backend,
        devices_per_node=args.devices, replication=args.replicas,
    )
    if args.kill_node_at is not None:
        cluster.fail_node_at(0, args.kill_node_at)
        print(
            f"armed node 0 death at t={args.kill_node_at * 1e3:.3f} ms "
            "(queries fail over to surviving replicas)"
        )
    with ClusterServer(cluster, config) as server:
        report = server.run(workload)
    print()
    for line in format_metrics(report.metrics):
        print(line)
    print(
        "node placement     "
        + " | ".join(
            f"node{i}: {count} reqs"
            for i, count in enumerate(report.node_requests)
        )
    )
    if report.dead_nodes:
        print(
            f"failover           dead nodes {report.dead_nodes}, "
            f"{report.failovers} failovers, "
            f"{len(report.unreported)} unreported"
        )
    if report.fetch_bytes:
        print(
            f"network            {report.fetch_bytes} shard bytes fetched "
            f"in {report.fetch_seconds * 1e3:.3f} ms"
        )
    if args.json is not None:
        import json

        payload = metrics_report(report.metrics, report.records)
        payload["cluster"] = {
            "nodes": args.nodes,
            "replicas": args.replicas,
            "node_requests": report.node_requests,
            "active_nodes": report.active_nodes,
            "dead_nodes": report.dead_nodes,
            "failovers": report.failovers,
            "unreported": report.unreported,
            "fetch_s": report.fetch_seconds,
            "fetch_bytes": report.fetch_bytes,
            "timeline": report.timeline,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote metrics to {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        ClosedLoopWorkload,
        OpenLoopWorkload,
        QueryServer,
        ServerConfig,
        format_metrics,
        metrics_report,
    )

    print(f"Generating TPC-H data (scale factor {args.scale_factor})...")
    catalog = TpchGenerator(scale_factor=args.scale_factor).generate()
    specs = _query_specs(args.queries.split(","), catalog)
    if args.sql is not None:
        from repro.serve import QuerySpec
        from repro.sql import SqlError, sql_to_plan

        try:
            specs.append(QuerySpec("ADHOC", sql_to_plan(args.sql, catalog)))
        except SqlError as error:
            raise SystemExit(f"SQL error: {error}")
        print("ad-hoc SQL added to the mix as 'ADHOC'")
    if args.clients is not None:
        workload = ClosedLoopWorkload(
            specs,
            num_clients=args.clients,
            requests_per_client=args.requests,
            think_seconds=args.think,
            seed=args.seed,
        )
        regime = f"closed loop, {args.clients} clients"
    else:
        workload = OpenLoopWorkload(
            specs,
            rate=args.arrival_rate,
            num_requests=args.requests,
            tenants=tuple(f"tenant-{i}" for i in range(args.tenants)),
            seed=args.seed,
        )
        regime = f"open loop, {args.arrival_rate:g} req/s"
    config = ServerConfig(
        policy=args.policy,
        num_streams=args.streams,
        plan_cache=args.cache in ("both", "plan"),
        result_cache=args.cache in ("both", "result"),
        admission_budget_bytes=args.admission_budget,
        shed_to_cpu=args.shed_to_cpu,
    )
    print(
        f"Serving {workload.num_requests} requests "
        f"({regime}; policy={args.policy}, streams={args.streams}, "
        f"cache={args.cache}, backend={args.backend}, "
        f"devices={args.devices})"
    )
    if args.nodes > 0:
        if args.tiered:
            raise SystemExit("--tiered runs on a single device (--nodes 0)")
        if args.shed_to_cpu:
            raise SystemExit(
                "--shed-to-cpu runs on a single device (--nodes 0)"
            )
        if args.kill_node_at is not None and args.nodes < 2:
            raise SystemExit(
                "--kill-node-at needs surviving replicas (--nodes >= 2)"
            )
        return _serve_cluster(args, catalog, workload)
    if args.kill_node_at is not None:
        raise SystemExit("--kill-node-at requires cluster mode (--nodes)")
    if args.devices > 1:
        if args.tiered:
            raise SystemExit("--tiered runs on a single device (--devices 1)")
        if args.shed_to_cpu:
            raise SystemExit(
                "--shed-to-cpu runs on a single device (--devices 1)"
            )
        return _serve_group(args, catalog, workload, config)
    device = _make_device(args)
    backend = default_framework().create(args.backend, device)
    config.store = _make_store(args, device, catalog)
    with QueryServer(backend, catalog, config) as server:
        report = server.run(workload)
    print()
    for line in format_metrics(report.metrics):
        print(line)
    print(
        "stream dispatches  "
        + " | ".join(
            f"{stream.name}: {count}"
            for stream, count in zip(
                server.pool.streams, report.stream_dispatches
            )
        )
    )
    if config.store is not None:
        print(f"storage            {_store_summary(config.store)}")
    if args.json is not None:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                metrics_report(
                    report.metrics, report.records, storage=report.storage
                ),
                handle, indent=1,
            )
            handle.write("\n")
        print(f"wrote metrics to {args.json}")
    if args.trace is not None:
        from repro.gpu import write_chrome_trace

        write_chrome_trace(args.trace, device.profiler.events)
        print(
            f"wrote {len(device.profiler.events)} events to {args.trace} "
            f"(open at chrome://tracing or ui.perfetto.dev)"
        )
    if config.store is not None:
        config.store.close()
    return 0


def _add_store_flags(command: argparse.ArgumentParser) -> None:
    """Register the tiered-storage flags shared by tpch and serve."""
    command.add_argument(
        "--tiered",
        action="store_true",
        help="scan through a compressed tiered column store "
        "(device/host/NVMe) instead of raw host uploads",
    )
    command.add_argument(
        "--store-budget",
        type=parse_mem_size,
        default=None,
        metavar="SIZE",
        help="device-tier cap on the store's resident compressed bytes "
        "(e.g. 256K); exceeding it spills cold chunks down-tier",
    )


def _add_group_flags(command: argparse.ArgumentParser) -> None:
    """Register the multi-GPU flags shared by tpch and serve."""
    command.add_argument(
        "--devices",
        type=int,
        default=1,
        help="simulated GPU count; >1 runs partition-parallel on a "
        "device group (tpch) or one server replica per device (serve)",
    )
    command.add_argument(
        "--partition",
        default="round_robin",
        metavar="SPEC",
        help="how the largest (or named-column) table is sharded across "
        "devices: hash:<col>, range:<col>, or round_robin",
    )
    command.add_argument(
        "--interconnect",
        choices=("nvlink", "pcie"),
        default="nvlink",
        help="peer link model: nvlink = direct P2P DMA, pcie = two-leg "
        "host bounce over the PCIe root complex",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Analysis of GPU-Libraries for Rapid "
            "Prototyping Database Operations' (ICDE 2021) on a simulated GPU"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tables = commands.add_parser(
        "tables", help="print Table I and Table II"
    )
    tables.set_defaults(handler=_cmd_tables)

    operators = commands.add_parser(
        "operators", help="run one operator sweep across backends"
    )
    operators.add_argument(
        "--op",
        choices=("selection", "groupby", "sort", "reduction"),
        default="selection",
    )
    operators.add_argument(
        "--log2-sizes",
        type=int,
        nargs="+",
        default=[16, 19, 22],
        help="input sizes as powers of two",
    )
    operators.set_defaults(handler=_cmd_operators)

    calibration = commands.add_parser(
        "calibration", help="print the cost-model calibration report"
    )
    calibration.set_defaults(handler=_cmd_calibration)

    tpch = commands.add_parser(
        "tpch", help="run one TPC-H query on every backend"
    )
    tpch.add_argument("--query", default="Q6",
                      help="one of " + ", ".join(sorted(ALL_QUERIES)))
    tpch.add_argument(
        "--sql",
        metavar="QUERY",
        default=None,
        help="run ad-hoc SQL text through the frontend instead of a "
        "named query (e.g. \"SELECT COUNT(*) AS n FROM orders\")",
    )
    tpch.add_argument("--scale-factor", type=float, default=0.01)
    tpch.add_argument(
        "--backend",
        default=None,
        metavar="NAMES",
        help="comma-separated backends to run (e.g. 'compiled,handwritten'; "
        "default: " + ",".join(DEFAULT_BACKENDS) + ")",
    )
    tpch.add_argument(
        "--chunks",
        type=int,
        default=None,
        help="chunked scan mode: split eligible scans into N chunks "
        "pipelined over streams (default: whole-table scans)",
    )
    tpch.add_argument(
        "--pool",
        action="store_true",
        help="run every backend's device with the pooling sub-allocator "
        "(priced cudaMalloc on miss, near-free reuse on hit)",
    )
    tpch.add_argument(
        "--device-mem",
        type=parse_mem_size,
        default=None,
        metavar="SIZE",
        help="override device memory capacity (e.g. 512K, 64M, 2G); "
        "undersized devices exercise eviction and chunked OOM recovery",
    )
    tpch.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome-trace JSON of one backend's simulated "
        "timeline (view at chrome://tracing)",
    )
    tpch.add_argument(
        "--trace-backend",
        default="thrust",
        help="which backend's timeline --trace captures",
    )
    _add_store_flags(tpch)
    _add_group_flags(tpch)
    tpch.set_defaults(handler=_cmd_tpch)

    serve = commands.add_parser(
        "serve",
        help="replay a multi-tenant query stream through the serving layer",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=None,
        help="closed-loop mode: this many clients, one outstanding "
        "request each (default: open-loop Poisson arrivals)",
    )
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=200.0,
        help="open-loop arrival rate in requests per simulated second",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=100,
        help="open loop: total requests; closed loop: requests per client",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=2,
        help="open-loop tenant count (requests are assigned round-robin)",
    )
    serve.add_argument(
        "--think",
        type=float,
        default=0.0,
        help="closed-loop mean think time between requests (seconds)",
    )
    serve.add_argument(
        "--policy",
        choices=("fifo", "sjf", "fair"),
        default="fifo",
        help="scheduling policy for queued requests",
    )
    serve.add_argument(
        "--cache",
        choices=("both", "plan", "result", "none"),
        default="both",
        help="which serving caches to enable",
    )
    serve.add_argument(
        "--streams",
        type=int,
        default=2,
        help="size of the device stream pool (concurrent request slots)",
    )
    serve.add_argument(
        "--queries",
        default="Q6,Q1",
        help="comma-separated TPC-H query mix "
        "(" + ", ".join(sorted(ALL_QUERIES)) + ")",
    )
    serve.add_argument(
        "--sql",
        metavar="QUERY",
        default=None,
        help="add one ad-hoc SQL query (served as tenant mix entry "
        "'ADHOC') alongside --queries",
    )
    serve.add_argument("--backend", default="thrust",
                       help="library backend to serve on")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload seed (same seed = same run, bit-exact)")
    serve.add_argument("--scale-factor", type=float, default=0.003)
    serve.add_argument(
        "--pool",
        action="store_true",
        help="use the pooling device allocator",
    )
    serve.add_argument(
        "--device-mem",
        type=parse_mem_size,
        default=None,
        metavar="SIZE",
        help="override device memory capacity (e.g. 512K, 64M, 2G)",
    )
    serve.add_argument(
        "--admission-budget",
        type=parse_mem_size,
        default=None,
        metavar="SIZE",
        help="admission-control working-set budget (e.g. 3M; default: "
        "80%% of device memory)",
    )
    serve.add_argument(
        "--shed-to-cpu",
        action="store_true",
        help="under device-memory pressure, run requests host-only "
        "(bit-identical, slower) instead of queueing or shedding them",
    )
    serve.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the metrics + per-request records as JSON",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome-trace JSON with per-request spans",
    )
    serve.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="multi-node cluster serving: node count (0 = the single-"
        "device or device-group path); each node is a device group "
        "joined to its peers over the NETWORK link tier",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="cluster mode: shard copies per table (clamped to --nodes); "
        "2+ survives any single node death without data loss",
    )
    serve.add_argument(
        "--kill-node-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cluster mode: arm a node-0 death at this simulated time; "
        "queued and in-flight queries fail over to surviving replicas",
    )
    _add_store_flags(serve)
    _add_group_flags(serve)
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)
