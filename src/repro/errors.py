"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class DeviceMemoryError(DeviceError):
    """Raised when a device allocation exceeds the remaining device memory.

    ``pool_stats`` carries a :class:`~repro.gpu.memory.PoolStats` snapshot
    when the failing device runs a pooled allocator (so OOM reports show
    how much memory sat idle in freelists); ``injected`` marks failures
    forced by :meth:`~repro.gpu.device.Device.inject_faults`.
    """

    def __init__(
        self,
        requested: int,
        available: int,
        pool_stats: object = None,
        injected: bool = False,
    ) -> None:
        self.requested = requested
        self.available = available
        self.pool_stats = pool_stats
        self.injected = injected
        message = (
            f"device out of memory: requested {requested} bytes, "
            f"only {available} bytes available"
        )
        if injected:
            message += " (injected fault)"
        super().__init__(message)


class TransferError(DeviceError):
    """Raised when a host/device transfer fails (injected DMA fault)."""

    def __init__(self, direction: str, index: int, label: str = "") -> None:
        self.direction = direction
        self.index = index
        self.label = label
        suffix = f" ({label!r})" if label else ""
        super().__init__(
            f"{direction} transfer #{index} failed{suffix} (injected fault)"
        )


class InvalidBufferError(DeviceError):
    """Raised when a freed or foreign buffer is used with a device."""


class LibraryError(ReproError):
    """Base class for errors raised by the emulated GPU libraries."""


class ArraySizeMismatchError(LibraryError):
    """Raised when two library arrays that must agree in length do not."""

    def __init__(self, left: int, right: int, context: str = "") -> None:
        self.left = left
        self.right = right
        suffix = f" in {context}" if context else ""
        super().__init__(f"array length mismatch: {left} vs {right}{suffix}")


class UnsupportedOperatorError(ReproError):
    """Raised when a backend does not support a requested database operator.

    This mirrors the paper's Table II: e.g. *hash join* is unsupported by all
    three studied libraries and raising (rather than silently substituting a
    slower algorithm) keeps the support matrix honest.
    """

    def __init__(self, backend: str, operator: str, reason: str = "") -> None:
        self.backend = backend
        self.operator = operator
        message = f"backend {backend!r} does not support operator {operator!r}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class PlanError(ReproError):
    """Raised for malformed logical or physical query plans."""


class SchemaError(ReproError):
    """Raised for schema violations in the relational layer."""


class ExpressionError(ReproError):
    """Raised for malformed or ill-typed scalar expressions."""


class BenchmarkError(ReproError):
    """Raised for misconfigured benchmark sweeps."""


class ClusterError(ReproError):
    """Base class for multi-node cluster failures."""


class NodeFailure(ClusterError):
    """Raised when a cluster node dies (or a device on it faults) while a
    query is running on it.

    ``kind`` distinguishes a whole-node crash (``"node"`` — the node's
    planned ``fail_at`` passed while the query was in flight) from a
    device-scoped fault surfacing at node scope (``"device"`` — an
    injected OOM/DMA fault escaped the executor's recovery).  The
    coordinator catches this and retries the query on a surviving
    replica with deterministic backoff on the virtual clock.
    """

    def __init__(self, node: int, time: float, kind: str = "node") -> None:
        self.node = node
        self.time = time
        self.kind = kind
        super().__init__(
            f"node {node} failed at t={time * 1e3:.3f}ms ({kind} failure)"
        )
