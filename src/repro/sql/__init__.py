"""SQL frontend: tokenizer, recursive-descent parser, and catalog binder.

``sql_to_plan(text, catalog)`` is the one-call entry point: it parses a
single-block SELECT statement and lowers it onto the
:mod:`repro.query.plan` algebra, so SQL text runs through exactly the
same executor/backends/compiler/distribution stack as hand-built plans.
"""

from repro.sql.binder import bind, sql_to_plan
from repro.sql.errors import SqlError
from repro.sql.parser import parse
from repro.sql.tokenizer import Token, tokenize

__all__ = [
    "bind",
    "parse",
    "sql_to_plan",
    "tokenize",
    "SqlError",
    "Token",
]
