"""Binder: lowers a SQL AST onto the logical plan algebra.

The binder resolves column references against a catalog of
:class:`~repro.relational.table.Table` objects and produces the same
:mod:`repro.query.plan` trees the fluent builder makes, so bound SQL runs
unchanged through every execution layer (handwritten backends, the
compiled pipeline runner, chunked OOM recovery, the distributed planner).

Lowering decisions worth knowing about:

* String comparisons, IN-lists, ``LIKE`` patterns, and
  ``SUBSTRING(...)`` tests are resolved against the column's dictionary
  *at bind time* and become numeric :class:`~repro.core.predicate.InSet`
  / :class:`~repro.core.predicate.Compare` predicates — backends only
  ever see codes.
* ``[NOT] EXISTS`` with one correlated equality is rewritten into a
  semi/anti join; ``IN (SELECT ...)`` and scalar subqueries become
  :class:`~repro.query.plan.InSubquery` /
  :class:`~repro.query.plan.ScalarCompare` predicates the executor
  resolves before backends run.
* An aliased FROM table is wrapped in a renaming projection
  (``alias.column``), which is how the same table can be joined twice
  (TPC-H Q7's two nation roles).
* A multi-equality ``ON a1 = b1 AND a2 = b2`` is lowered as a join on
  the first pair plus a column-to-column filter for the rest.
* ``ORDER BY`` + ``LIMIT`` is fused into a :class:`~repro.query.plan.TopK`
  via :func:`~repro.query.optimizer.push_down_top_k`.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.expr import CaseWhen, ColRef, Expr, ExtractYear, Lit
from repro.core.predicate import (
    Between,
    Compare,
    CompareCols,
    InSet,
    Not,
    Predicate,
    conjunction,
    disjunction,
)
from repro.query.optimizer import optimize, push_down_top_k
from repro.query.plan import (
    Aggregate,
    Filter,
    GroupBy,
    InSubquery,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    ScalarCompare,
    Scan,
    SemiJoin,
)
from repro.errors import ExpressionError, PlanError
from repro.relational.table import Table
from repro.relational.types import date_to_days
from repro.sql import ast
from repro.sql.errors import SqlError
from repro.sql.parser import parse

#: SQL arithmetic spellings -> core expression ops.
_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div"}

#: op -> mirrored op, for ``literal <op> column`` comparisons.
_FLIPPED = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}

Catalog = Dict[str, Table]


def sql_to_plan(
    text: str, catalog: Catalog, *, optimize_plan: bool = True
) -> PlanNode:
    """Parse and bind SQL ``text`` against ``catalog`` in one step."""
    return bind(parse(text), catalog, optimize_plan=optimize_plan)


def bind(
    stmt: ast.SelectStmt, catalog: Catalog, *, optimize_plan: bool = True
) -> PlanNode:
    """Lower a parsed SELECT onto the plan algebra.

    With ``optimize_plan`` (the default) the bound tree is run through
    :func:`~repro.query.optimizer.optimize` and the ORDER BY + LIMIT
    fusion, which is what callers executing the plan want; pass False to
    inspect the raw lowering.
    """
    try:
        plan = _SelectBinder(catalog).bind(stmt)
    except (PlanError, ExpressionError) as error:
        # Semantic errors surfaced by plan-node validation (duplicate
        # output names, empty IN lists, ...) stay typed SQL errors.
        raise SqlError(str(error))
    if optimize_plan:
        plan = push_down_top_k(optimize(plan))
    return plan


class _FromItem:
    """One FROM/JOIN table with its visible-column mapping."""

    def __init__(self, table: str, alias: Optional[str],
                 columns: Dict[str, str]) -> None:
        self.table = table
        self.alias = alias
        #: base column name -> internal plan column name
        self.columns = columns

    @property
    def label(self) -> str:
        """The name this item answers to as a qualifier."""
        return self.alias or self.table


class _SelectBinder:
    """Binds one SELECT block (subqueries get their own binder)."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.items: List[_FromItem] = []
        #: internal column name -> (base table, base column)
        self.origins: Dict[str, Tuple[str, str]] = {}
        #: structural aggregate key -> output name (dedup across items/HAVING)
        self._agg_cache: Dict[Tuple[str, str], str] = {}
        self._aggregates: List[Aggregate] = []
        self._hidden_counter = 0
        self._output_aliases: set = set()
        #: Output column names of the bound SELECT, set by :meth:`bind`.
        self.output_names: List[str] = []

    # -- scope ----------------------------------------------------------------

    def try_resolve(self, ref: ast.ColumnRef) -> Optional[str]:
        """The internal name for ``ref``, or None when it does not resolve
        (including ambiguous unqualified names)."""
        if ref.qualifier is not None:
            for item in self.items:
                if item.label == ref.qualifier:
                    return item.columns.get(ref.name)
            return None
        matches = [
            item.columns[ref.name]
            for item in self.items
            if ref.name in item.columns
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve(self, ref: ast.ColumnRef) -> str:
        """The internal name for ``ref``; raises a positioned SqlError."""
        resolved = self.try_resolve(ref)
        if resolved is not None:
            return resolved
        shown = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
        count = sum(1 for item in self.items if ref.name in item.columns)
        if ref.qualifier is None and count > 1:
            raise SqlError(
                f"column {shown!r} is ambiguous; qualify it with a table "
                "name or alias", *ref.pos
            )
        raise SqlError(f"unknown column {shown!r}", *ref.pos)

    def _dictionary_of(self, internal: str, pos: ast.Pos) -> List[str]:
        """The dictionary of a stored string column (positioned error if not)."""
        origin = self.origins.get(internal)
        if origin is not None:
            table, base = origin
            column = self.catalog[table].column(base)
            if column.dictionary is not None:
                return column.dictionary
        raise SqlError(
            f"column {internal!r} is not a dictionary-encoded string "
            "column", *pos
        )

    # -- FROM -----------------------------------------------------------------

    def _item_plan(self, ref: ast.TableRef) -> PlanNode:
        """Scan (plus a renaming projection for aliased tables) for ``ref``."""
        if ref.table not in self.catalog:
            known = ", ".join(sorted(self.catalog))
            raise SqlError(
                f"unknown table {ref.table!r}; catalog has: {known}", *ref.pos
            )
        table = self.catalog[ref.table]
        plan: PlanNode = Scan(ref.table)
        columns: Dict[str, str] = {}
        if ref.alias is not None:
            outputs = tuple(
                (f"{ref.alias}.{name}", ColRef(name))
                for name in table.column_names
            )
            plan = Project(plan, outputs)
            columns = {name: f"{ref.alias}.{name}" for name in table.column_names}
        else:
            columns = {name: name for name in table.column_names}
        visible = {
            internal for item in self.items for internal in item.columns.values()
        }
        clash = sorted(visible & set(columns.values()))
        if clash:
            raise SqlError(
                f"table {ref.table!r} brings in duplicate column names "
                f"({', '.join(clash[:3])}...); alias one occurrence", *ref.pos
            )
        for base, internal in columns.items():
            self.origins[internal] = (ref.table, base)
        self.items.append(_FromItem(ref.table, ref.alias, columns))
        return plan

    def _bind_from(self, stmt: ast.SelectStmt) -> PlanNode:
        """Left-deep join tree over the FROM table and JOIN clauses."""
        plan = self._item_plan(stmt.table)
        for clause in stmt.joins:
            before = len(self.items)
            right_plan = self._item_plan(clause.ref)
            new_item = self.items[before]
            resolved: List[Tuple[str, str]] = []
            for left_ref, right_ref in clause.conditions:
                sides = []
                for ref in (left_ref, right_ref):
                    if (
                        ref.qualifier is not None
                        and ref.qualifier == new_item.label
                    ) or (
                        ref.qualifier is None and ref.name in new_item.columns
                        and self._resolve_outside(ref, before) is None
                    ):
                        sides.append(("right", new_item.columns[ref.name]))
                    else:
                        internal = self._resolve_outside(ref, before)
                        if internal is None:
                            shown = (
                                f"{ref.qualifier}.{ref.name}"
                                if ref.qualifier else ref.name
                            )
                            raise SqlError(
                                f"join condition column {shown!r} does not "
                                "resolve", *ref.pos
                            )
                        sides.append(("left", internal))
                kinds = {side for side, _name in sides}
                if kinds != {"left", "right"}:
                    raise SqlError(
                        "each ON equality must relate the joined table to "
                        "an earlier table", *clause.pos
                    )
                pair = dict(sides)
                resolved.append((pair["left"], pair["right"]))
            left_on, right_on = resolved[0]
            plan = Join(plan, right_plan, left_on, right_on)
            extras = [
                CompareCols(l, "eq", r) for l, r in resolved[1:]
            ]
            if extras:
                plan = Filter(plan, conjunction(extras))
        return plan

    def _resolve_outside(
        self, ref: ast.ColumnRef, item_count: int
    ) -> Optional[str]:
        """Resolve ``ref`` against only the first ``item_count`` items."""
        saved = self.items
        self.items = saved[:item_count]
        try:
            return self.try_resolve(ref)
        finally:
            self.items = saved

    # -- scalar expressions ---------------------------------------------------

    def _lower_expr(self, expr: ast.SqlExpr) -> Expr:
        """SQL scalar AST -> core :class:`~repro.core.expr.Expr`."""
        if isinstance(expr, ast.NumberLit):
            return Lit(expr.value)
        if isinstance(expr, ast.DateLit):
            return Lit(float(_date_days(expr)))
        if isinstance(expr, ast.ColumnRef):
            return ColRef(self.resolve(expr))
        if isinstance(expr, ast.BinaryOp):
            return _binop(
                expr.op, self._lower_expr(expr.left),
                self._lower_expr(expr.right)
            )
        if isinstance(expr, ast.ExtractYearExpr):
            return ExtractYear(self._lower_expr(expr.arg))
        if isinstance(expr, ast.CaseExpr):
            lowered: Expr = self._lower_expr(expr.otherwise)
            for condition, then in reversed(expr.whens):
                lowered = CaseWhen(
                    self._lower_predicate(condition),
                    self._lower_expr(then),
                    lowered,
                )
            return lowered
        if isinstance(expr, ast.StringLit):
            raise SqlError(
                "string literals are only supported in comparisons, "
                "IN lists, and LIKE patterns", *expr.pos
            )
        if isinstance(expr, ast.SubstringExpr):
            raise SqlError(
                "SUBSTRING is only supported in comparisons, IN lists, "
                "LIKE, and GROUP BY keys", *expr.pos
            )
        if isinstance(expr, ast.FuncCall):
            raise SqlError(
                f"aggregate {expr.name}() is not allowed here", *expr.pos
            )
        raise SqlError(f"unsupported expression {type(expr).__name__}")

    def _lower_key_expr(self, expr: ast.SqlExpr) -> Expr:
        """Group-key lowering; SUBSTRING keys become a CASE chain mapping
        dictionary codes to the (numeric) substring values."""
        if not isinstance(expr, ast.SubstringExpr):
            return self._lower_expr(expr)
        internal, transform = self._string_term(expr)
        dictionary = self._dictionary_of(internal, expr.pos)
        groups: Dict[str, List[float]] = {}
        for code, value in enumerate(dictionary):
            groups.setdefault(transform(value), []).append(float(code))
        try:
            ordered = sorted(groups, key=float)
        except ValueError:
            raise SqlError(
                "SUBSTRING group keys need numeric substring values "
                f"(got {next(iter(groups))!r})", *expr.pos
            )
        lowered: Expr = Lit(float(ordered[-1]))
        for value in reversed(ordered[:-1]):
            lowered = CaseWhen(
                InSet(internal, tuple(sorted(groups[value]))),
                Lit(float(value)),
                lowered,
            )
        return lowered

    # -- string terms ---------------------------------------------------------

    def _string_term(
        self, expr: ast.SqlExpr
    ) -> Tuple[str, Callable[[str], str]]:
        """A (column, value-transform) pair for string predicates: either a
        plain column reference or SUBSTRING over one."""
        if isinstance(expr, ast.ColumnRef):
            return self.resolve(expr), lambda value: value
        if isinstance(expr, ast.SubstringExpr) and isinstance(
            expr.arg, ast.ColumnRef
        ):
            start, length = expr.start - 1, expr.length
            return (
                self.resolve(expr.arg),
                lambda value: value[start:start + length],
            )
        pos = getattr(expr, "pos", (0, 0))
        raise SqlError(
            "string predicates need a column or SUBSTRING(column ...) "
            "on one side", *pos
        )

    def _membership(
        self, column: str, codes: Sequence[float], negated: bool
    ) -> Predicate:
        """IN-set over dictionary codes, degrading gracefully when the
        match set is empty (codes are non-negative, so ``< 0`` is the
        always-false predicate and ``>= 0`` the always-true one)."""
        if not codes:
            return Compare(column, "ge" if negated else "lt", 0.0)
        predicate: Predicate = InSet(
            column, tuple(sorted(float(c) for c in codes))
        )
        return Not(predicate) if negated else predicate

    # -- predicates -----------------------------------------------------------

    def _lower_predicate(self, pred: ast.SqlPred) -> Predicate:
        """SQL predicate AST -> core :class:`~repro.core.predicate.Predicate`."""
        if isinstance(pred, ast.AndPred):
            return conjunction(
                [self._lower_predicate(p) for p in pred.parts]
            )
        if isinstance(pred, ast.OrPred):
            return disjunction(
                [self._lower_predicate(p) for p in pred.parts]
            )
        if isinstance(pred, ast.NotPred):
            return Not(self._lower_predicate(pred.part))
        if isinstance(pred, ast.Comparison):
            return self._lower_comparison(pred)
        if isinstance(pred, ast.BetweenPred):
            return self._lower_between(pred)
        if isinstance(pred, ast.InListPred):
            return self._lower_in_list(pred)
        if isinstance(pred, ast.InSelectPred):
            if not isinstance(pred.expr, ast.ColumnRef):
                raise SqlError(
                    "IN (SELECT ...) needs a plain column on the left",
                    *pred.pos,
                )
            subplan, output = self._bind_subquery(pred.select)
            return InSubquery(
                self.resolve(pred.expr), subplan, output, pred.negated
            )
        if isinstance(pred, ast.LikePred):
            internal, transform = self._string_term(pred.expr)
            dictionary = self._dictionary_of(
                internal, getattr(pred.expr, "pos", pred.pos)
            )
            regex = _like_regex(pred.pattern)
            codes = [
                float(code)
                for code, value in enumerate(dictionary)
                if regex.fullmatch(transform(value))
            ]
            return self._membership(internal, codes, pred.negated)
        if isinstance(pred, ast.ExistsPred):
            raise SqlError(
                "EXISTS is only supported as a top-level AND conjunct of "
                "WHERE", *pred.pos
            )
        raise SqlError(f"unsupported predicate {type(pred).__name__}")

    def _lower_comparison(self, pred: ast.Comparison) -> Predicate:
        """Lower ``left <op> right`` in its many shapes."""
        left, op, right = pred.left, pred.op, pred.right
        if isinstance(right, ast.SelectStmt):
            if not isinstance(left, ast.ColumnRef):
                raise SqlError(
                    "a scalar subquery comparison needs a plain column on "
                    "the left", *pred.pos
                )
            subplan, output = self._bind_subquery(right, scalar=True)
            return ScalarCompare(self.resolve(left), op, subplan, output)
        if isinstance(left, (ast.NumberLit, ast.DateLit)) and isinstance(
            right, ast.ColumnRef
        ):
            left, right, op = right, left, _FLIPPED[op]
        if isinstance(right, ast.StringLit) or isinstance(
            left, (ast.StringLit, ast.SubstringExpr)
        ):
            return self._lower_string_compare(pred, left, op, right)
        if isinstance(left, ast.ColumnRef) and isinstance(
            right, ast.ColumnRef
        ):
            return CompareCols(self.resolve(left), op, self.resolve(right))
        if isinstance(left, ast.ColumnRef) and isinstance(
            right, (ast.NumberLit, ast.DateLit)
        ):
            return Compare(self.resolve(left), op, _literal_value(right))
        raise SqlError(
            "unsupported comparison shape (need column vs literal, column "
            "vs column, or column vs scalar subquery)", *pred.pos
        )

    def _lower_string_compare(
        self,
        pred: ast.Comparison,
        left: ast.SqlExpr,
        op: str,
        right: "ast.SqlExpr | ast.SelectStmt",
    ) -> Predicate:
        """``column = 'literal'`` (and friends) via dictionary codes."""
        if isinstance(left, ast.StringLit):
            left, right, op = right, left, _FLIPPED[op]
        if not isinstance(right, ast.StringLit):
            raise SqlError(
                "string comparisons need a string literal on one side",
                *pred.pos,
            )
        if op not in ("eq", "ne"):
            raise SqlError(
                "only = and <> are supported for string comparisons",
                *pred.pos,
            )
        internal, transform = self._string_term(left)
        dictionary = self._dictionary_of(
            internal, getattr(left, "pos", pred.pos)
        )
        codes = [
            float(code)
            for code, value in enumerate(dictionary)
            if transform(value) == right.value
        ]
        return self._membership(internal, codes, negated=(op == "ne"))

    def _lower_between(self, pred: ast.BetweenPred) -> Predicate:
        """``expr [NOT] BETWEEN low AND high`` over numeric/date bounds."""
        if not isinstance(pred.expr, ast.ColumnRef):
            raise SqlError(
                "BETWEEN needs a plain column on the left", *pred.pos
            )
        low = _literal_value(pred.low, "BETWEEN bounds")
        high = _literal_value(pred.high, "BETWEEN bounds")
        lowered: Predicate = Between(self.resolve(pred.expr), low, high)
        return Not(lowered) if pred.negated else lowered

    def _lower_in_list(self, pred: ast.InListPred) -> Predicate:
        """``expr [NOT] IN (literals)`` for numeric, date, and string lists."""
        strings = [v for v in pred.values if isinstance(v, ast.StringLit)]
        if strings:
            if len(strings) != len(pred.values):
                raise SqlError(
                    "IN lists cannot mix strings and numbers", *pred.pos
                )
            internal, transform = self._string_term(pred.expr)
            dictionary = self._dictionary_of(
                internal, getattr(pred.expr, "pos", pred.pos)
            )
            wanted = {s.value for s in strings}
            codes = [
                float(code)
                for code, value in enumerate(dictionary)
                if transform(value) in wanted
            ]
            return self._membership(internal, codes, pred.negated)
        if not isinstance(pred.expr, ast.ColumnRef):
            raise SqlError(
                "IN needs a plain column on the left", *pred.pos
            )
        values = tuple(
            sorted({_literal_value(v, "IN-list values") for v in pred.values})
        )
        return self._membership(self.resolve(pred.expr), values, pred.negated)

    # -- subqueries -----------------------------------------------------------

    def _bind_subquery(
        self, select: ast.SelectStmt, scalar: bool = False
    ) -> Tuple[PlanNode, str]:
        """Bind an uncorrelated IN/scalar subquery: (plan, output column)."""
        if len(select.items) != 1 or select.star:
            raise SqlError(
                "a subquery must select exactly one column", *select.pos
            )
        inner = _SelectBinder(self.catalog)
        plan = inner.bind(select, subquery_default_alias="__scalar")
        output = inner.output_names[0]
        return optimize(plan), output

    def _bind_exists(
        self, pred: ast.ExistsPred, plan: PlanNode
    ) -> PlanNode:
        """Rewrite ``[NOT] EXISTS`` into a semi/anti join on ``plan``."""
        select = pred.select
        if select.group_by or select.having or select.order_by or (
            select.limit is not None
        ):
            raise SqlError(
                "EXISTS subqueries support only FROM/JOIN and WHERE",
                *pred.pos,
            )
        inner = _SelectBinder(self.catalog)
        inner_plan = inner._bind_from(select)
        correlation: Optional[Tuple[str, str]] = None
        local: List[Predicate] = []
        for conjunct in _flatten_and(select.where):
            pair = self._correlated_equality(conjunct, inner)
            if pair is not None:
                if correlation is not None:
                    raise SqlError(
                        "EXISTS supports exactly one correlated equality",
                        *conjunct.pos,
                    )
                correlation = pair
                continue
            local.append(inner._lower_predicate(conjunct))
        if correlation is None:
            raise SqlError(
                "EXISTS needs one correlated equality linking the inner "
                "and outer query", *pred.pos
            )
        if local:
            inner_plan = Filter(inner_plan, conjunction(local))
        outer_col, inner_col = correlation
        return SemiJoin(
            plan, optimize(inner_plan), outer_col, inner_col, pred.negated
        )

    def _correlated_equality(
        self, conjunct: ast.SqlPred, inner: "_SelectBinder"
    ) -> Optional[Tuple[str, str]]:
        """(outer column, inner column) when ``conjunct`` correlates the
        EXISTS subquery with this (outer) binder's scope; else None."""
        if not (
            isinstance(conjunct, ast.Comparison)
            and conjunct.op == "eq"
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return None
        left, right = conjunct.left, conjunct.right
        left_inner = inner.try_resolve(left)
        right_inner = inner.try_resolve(right)
        if left_inner is None and right_inner is not None:
            outer_col = self.try_resolve(left)
            if outer_col is not None:
                return outer_col, right_inner
        if right_inner is None and left_inner is not None:
            outer_col = self.try_resolve(right)
            if outer_col is not None:
                return outer_col, left_inner
        return None

    # -- aggregates -----------------------------------------------------------

    def _register_aggregate(self, call: ast.FuncCall) -> str:
        """Add (or reuse) an aggregate output for ``call``; returns its name."""
        expr = None if call.star else self._lower_expr(call.arg)
        kind = call.name
        if kind == "count":
            expr = None
        key = (kind, repr(expr))
        cached = self._agg_cache.get(key)
        if cached is not None:
            return cached
        name = f"__agg{self._hidden_counter}"
        self._hidden_counter += 1
        self._aggregates.append(Aggregate(name, kind, expr))
        self._agg_cache[key] = name
        return name

    def _alias_aggregate(self, call: ast.FuncCall, alias: str) -> str:
        """Register a select-list aggregate under its visible alias."""
        expr = None if call.star else self._lower_expr(call.arg)
        kind = call.name
        if kind == "count":
            expr = None
        key = (kind, repr(expr))
        cached = self._agg_cache.get(key)
        if cached is not None:
            return cached
        self._aggregates.append(Aggregate(alias, kind, expr))
        self._agg_cache[key] = alias
        return alias

    def _lower_having(self, pred: ast.SqlPred) -> Predicate:
        """HAVING predicates compare aggregate outputs (by alias or by
        re-stating the aggregate call) against literals or scalar
        subqueries."""
        if isinstance(pred, ast.AndPred):
            return conjunction([self._lower_having(p) for p in pred.parts])
        if isinstance(pred, ast.OrPred):
            return disjunction([self._lower_having(p) for p in pred.parts])
        if isinstance(pred, ast.NotPred):
            return Not(self._lower_having(pred.part))
        if not isinstance(pred, ast.Comparison):
            raise SqlError(
                "HAVING supports only comparisons (combined with AND/OR/"
                "NOT)", *getattr(pred, "pos", (0, 0))
            )
        left = pred.left
        if isinstance(left, ast.FuncCall):
            name = self._register_aggregate(left)
        elif isinstance(left, ast.ColumnRef) and left.qualifier is None and (
            left.name in self._output_aliases
        ):
            name = left.name
        else:
            raise SqlError(
                "the left side of a HAVING comparison must be an "
                "aggregate call or a select-list alias", *pred.pos
            )
        right = pred.right
        if isinstance(right, ast.SelectStmt):
            subplan, output = self._bind_subquery(right, scalar=True)
            return ScalarCompare(name, pred.op, subplan, output)
        if isinstance(right, (ast.NumberLit, ast.DateLit)):
            return Compare(name, pred.op, _literal_value(right))
        raise SqlError(
            "the right side of a HAVING comparison must be a literal or "
            "a scalar subquery", *pred.pos
        )

    # -- the main lowering ----------------------------------------------------

    def bind(
        self,
        stmt: ast.SelectStmt,
        subquery_default_alias: Optional[str] = None,
    ) -> PlanNode:
        """Lower one SELECT block; ``output_names`` is set afterwards."""
        if stmt.distinct and subquery_default_alias is None:
            raise SqlError(
                "SELECT DISTINCT is only supported inside IN subqueries",
                *stmt.pos,
            )
        plan = self._bind_from(stmt)
        exists_preds: List[ast.ExistsPred] = []
        filters: List[Predicate] = []
        for conjunct in _flatten_and(stmt.where):
            if isinstance(conjunct, ast.ExistsPred):
                exists_preds.append(conjunct)
            else:
                filters.append(self._lower_predicate(conjunct))
        if filters:
            plan = Filter(plan, conjunction(filters))
        for pred in exists_preds:
            plan = self._bind_exists(pred, plan)

        grouped = bool(stmt.group_by) or stmt.having is not None or any(
            _contains_aggregate(item.expr) for item in stmt.items
        )
        if grouped:
            plan = self._bind_grouped(stmt, plan, subquery_default_alias)
        else:
            plan = self._bind_plain(stmt, plan, subquery_default_alias)

        if stmt.order_by is not None:
            if stmt.order_by.name not in self.output_names:
                raise SqlError(
                    f"ORDER BY column {stmt.order_by.name!r} is not an "
                    "output of the query", *stmt.order_by.pos
                )
            plan = OrderBy(plan, stmt.order_by.name, stmt.order_by.descending)
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan

    def _item_name(
        self, item: ast.SelectItem, default_alias: Optional[str]
    ) -> str:
        """Output name of a select item (alias, column name, or default)."""
        if item.alias is not None:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if default_alias is not None:
            return default_alias
        raise SqlError(
            "a computed select item needs an AS alias", *item.pos
        )

    def _bind_plain(
        self,
        stmt: ast.SelectStmt,
        plan: PlanNode,
        default_alias: Optional[str],
    ) -> PlanNode:
        """Non-aggregated select list: a (pruning) projection."""
        if stmt.star:
            self.output_names = [
                internal
                for item in self.items
                for internal in item.columns.values()
            ]
            return plan
        outputs: List[Tuple[str, Expr]] = []
        for item in stmt.items:
            name = self._item_name(item, default_alias)
            outputs.append((name, self._lower_expr(item.expr)))
        self.output_names = [name for name, _expr in outputs]
        return Project(plan, tuple(outputs))

    def _bind_grouped(
        self,
        stmt: ast.SelectStmt,
        plan: PlanNode,
        default_alias: Optional[str],
    ) -> PlanNode:
        """Aggregated select list: pre-projection, GroupBy, HAVING, and a
        post-projection when the natural output shape differs."""
        if stmt.star:
            raise SqlError(
                "SELECT * cannot be combined with aggregation", *stmt.pos
            )
        items_by_alias = {
            item.alias: item for item in stmt.items if item.alias is not None
        }
        self._output_aliases = set(items_by_alias)

        # Group keys: a select alias or a plain column name.
        keys: List[Tuple[str, Expr]] = []
        for group_name in stmt.group_by:
            item = items_by_alias.get(group_name)
            if item is not None:
                if _contains_aggregate(item.expr):
                    raise SqlError(
                        f"GROUP BY key {group_name!r} refers to an "
                        "aggregated select item", *item.pos
                    )
                keys.append((group_name, self._lower_key_expr(item.expr)))
            else:
                internal = self.resolve(
                    ast.ColumnRef(None, group_name, stmt.pos)
                )
                keys.append((group_name, ColRef(internal)))
        key_names = [name for name, _expr in keys]

        # Select items: keys pass through; aggregates register outputs.
        post_outputs: List[Tuple[str, Expr]] = []
        for item in stmt.items:
            name = self._item_name(item, default_alias)
            if not _contains_aggregate(item.expr):
                if name not in key_names:
                    raise SqlError(
                        f"select item {name!r} is neither aggregated nor "
                        "a GROUP BY key", *item.pos
                    )
                post_outputs.append((name, ColRef(name)))
                continue
            if isinstance(item.expr, ast.FuncCall):
                agg_name = self._alias_aggregate(item.expr, name)
                post_outputs.append((name, ColRef(agg_name)))
                continue
            rewritten = self._replace_aggregates(item.expr)
            post_outputs.append((name, rewritten))
        if stmt.having is not None:
            having = self._lower_having(stmt.having)
        else:
            having = None

        # Pre-projection: materialise computed/renamed keys.
        needs_pre = any(
            not (isinstance(expr, ColRef) and expr.name == name)
            for name, expr in keys
        )
        if needs_pre:
            pre: List[Tuple[str, Expr]] = list(keys)
            emitted = set(key_names)
            for aggregate in self._aggregates:
                if aggregate.expr is None:
                    continue
                for column in sorted(aggregate.expr.columns()):
                    if column not in emitted:
                        pre.append((column, ColRef(column)))
                        emitted.add(column)
            plan = Project(plan, tuple(pre))

        plan = GroupBy(plan, tuple(key_names), tuple(self._aggregates))
        if having is not None:
            plan = Filter(plan, having)

        natural = key_names + [a.name for a in self._aggregates]
        desired = [name for name, _expr in post_outputs]
        identity = desired == natural and all(
            isinstance(expr, ColRef) and expr.name == name
            for name, expr in post_outputs
        )
        self.output_names = desired
        if identity:
            return plan
        return Project(plan, tuple(post_outputs))

    def _replace_aggregates(self, expr: ast.SqlExpr) -> Expr:
        """Lower an expression *over* aggregates: each aggregate call is
        registered as a hidden output and replaced by a reference."""
        if isinstance(expr, ast.FuncCall):
            return ColRef(self._register_aggregate(expr))
        if isinstance(expr, ast.BinaryOp):
            return _binop(
                expr.op,
                self._replace_aggregates(expr.left),
                self._replace_aggregates(expr.right),
            )
        if isinstance(expr, ast.NumberLit):
            return Lit(expr.value)
        raise SqlError(
            "expressions over aggregates support only arithmetic over "
            "aggregate calls and numbers", *getattr(expr, "pos", (0, 0))
        )


# -- module helpers -----------------------------------------------------------


def _binop(op: str, left: Expr, right: Expr) -> Expr:
    """SQL arithmetic spelling -> core BinOp."""
    from repro.core.expr import BinOp

    return BinOp(_ARITH[op], left, right)


def _flatten_and(pred: Optional[ast.SqlPred]) -> List[ast.SqlPred]:
    """Top-level AND conjuncts of a (possibly absent) predicate."""
    if pred is None:
        return []
    if isinstance(pred, ast.AndPred):
        out: List[ast.SqlPred] = []
        for part in pred.parts:
            out.extend(_flatten_and(part))
        return out
    return [pred]


def _contains_aggregate(expr: ast.SqlExpr) -> bool:
    """True when the expression tree contains an aggregate call."""
    if isinstance(expr, ast.FuncCall):
        return True
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(
            expr.right
        )
    if isinstance(expr, ast.ExtractYearExpr):
        return _contains_aggregate(expr.arg)
    if isinstance(expr, ast.CaseExpr):
        return any(
            _contains_aggregate(then) for _cond, then in expr.whens
        ) or _contains_aggregate(expr.otherwise)
    return False


def _literal_value(
    expr: "ast.SqlExpr | ast.SelectStmt", what: str = "comparison values"
) -> float:
    """The float value of a numeric or date literal."""
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.DateLit):
        return float(_date_days(expr))
    raise SqlError(
        f"{what} must be numeric or DATE literals",
        *getattr(expr, "pos", (0, 0)),
    )


def _date_days(lit: ast.DateLit) -> int:
    """Epoch-day value of a DATE literal (positioned error on bad text)."""
    try:
        return date_to_days(lit.value)
    except Exception:
        raise SqlError(
            f"invalid date literal {lit.value!r} (want 'yyyy-mm-dd')",
            *lit.pos,
        )


def _like_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    out: List[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out))
