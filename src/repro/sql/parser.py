"""Recursive-descent SQL parser.

Accepts single-block ``SELECT`` statements with explicit ``JOIN ... ON``
clauses, ``WHERE`` (including ``IN``/``EXISTS`` subqueries, ``BETWEEN``,
``LIKE``), ``GROUP BY``, ``HAVING``, a single-key ``ORDER BY``, and
``LIMIT`` — the fragment the TPC-H suite needs.  All failures raise
:class:`~repro.sql.errors.SqlError` with the line/column of the
offending token; the parser never lets a Python exception escape for
malformed input.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sql.ast import (
    AndPred,
    BetweenPred,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    DateLit,
    ExistsPred,
    ExtractYearExpr,
    FuncCall,
    InListPred,
    InSelectPred,
    JoinClause,
    LikePred,
    NotPred,
    NumberLit,
    OrderItem,
    OrPred,
    Pos,
    SelectItem,
    SelectStmt,
    SqlExpr,
    SqlPred,
    StringLit,
    SubstringExpr,
    TableRef,
)
from repro.sql.errors import SqlError
from repro.sql.tokenizer import Token, tokenize

#: Aggregate function names the parser recognises before ``(``.
AGGREGATE_FUNCTIONS = ("SUM", "COUNT", "MIN", "MAX", "AVG")

#: Words that may never be used as bare identifiers (aliases/columns).
RESERVED_WORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "JOIN", "INNER", "ON", "AS",
    "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AND", "OR", "NOT", "IN",
    "EXISTS", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END",
    "EXTRACT", "DATE", "ASC", "DESC", "SUBSTRING", "FOR",
})

_COMPARE_SPELLINGS = {
    "=": "eq", "<>": "ne", "!=": "ne",
    "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


def parse(text: str) -> SelectStmt:
    """Parse SQL ``text`` into a :class:`~repro.sql.ast.SelectStmt`."""
    parser = _Parser(tokenize(text))
    stmt = parser.select()
    parser.accept_op(";")
    tail = parser.peek()
    if tail.kind != "end":
        raise SqlError(
            f"unexpected trailing input {tail.value!r}", tail.line, tail.column
        )
    return stmt


class _Parser:
    """Token-stream cursor with backtracking support."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- cursor helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        """The token ``ahead`` positions from the cursor."""
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.peek()
        if token.kind != "end":
            self.index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SqlError:
        """Build a positioned :class:`SqlError` at ``token`` (or cursor)."""
        token = token or self.peek()
        return SqlError(message, token.line, token.column)

    def accept_word(self, word: str) -> bool:
        """Consume the keyword ``word`` if present."""
        if self.peek().matches(word):
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> Token:
        """Consume the keyword ``word`` or fail."""
        token = self.peek()
        if not token.matches(word):
            raise self.error(
                f"expected {word}, found {token.value or 'end of input'!r}"
            )
        return self.advance()

    def accept_op(self, op: str) -> bool:
        """Consume the operator ``op`` if present."""
        token = self.peek()
        if token.kind == "op" and token.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        """Consume the operator ``op`` or fail."""
        token = self.peek()
        if token.kind != "op" or token.value != op:
            raise self.error(
                f"expected {op!r}, found {token.value or 'end of input'!r}"
            )
        return self.advance()

    def identifier(self, what: str) -> Token:
        """Consume a non-reserved identifier token."""
        token = self.peek()
        if token.kind != "ident":
            raise self.error(
                f"expected {what}, found {token.value or 'end of input'!r}"
            )
        if token.value.upper() in RESERVED_WORDS:
            raise self.error(
                f"expected {what}, found reserved word {token.value!r}"
            )
        return self.advance()

    @staticmethod
    def pos(token: Token) -> Pos:
        """The (line, column) of ``token``."""
        return (token.line, token.column)

    # -- statement ------------------------------------------------------------

    def select(self) -> SelectStmt:
        """select := SELECT [DISTINCT] items FROM ref join* [WHERE] ..."""
        head = self.expect_word("SELECT")
        distinct = self.accept_word("DISTINCT")
        star = False
        items: List[SelectItem] = []
        if self.accept_op("*"):
            star = True
        else:
            items.append(self.select_item())
            while self.accept_op(","):
                items.append(self.select_item())
        self.expect_word("FROM")
        table = self.table_ref()
        joins: List[JoinClause] = []
        while self.peek().matches("JOIN") or self.peek().matches("INNER"):
            joins.append(self.join_clause())
        where = self.predicate() if self.accept_word("WHERE") else None
        group_by: Tuple[str, ...] = ()
        if self.accept_word("GROUP"):
            self.expect_word("BY")
            names = [self.group_key()]
            while self.accept_op(","):
                names.append(self.group_key())
            group_by = tuple(names)
        having = self.predicate() if self.accept_word("HAVING") else None
        order_by = None
        if self.accept_word("ORDER"):
            self.expect_word("BY")
            key = self.identifier("an ORDER BY column")
            descending = False
            if self.accept_word("DESC"):
                descending = True
            elif self.accept_word("ASC"):
                descending = False
            order_by = OrderItem(key.value, descending, self.pos(key))
        limit = None
        if self.accept_word("LIMIT"):
            token = self.peek()
            if token.kind != "number" or "." in token.value:
                raise self.error("LIMIT needs an integer literal")
            self.advance()
            limit = int(token.value)
        return SelectStmt(
            items=tuple(items),
            star=star,
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            pos=self.pos(head),
            distinct=distinct,
        )

    def select_item(self) -> SelectItem:
        """select_item := expr [[AS] ident]"""
        head = self.peek()
        expr = self.expression()
        alias = None
        if self.accept_word("AS"):
            alias = self.identifier("an alias after AS").value
        elif (
            self.peek().kind == "ident"
            and self.peek().value.upper() not in RESERVED_WORDS
        ):
            alias = self.advance().value
        return SelectItem(expr, alias, self.pos(head))

    def group_key(self) -> str:
        """A GROUP BY key: an output alias or an unqualified column name."""
        return self.identifier("a GROUP BY column").value

    def table_ref(self) -> TableRef:
        """table_ref := table_name [[AS] alias]"""
        name = self.identifier("a table name")
        alias = None
        if self.accept_word("AS"):
            alias = self.identifier("a table alias").value
        elif (
            self.peek().kind == "ident"
            and self.peek().value.upper() not in RESERVED_WORDS
        ):
            alias = self.advance().value
        return TableRef(name.value, alias, self.pos(name))

    def join_clause(self) -> JoinClause:
        """join := [INNER] JOIN table_ref ON colref = colref [AND ...]"""
        head = self.peek()
        self.accept_word("INNER")
        self.expect_word("JOIN")
        ref = self.table_ref()
        self.expect_word("ON")
        conditions = [self.join_condition()]
        while self.accept_word("AND"):
            conditions.append(self.join_condition())
        return JoinClause(ref, tuple(conditions), self.pos(head))

    def join_condition(self) -> Tuple[ColumnRef, ColumnRef]:
        """One ``a = b`` equality between column references."""
        left = self.column_ref()
        self.expect_op("=")
        right = self.column_ref()
        return (left, right)

    def column_ref(self) -> ColumnRef:
        """colref := ident | ident '.' ident"""
        first = self.identifier("a column name")
        if self.accept_op("."):
            second = self.identifier("a column name after '.'")
            return ColumnRef(first.value, second.value, self.pos(first))
        return ColumnRef(None, first.value, self.pos(first))

    # -- predicates -----------------------------------------------------------

    def predicate(self) -> SqlPred:
        """pred := and_pred (OR and_pred)*"""
        head = self.peek()
        parts = [self.and_predicate()]
        while self.accept_word("OR"):
            parts.append(self.and_predicate())
        if len(parts) == 1:
            return parts[0]
        return OrPred(tuple(parts), self.pos(head))

    def and_predicate(self) -> SqlPred:
        """and_pred := unary_pred (AND unary_pred)*"""
        head = self.peek()
        parts = [self.unary_predicate()]
        while self.accept_word("AND"):
            parts.append(self.unary_predicate())
        if len(parts) == 1:
            return parts[0]
        return AndPred(tuple(parts), self.pos(head))

    def unary_predicate(self) -> SqlPred:
        """unary_pred := NOT unary_pred | EXISTS (select) | (pred) | cmp"""
        head = self.peek()
        if self.accept_word("NOT"):
            if self.peek().matches("EXISTS"):
                exists = self.unary_predicate()
                assert isinstance(exists, ExistsPred)
                return ExistsPred(exists.select, True, self.pos(head))
            return NotPred(self.unary_predicate(), self.pos(head))
        if self.accept_word("EXISTS"):
            self.expect_op("(")
            select = self.select()
            self.expect_op(")")
            return ExistsPred(select, False, self.pos(head))
        if self.peek().kind == "op" and self.peek().value == "(":
            # Could be a parenthesised predicate or a parenthesised
            # arithmetic expression opening a comparison; try the
            # predicate reading first and backtrack on failure.
            mark = self.index
            try:
                self.advance()
                inner = self.predicate()
                self.expect_op(")")
                return inner
            except SqlError:
                self.index = mark
        return self.comparison()

    def comparison(self) -> SqlPred:
        """cmp := expr (op expr | op (select) | BETWEEN | IN | LIKE)"""
        head = self.peek()
        left = self.expression()
        negated = self.accept_word("NOT")
        if self.accept_word("BETWEEN"):
            low = self.expression()
            self.expect_word("AND")
            high = self.expression()
            return BetweenPred(left, low, high, negated, self.pos(head))
        if self.accept_word("IN"):
            return self.in_tail(left, negated, head)
        if self.accept_word("LIKE"):
            token = self.peek()
            if token.kind != "string":
                raise self.error("LIKE needs a string pattern")
            self.advance()
            return LikePred(left, token.value, negated, self.pos(head))
        if negated:
            raise self.error("expected BETWEEN, IN, or LIKE after NOT")
        token = self.peek()
        if token.kind != "op" or token.value not in _COMPARE_SPELLINGS:
            raise self.error(
                f"expected a comparison operator, found "
                f"{token.value or 'end of input'!r}"
            )
        self.advance()
        op = _COMPARE_SPELLINGS[token.value]
        if (
            self.peek().kind == "op"
            and self.peek().value == "("
            and self.peek(1).matches("SELECT")
        ):
            self.advance()
            select = self.select()
            self.expect_op(")")
            return Comparison(left, op, select, self.pos(head))
        right = self.expression()
        return Comparison(left, op, right, self.pos(head))

    def in_tail(
        self, left: SqlExpr, negated: bool, head: Token
    ) -> SqlPred:
        """The parenthesised tail of ``expr [NOT] IN (...)``."""
        self.expect_op("(")
        if self.peek().matches("SELECT"):
            select = self.select()
            self.expect_op(")")
            return InSelectPred(left, select, negated, self.pos(head))
        values = [self.literal()]
        while self.accept_op(","):
            values.append(self.literal())
        self.expect_op(")")
        return InListPred(left, tuple(values), negated, self.pos(head))

    def literal(self) -> SqlExpr:
        """A number, string, or DATE literal (IN-list elements)."""
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return NumberLit(float(token.value), self.pos(token))
        if token.kind == "string":
            self.advance()
            return StringLit(token.value, self.pos(token))
        if token.matches("DATE"):
            return self.date_literal()
        raise self.error(
            f"expected a literal, found {token.value or 'end of input'!r}"
        )

    def date_literal(self) -> DateLit:
        """``DATE 'yyyy-mm-dd'``."""
        head = self.expect_word("DATE")
        token = self.peek()
        if token.kind != "string":
            raise self.error("DATE needs a quoted 'yyyy-mm-dd' string")
        self.advance()
        return DateLit(token.value, self.pos(head))

    # -- scalar expressions ---------------------------------------------------

    def expression(self) -> SqlExpr:
        """expr := term (('+'|'-') term)*"""
        head = self.peek()
        left = self.term()
        while self.peek().kind == "op" and self.peek().value in ("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.term(), self.pos(head))
        return left

    def term(self) -> SqlExpr:
        """term := factor (('*'|'/') factor)*"""
        head = self.peek()
        left = self.factor()
        while self.peek().kind == "op" and self.peek().value in ("*", "/"):
            op = self.advance().value
            left = BinaryOp(op, left, self.factor(), self.pos(head))
        return left

    def factor(self) -> SqlExpr:
        """factor := '-' factor | primary"""
        token = self.peek()
        if token.kind == "op" and token.value == "-":
            self.advance()
            inner = self.factor()
            if isinstance(inner, NumberLit):
                return NumberLit(-inner.value, self.pos(token))
            return BinaryOp(
                "-", NumberLit(0.0, self.pos(token)), inner, self.pos(token)
            )
        return self.primary()

    def primary(self) -> SqlExpr:
        """primary := literal | colref | call | CASE | EXTRACT | SUBSTRING | (expr)"""
        token = self.peek()
        if token.kind == "number" or token.kind == "string":
            return self.literal()
        if token.kind == "op" and token.value == "(":
            self.advance()
            inner = self.expression()
            self.expect_op(")")
            return inner
        if token.matches("DATE"):
            return self.date_literal()
        if token.matches("CASE"):
            return self.case_expression()
        if token.matches("EXTRACT"):
            return self.extract_expression()
        if token.matches("SUBSTRING"):
            return self.substring_expression()
        if token.kind == "ident" and token.value.upper() in AGGREGATE_FUNCTIONS:
            nxt = self.peek(1)
            if nxt.kind == "op" and nxt.value == "(":
                return self.aggregate_call()
        if token.kind == "ident":
            if token.value.upper() in RESERVED_WORDS:
                raise self.error(
                    f"unexpected reserved word {token.value!r} in expression"
                )
            nxt = self.peek(1)
            if nxt.kind == "op" and nxt.value == "(":
                raise self.error(f"unknown function {token.value!r}")
            return self.column_ref()
        raise self.error(
            f"expected an expression, found {token.value or 'end of input'!r}"
        )

    def aggregate_call(self) -> FuncCall:
        """``SUM(expr)`` / ``COUNT(*)`` / ... aggregate call."""
        name = self.advance()
        self.expect_op("(")
        if name.value.upper() == "COUNT" and self.accept_op("*"):
            self.expect_op(")")
            return FuncCall(
                name.value.lower(), None, star=True, pos=self.pos(name)
            )
        arg = self.expression()
        self.expect_op(")")
        return FuncCall(name.value.lower(), arg, star=False, pos=self.pos(name))

    def case_expression(self) -> CaseExpr:
        """``CASE WHEN pred THEN expr [WHEN ...] ELSE expr END``."""
        head = self.expect_word("CASE")
        whens: List[Tuple[SqlPred, SqlExpr]] = []
        while self.accept_word("WHEN"):
            condition = self.predicate()
            self.expect_word("THEN")
            whens.append((condition, self.expression()))
        if not whens:
            raise self.error("CASE needs at least one WHEN", head)
        self.expect_word("ELSE")
        otherwise = self.expression()
        self.expect_word("END")
        return CaseExpr(tuple(whens), otherwise, self.pos(head))

    def extract_expression(self) -> ExtractYearExpr:
        """``EXTRACT(YEAR FROM expr)`` (YEAR is the only supported field)."""
        head = self.expect_word("EXTRACT")
        self.expect_op("(")
        field = self.peek()
        if not field.matches("YEAR"):
            raise self.error(
                f"only EXTRACT(YEAR ...) is supported, found {field.value!r}"
            )
        self.advance()
        self.expect_word("FROM")
        arg = self.expression()
        self.expect_op(")")
        return ExtractYearExpr(arg, self.pos(head))

    def substring_expression(self) -> SubstringExpr:
        """``SUBSTRING(expr FROM start FOR length)`` with integer bounds."""
        head = self.expect_word("SUBSTRING")
        self.expect_op("(")
        arg = self.expression()
        self.expect_word("FROM")
        start = self._small_int("SUBSTRING start")
        self.expect_word("FOR")
        length = self._small_int("SUBSTRING length")
        self.expect_op(")")
        return SubstringExpr(arg, start, length, self.pos(head))

    def _small_int(self, what: str) -> int:
        """A positive integer literal (SUBSTRING bounds)."""
        token = self.peek()
        if token.kind != "number" or "." in token.value:
            raise self.error(f"{what} needs an integer literal")
        self.advance()
        value = int(token.value)
        if value < 1:
            raise self.error(f"{what} must be >= 1", token)
        return value
