"""Typed SQL frontend errors with source positions.

Every failure in the tokenizer, parser, or binder raises
:class:`SqlError`, which carries the 1-based line and column of the
offending token so callers (the CLI, the serve layer, tests) can report
``line 2, column 14`` instead of a traceback.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError


class SqlError(ReproError):
    """Raised for malformed SQL text or SQL that cannot be bound.

    ``line``/``column`` are 1-based source coordinates (``None`` when the
    failure has no single position, e.g. an empty statement).
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        self.bare_message = message
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
