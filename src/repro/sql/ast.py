"""SQL abstract syntax tree.

Plain frozen dataclasses produced by :mod:`repro.sql.parser` and consumed
by :mod:`repro.sql.binder`.  Every node carries the ``(line, column)`` of
its first token so binder errors point back into the SQL text.  The tree
is deliberately small: single-SELECT statements with explicit JOINs,
which is exactly the shape of the TPC-H queries this engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

Pos = Tuple[int, int]


class SqlNode:
    """Base class of all SQL AST nodes."""


# -- scalar expressions -------------------------------------------------------


class SqlExpr(SqlNode):
    """Base class of scalar expression nodes."""


@dataclass(frozen=True)
class NumberLit(SqlExpr):
    """A numeric literal."""

    value: float
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class StringLit(SqlExpr):
    """A single-quoted string literal."""

    value: str
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class DateLit(SqlExpr):
    """A ``DATE 'yyyy-mm-dd'`` literal (kept as text until binding)."""

    value: str
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A possibly-qualified column reference (``qualifier`` may be None)."""

    qualifier: Optional[str]
    name: str
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class BinaryOp(SqlExpr):
    """Arithmetic node; ``op`` is one of ``+ - * /``."""

    op: str
    left: SqlExpr
    right: SqlExpr
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    """An aggregate call: SUM/COUNT/MIN/MAX/AVG; ``star`` marks COUNT(*)."""

    name: str
    arg: Optional[SqlExpr]
    star: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class ExtractYearExpr(SqlExpr):
    """``EXTRACT(YEAR FROM expr)``."""

    arg: SqlExpr
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class SubstringExpr(SqlExpr):
    """``SUBSTRING(expr FROM start FOR length)`` (1-based start)."""

    arg: SqlExpr
    start: int
    length: int
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class CaseExpr(SqlExpr):
    """``CASE WHEN cond THEN then ... ELSE otherwise END``."""

    whens: Tuple[Tuple["SqlPred", SqlExpr], ...]
    otherwise: SqlExpr
    pos: Pos = (0, 0)


# -- predicates ---------------------------------------------------------------


class SqlPred(SqlNode):
    """Base class of predicate nodes."""


@dataclass(frozen=True)
class Comparison(SqlPred):
    """``left <op> right`` where right may be a scalar subquery."""

    left: SqlExpr
    op: str  # eq | ne | lt | le | gt | ge
    right: "SqlExpr | SelectStmt"
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class BetweenPred(SqlPred):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class InListPred(SqlPred):
    """``expr [NOT] IN (literal, ...)``."""

    expr: SqlExpr
    values: Tuple[SqlExpr, ...]
    negated: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class InSelectPred(SqlPred):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: SqlExpr
    select: "SelectStmt"
    negated: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class LikePred(SqlPred):
    """``expr [NOT] LIKE 'pattern'`` with ``%``/``_`` wildcards."""

    expr: SqlExpr
    pattern: str
    negated: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class ExistsPred(SqlPred):
    """``[NOT] EXISTS (SELECT ...)`` — a correlated membership test."""

    select: "SelectStmt"
    negated: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class AndPred(SqlPred):
    """Conjunction."""

    parts: Tuple[SqlPred, ...]
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class OrPred(SqlPred):
    """Disjunction."""

    parts: Tuple[SqlPred, ...]
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class NotPred(SqlPred):
    """Negation."""

    part: SqlPred
    pos: Pos = (0, 0)


# -- statement structure ------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(SqlNode):
    """One select-list entry: an expression with an optional alias."""

    expr: SqlExpr
    alias: Optional[str]
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class TableRef(SqlNode):
    """A FROM/JOIN table with an optional alias."""

    table: str
    alias: Optional[str]
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class JoinClause(SqlNode):
    """``JOIN table ON l = r [AND l2 = r2 ...]``."""

    ref: TableRef
    conditions: Tuple[Tuple[ColumnRef, ColumnRef], ...]
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class OrderItem(SqlNode):
    """``ORDER BY name [ASC|DESC]``."""

    name: str
    descending: bool = False
    pos: Pos = (0, 0)


@dataclass(frozen=True)
class SelectStmt(SqlNode):
    """A full single-block SELECT statement."""

    items: Tuple[SelectItem, ...]
    star: bool
    table: TableRef
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[SqlPred] = None
    group_by: Tuple[str, ...] = ()
    having: Optional[SqlPred] = None
    order_by: Optional[OrderItem] = None
    limit: Optional[int] = None
    pos: Pos = (0, 0)
    distinct: bool = field(default=False)
