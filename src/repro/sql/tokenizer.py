"""SQL tokenizer.

Splits SQL text into identifiers, numbers, single-quoted strings, and
operator/punctuation tokens, each stamped with its 1-based line and
column.  Keywords are not distinguished here — the parser matches
identifier tokens case-insensitively — so column names that collide with
minor keywords (``value``, ``year`` outside ``EXTRACT``) keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sql.errors import SqlError

#: Multi-character operators first so ``<=`` wins over ``<``.
_OPERATORS: Tuple[str, ...] = (
    "<=", ">=", "<>", "!=", "=", "<", ">",
    "(", ")", ",", ".", ";", "*", "/", "+", "-",
)


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is ident | number | string | op | end."""

    kind: str
    value: str
    line: int
    column: int

    def matches(self, word: str) -> bool:
        """True when this is an identifier equal to ``word`` (case-insensitive)."""
        return self.kind == "ident" and self.value.upper() == word.upper()


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL ``text``; the list always ends with an ``end`` token."""
    tokens: List[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "-" and text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise SqlError("unterminated string literal", line, column)
            value = text[i + 1:j]
            tokens.append(Token("string", value, line, column))
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            tokens.append(Token("number", text[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("ident", text[i:j], line, column))
            column += j - i
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                column += len(op)
                i += len(op)
                break
        else:
            raise SqlError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("end", "", line, column))
    return tokens
