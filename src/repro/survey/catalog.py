"""Table I: the paper's survey of 43 GPU libraries.

Provenance: the paper text available to us garbles parts of Table I's
layout.  34 rows are unambiguous in the text and are marked
``attested=True``.  The paper states the total (43) and the category
aggregates ("many libraries focus on image processing (7) and math
operations (13) […] In case of database operators […] only 5"), so the
remaining 9 rows are reconstructed from well-known GPU parallel-algorithm
libraries of the era and marked ``attested=False``; they are placed in the
*Parallel algorithms* category, which the garbled region of the table
covers, keeping every quoted aggregate exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# Use-case categories as printed in Table I.
MATH = "Math"
DATABASE = "Database operators"
DEEP_LEARNING = "Deep learning"
PARALLEL = "Parallel algorithms"
IMAGE_VIDEO = "Image and video"
COMMUNICATION = "Communication libraries"
OTHERS = "Others"

CATEGORIES = (
    MATH, DATABASE, DEEP_LEARNING, PARALLEL, IMAGE_VIDEO, COMMUNICATION,
    OTHERS,
)

# Interface column values.
CUDA = "CUDA"
OPENCL = "OpenCL"
CUDA_AND_OPENCL = "CUDA & OpenCL"


@dataclass(frozen=True)
class LibraryRecord:
    """One row of Table I."""

    name: str
    interface: str
    use_case: str
    reference: str
    attested: bool = True
    note: str = ""


_NVIDIA = "https://developer.nvidia.com/"

#: Table I, row by row (attested rows in the text's order).
LIBRARIES: Tuple[LibraryRecord, ...] = (
    LibraryRecord("AmgX", CUDA, MATH, _NVIDIA + "amgx"),
    LibraryRecord(
        "ArrayFire", CUDA_AND_OPENCL, DATABASE, _NVIDIA + "arrayfire",
        note="studied in depth (lazy evaluation + JIT fusion)",
    ),
    LibraryRecord(
        "Boost.Compute", OPENCL, DATABASE,
        "https://github.com/boostorg/compute",
        note="studied in depth (runtime OpenCL kernel generation)",
    ),
    LibraryRecord("CHOLMOD", CUDA, MATH, _NVIDIA + "CHOLMOD"),
    LibraryRecord("cuBLAS", CUDA, MATH, _NVIDIA + "cublas"),
    LibraryRecord("CUDA math lib", CUDA, MATH, _NVIDIA + "cuda-math-library"),
    LibraryRecord("cuDNN", CUDA, DEEP_LEARNING, _NVIDIA + "cudnn"),
    LibraryRecord("cuFFT", CUDA, MATH, _NVIDIA + "cuFFT"),
    LibraryRecord("cuRAND", CUDA, MATH, _NVIDIA + "cuRAND"),
    LibraryRecord("cuSOLVER", CUDA, MATH, _NVIDIA + "cuSOLVER"),
    LibraryRecord("cuSPARSE", CUDA, MATH, _NVIDIA + "cuSPARSE"),
    LibraryRecord("cuTENSOR", CUDA, MATH, _NVIDIA + "cuTENSOR"),
    LibraryRecord("DALI", CUDA, DEEP_LEARNING, _NVIDIA + "DALI"),
    LibraryRecord(
        "DeepStream SDK", CUDA, DEEP_LEARNING, _NVIDIA + "deepstream-sdk"
    ),
    LibraryRecord("EPGPU", OPENCL, PARALLEL, "https://github.com/olawlor/epgpu"),
    LibraryRecord(
        "IMSL Fortran Numerical Library", CUDA, MATH,
        _NVIDIA + "imsl-fortran-numerical-library",
    ),
    LibraryRecord("Jarvis", CUDA, DEEP_LEARNING, _NVIDIA + "nvidia-jarvis"),
    LibraryRecord("MAGMA", CUDA, MATH, _NVIDIA + "MAGMA"),
    LibraryRecord("NCCL", CUDA, COMMUNICATION, _NVIDIA + "nccl"),
    LibraryRecord("nvGRAPH", CUDA, PARALLEL, _NVIDIA + "nvgraph"),
    LibraryRecord(
        "NVIDIA Codec SDK", CUDA, IMAGE_VIDEO, _NVIDIA + "nvidia-video-codec-sdk"
    ),
    LibraryRecord(
        "NVIDIA Optical Flow SDK", CUDA, IMAGE_VIDEO,
        _NVIDIA + "opticalflow-sdk",
    ),
    LibraryRecord(
        "NVIDIA Performance Primitives", CUDA, IMAGE_VIDEO, _NVIDIA + "npp"
    ),
    LibraryRecord("nvJPEG", CUDA, IMAGE_VIDEO, _NVIDIA + "nvjpeg"),
    LibraryRecord("NVSHMEM", CUDA, COMMUNICATION, _NVIDIA + "nvshmem"),
    LibraryRecord(
        "OCL-Library", OPENCL, DATABASE,
        "https://github.com/lochotzke/OCL-Library",
        note="boilerplate over OpenCL, no pre-written functions",
    ),
    LibraryRecord(
        "OpenCLHelper", OPENCL, OTHERS, "https://github.com/matze/oclkit",
        note="wrapper",
    ),
    LibraryRecord("OpenCV", CUDA, IMAGE_VIDEO, "https://opencv.org"),
    LibraryRecord(
        "SkelCL", OPENCL, DATABASE, "https://github.com/skelcl/skelcl",
        note="boilerplate over OpenCL, no pre-written functions",
    ),
    LibraryRecord("TensorRT", CUDA, DEEP_LEARNING, _NVIDIA + "tensorrt"),
    LibraryRecord(
        "Thrust", CUDA, DATABASE, _NVIDIA + "thrust",
        note="studied in depth (CUDA template algorithms)",
    ),
    LibraryRecord(
        "Triton Ocean SDK", CUDA, IMAGE_VIDEO, _NVIDIA + "triton-ocean-sdk"
    ),
    LibraryRecord(
        "VexCL", OPENCL, OTHERS, "https://github.com/ddemidov/vexcl",
        note="vector processing",
    ),
    LibraryRecord("ViennaCL", OPENCL, MATH, "http://viennacl.sourceforge.net/"),
    # -- reconstructed rows (attested=False): the garbled region of the
    #    printed table; chosen to keep the quoted totals exact. ----------
    LibraryRecord(
        "CUTLASS", CUDA, MATH, "https://github.com/NVIDIA/cutlass",
        attested=False,
    ),
    LibraryRecord(
        "OpenVX", CUDA, IMAGE_VIDEO, "https://www.khronos.org/openvx/",
        attested=False,
    ),
    LibraryRecord(
        "CUB", CUDA, PARALLEL, "https://github.com/NVIDIA/cub",
        attested=False,
    ),
    LibraryRecord(
        "ModernGPU", CUDA, PARALLEL, "https://github.com/moderngpu/moderngpu",
        attested=False,
    ),
    LibraryRecord(
        "CUDPP", CUDA, PARALLEL, "https://github.com/cudpp/cudpp",
        attested=False,
    ),
    LibraryRecord(
        "Kokkos", CUDA_AND_OPENCL, PARALLEL, "https://github.com/kokkos/kokkos",
        attested=False,
    ),
    LibraryRecord(
        "RAJA", CUDA, PARALLEL, "https://github.com/LLNL/RAJA",
        attested=False,
    ),
    LibraryRecord(
        "Hemi", CUDA, PARALLEL, "https://github.com/harrism/hemi",
        attested=False,
    ),
    LibraryRecord(
        "clpp", OPENCL, PARALLEL, "https://github.com/krrishnarraj/clpeak",
        attested=False,
    ),
)

#: Aggregates quoted in the paper's prose (Section III-A).
PAPER_TOTAL = 43
PAPER_CATEGORY_COUNTS: Dict[str, int] = {
    MATH: 13,
    IMAGE_VIDEO: 7,
    DATABASE: 5,
}

#: The three libraries selected for in-depth study and why.
STUDIED: Tuple[Tuple[str, str], ...] = (
    ("ArrayFire", "lazy evaluation; CUDA and OpenCL backends"),
    ("Boost.Compute", "transforms high-level functions into OpenCL kernels"),
    ("Thrust", "operators transformed into CUDA C functions"),
)


def by_category() -> Dict[str, List[LibraryRecord]]:
    """Records grouped by use-case category."""
    grouped: Dict[str, List[LibraryRecord]] = {c: [] for c in CATEGORIES}
    for record in LIBRARIES:
        grouped[record.use_case].append(record)
    return grouped


def category_counts() -> Dict[str, int]:
    """Library count per category."""
    return {category: len(rows) for category, rows in by_category().items()}


def database_libraries() -> List[LibraryRecord]:
    """The five libraries with explicit database-operator support."""
    return [r for r in LIBRARIES if r.use_case == DATABASE]
