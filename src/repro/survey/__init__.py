"""The paper's library survey (Table I) as structured data."""

from repro.survey.catalog import (
    CATEGORIES,
    LIBRARIES,
    PAPER_CATEGORY_COUNTS,
    PAPER_TOTAL,
    STUDIED,
    LibraryRecord,
    by_category,
    category_counts,
    database_libraries,
)
from repro.survey.report import (
    render_category_histogram,
    render_selection_rationale,
    render_table_i,
    verify_against_paper,
)

__all__ = [
    "LibraryRecord",
    "LIBRARIES",
    "CATEGORIES",
    "STUDIED",
    "PAPER_TOTAL",
    "PAPER_CATEGORY_COUNTS",
    "by_category",
    "category_counts",
    "database_libraries",
    "render_table_i",
    "render_category_histogram",
    "render_selection_rationale",
    "verify_against_paper",
]
