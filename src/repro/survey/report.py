"""Renderers for Table I and its aggregates."""

from __future__ import annotations

from typing import List

from repro.survey.catalog import (
    CATEGORIES,
    LIBRARIES,
    PAPER_CATEGORY_COUNTS,
    PAPER_TOTAL,
    STUDIED,
    category_counts,
)


def render_table_i(attested_only: bool = False) -> str:
    """Reproduce Table I as a text table."""
    rows = [
        record for record in LIBRARIES
        if record.attested or not attested_only
    ]
    header = ["Library", "Wrapper/Language", "Use case", "Reference"]
    body: List[List[str]] = []
    for record in rows:
        marker = "" if record.attested else " *"
        body.append([
            record.name + marker,
            record.interface,
            record.use_case,
            record.reference,
        ])
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(4)
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in body
    )
    lines.append(
        f"({len(rows)} libraries; rows marked * are reconstructed from the "
        "garbled region of the printed table — see module docstring)"
    )
    return "\n".join(lines)


def render_category_histogram() -> str:
    """Category counts with the paper's quoted aggregates alongside."""
    counts = category_counts()
    lines = ["Use case                  count   paper"]
    lines.append("-" * 40)
    for category in CATEGORIES:
        quoted = PAPER_CATEGORY_COUNTS.get(category)
        quoted_text = str(quoted) if quoted is not None else "-"
        lines.append(f"{category:25s} {counts[category]:5d}   {quoted_text}")
    lines.append("-" * 40)
    lines.append(f"{'total':25s} {sum(counts.values()):5d}   {PAPER_TOTAL}")
    return "\n".join(lines)


def render_selection_rationale() -> str:
    """Why the paper narrows the study to three libraries."""
    lines = [
        "Libraries with explicit database-operator support: 5",
        "  - SkelCL and OCL-Library are boilerplates over OpenCL without",
        "    pre-written functions, leaving three candidates:",
    ]
    for name, reason in STUDIED:
        lines.append(f"  - {name}: {reason}")
    return "\n".join(lines)


def verify_against_paper() -> List[str]:
    """Check every aggregate the paper quotes; returns mismatch strings."""
    mismatches: List[str] = []
    counts = category_counts()
    total = sum(counts.values())
    if total != PAPER_TOTAL:
        mismatches.append(f"total: paper says {PAPER_TOTAL}, catalog has {total}")
    for category, quoted in PAPER_CATEGORY_COUNTS.items():
        if counts.get(category) != quoted:
            mismatches.append(
                f"{category}: paper says {quoted}, catalog has "
                f"{counts.get(category)}"
            )
    return mismatches
