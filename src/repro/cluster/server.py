"""Cluster-wide serving: routing, failover, and elastic scaling.

:class:`ClusterServer` is the coordinator over a :class:`~repro.cluster.
cluster.Cluster`: one :class:`~repro.serve.server.QueryServer` per node
(scheduler, admission controller, caches, stream pool on the node's lead
device) plus a cluster-wide discrete-event loop that routes each request
to a replica, fetches missing shards over the network fabric, and fails
queries over to survivors when a node dies mid-run.

The loop is a faithful generalization of :meth:`QueryServer.run`: each
iteration either *routes* (pops arrivals/retries up to the next action
time and places them on a node queue) or *serves* (runs one request on
the node that can act earliest, through the node server's own policy,
admission controller, and dispatch path).  With one node, one replica,
and no failures, the cluster loop performs exactly the same sequence of
pool/policy/admission/dispatch calls as a bare ``QueryServer`` — the
bit-identity acceptance test pins that down event-for-event.

Failover: node deaths are armed on the virtual clock
(:meth:`Cluster.fail_node_at`).  A death strikes before any routing or
serving at or after its time; queued requests on the dead node re-enter
the router, and a request whose dispatch ran past the death time is
*voided* — its record never surfaces — and retried on a surviving
replica after deterministic exponential backoff, as a typed
:class:`~repro.errors.NodeFailure`.  Device-scoped faults
(:class:`~repro.errors.DeviceError` escaping the executor's recovery)
fail over the same way without killing the node.  Every issued request
ends in exactly one final record — completed, shed, or failed — which is
the zero-lost-queries invariant the headline benchmark gates.

Elasticity: at every routing event the coordinator compares per-node
queue depths (and, when an SLO target is configured, the sliding-window
attainment) against the scale thresholds, activating the next standby
node (after a spin-up delay) or draining the highest-index idle one.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ClusterError, DeviceError, NodeFailure
from repro.serve.admission import (
    ADMIT,
    SHED as SHED_DECISION,
    WAIT,
    estimate_working_set,
)
from repro.serve.cache import scanned_tables
from repro.serve.metrics import ServeMetrics, compute_metrics
from repro.serve.request import FAILED, SHED, QueryRequest, RequestRecord
from repro.serve.scheduler import estimate_plan_cost
from repro.serve.server import QueryServer, ServerConfig

from repro.cluster.cluster import Cluster


@dataclass
class ClusterConfig:
    """Knobs for one cluster serving run (mirrors the CLI flags)."""

    # -- per-node server knobs (forwarded to each node's QueryServer) --
    policy: str = "fifo"
    num_streams: int = 2
    plan_cache: bool = True
    result_cache: bool = True
    keep_results: bool = False
    admission_budget_bytes: Optional[int] = None
    tenant_weights: Optional[Dict[str, float]] = None
    # -- failover --
    #: Dispatch retries after a node/device failure before giving up.
    max_retries: int = 3
    #: First retry delay; doubles per attempt (deterministic backoff).
    backoff_base: float = 500e-6
    # -- routing --
    #: A tenant sticks to its previous node unless that node's depth
    #: exceeds the best candidate's by more than this.
    affinity_slack: int = 2
    #: Placement constraints: tenant -> node indices it may run on.
    allowed_nodes: Optional[Dict[str, Tuple[int, ...]]] = None
    # -- elasticity --
    #: Nodes active at start; the rest are standbys that join via
    #: scale-up.  None disables elasticity: the whole fleet is active
    #: for the entire run and no scale events fire.
    initial_nodes: Optional[int] = None
    #: Scale up when every active node's depth exceeds this.
    scale_up_depth: int = 4
    #: Scale down when the highest active node idles below this.
    scale_down_depth: int = 1
    #: Minimum seconds between scale events.
    scale_cooldown: float = 2e-3
    #: Activation delay for a node joining via scale-up.
    spinup_seconds: float = 1e-3
    #: SLO target for attainment accounting (0: no SLO).
    slo_seconds: float = 0.0
    #: Scale up when sliding-window attainment drops below this.
    slo_target: float = 0.9
    #: Completed requests in the sliding attainment window.
    slo_window: int = 32

    def server_config(self) -> ServerConfig:
        """The per-node :class:`ServerConfig` these knobs imply."""
        return ServerConfig(
            policy=self.policy,
            num_streams=self.num_streams,
            plan_cache=self.plan_cache,
            result_cache=self.result_cache,
            keep_results=self.keep_results,
            admission_budget_bytes=self.admission_budget_bytes,
            tenant_weights=self.tenant_weights,
        )


@dataclass
class _NodeState:
    """Coordinator-side serving state of one node."""

    queue: List[QueryRequest] = field(default_factory=list)
    costs: Dict[int, float] = field(default_factory=dict)
    inflight: List[Tuple[float, int]] = field(default_factory=list)
    wait_floor: float = 0.0
    active: bool = True
    ready_at: float = 0.0

    def depth(self, time: float) -> int:
        """Queued plus in-flight requests at ``time`` (the routing and
        elasticity load signal)."""
        return len(self.queue) + sum(1 for f, _b in self.inflight if f > time)

    def pending_cost(self) -> float:
        """Estimated device seconds sitting in the queue."""
        return sum(self.costs.get(r.seq, 0.0) for r in self.queue)


@dataclass
class ClusterReport:
    """Outcome of one :meth:`ClusterServer.run`."""

    records: List[RequestRecord]
    metrics: ServeMetrics
    #: Scale/kill/failover events: {"t", "event", "node", ...}.
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: Issued seqs that never produced a final record (must be empty —
    #: the zero-lost-queries invariant).
    unreported: List[int] = field(default_factory=list)
    #: Requests that completed after at least one failover.
    failovers: int = 0
    #: Total cross-node shard-fetch traffic.
    fetch_seconds: float = 0.0
    fetch_bytes: int = 0
    #: Final requests dispatched per node.
    node_requests: List[int] = field(default_factory=list)
    #: Nodes dead at the end of the run.
    dead_nodes: List[int] = field(default_factory=list)
    #: Nodes active (taking traffic) at the end of the run.
    active_nodes: List[int] = field(default_factory=list)


class ClusterServer:
    """Coordinates a workload across the cluster's node servers."""

    def __init__(
        self, cluster: Cluster, config: Optional[ClusterConfig] = None
    ) -> None:
        self.cluster = cluster
        self.config = config or ClusterConfig()
        node_config = self.config.server_config()
        self.servers: List[QueryServer] = [
            QueryServer(
                cluster.make_backend(node.index),
                cluster.catalog,
                node_config,
            )
            for node in cluster.nodes
        ]
        self._states = [_NodeState() for _ in cluster.nodes]
        initial = self.config.initial_nodes
        if initial is not None:
            if not 1 <= initial <= len(cluster.nodes):
                raise ClusterError(
                    f"initial_nodes must be in [1, {len(cluster.nodes)}]: "
                    f"{initial}"
                )
            for state in self._states[initial:]:
                state.active = False
        self._tenant_home: Dict[str, int] = {}
        self._attempts: Dict[int, int] = {}
        self._failed_over: Set[int] = set()
        self._excluded: Dict[int, Set[int]] = {}
        self._issued: Set[int] = set()
        self._timeline: List[Dict[str, Any]] = []
        self._window: Deque[float] = deque(maxlen=self.config.slo_window)
        #: Last scale event; cooldown only gates *between* events.
        self._last_scale = float("-inf")
        self._fetch_seconds = 0.0
        self._fetch_bytes = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for server in self.servers:
            server.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the cluster serving loop --------------------------------------------

    def run(self, workload) -> ClusterReport:
        """Serve every request the workload produces; see module docs."""
        heap: List = []
        for request in workload.arrivals():
            heapq.heappush(heap, (request.arrival, request.seq, 0, request))
            self._issued.add(request.seq)
        records: List[RequestRecord] = []

        while heap or any(
            state.queue
            for node, state in zip(self.cluster.nodes, self._states)
            if not node.dead
        ):
            acting, t_serve = self._earliest_server()
            t_route = heap[0][0] if heap else None
            times = [t for t in (t_serve, t_route) if t is not None]
            if not times:
                break  # only unservable queues remain (handled as kills)
            t_evt = min(times)
            # 1) Armed node deaths strike before anything else at t_evt.
            if self._kill_due(t_evt, heap, records, workload):
                continue
            # 2) Route every arrival/retry up to the action time.
            horizon = t_serve if t_serve is not None else t_route
            if t_route is not None and t_route <= horizon:
                while heap and heap[0][0] <= horizon:
                    time, _seq, _attempt, request = heapq.heappop(heap)
                    self._route(request, time, heap, records, workload)
                continue
            # 3) Serve one request on the earliest-available node.  The
            # scale check runs here too: under a burst all routing
            # happens up front, and queue pressure shows up while the
            # backlog drains, not at new arrivals.
            self._maybe_scale(t_serve)
            self._serve_one(acting, t_serve, heap, records, workload)

        records.sort(key=lambda r: r.seq)
        return self._report(records)

    def _earliest_server(self) -> Tuple[Optional[int], Optional[float]]:
        """(node, time) of the node that can act earliest, among live
        active nodes with queued work; (None, None) when none can."""
        best: Optional[Tuple[float, int]] = None
        for node, state, server in zip(
            self.cluster.nodes, self._states, self.servers
        ):
            if node.dead or not state.active or not state.queue:
                continue
            t = max(
                server.pool.earliest_available(),
                state.wait_floor,
                state.ready_at,
            )
            if best is None or (t, node.index) < best:
                best = (t, node.index)
        if best is None:
            return None, None
        return best[1], best[0]

    # -- failure handling ----------------------------------------------------

    def _kill_due(self, time: float, heap, records, workload) -> bool:
        """Kill every node whose armed death time has passed at ``time``.
        Returns True when any node died (the loop must recompute)."""
        killed = False
        for node in self.cluster.nodes:
            if not node.dead and node.fails_by(time):
                self._kill(node.index, heap, records, workload)
                killed = True
        return killed

    def _kill(self, index: int, heap, records, workload) -> None:
        """Node death: requeue its pending work, drop its shard cache."""
        node = self.cluster.nodes[index]
        state = self._states[index]
        node.dead = True
        node.death_time = (
            node.fail_at if node.fail_at is not None else 0.0
        )
        node.fetched.clear()
        self._timeline.append({
            "t": node.death_time, "event": "node_killed", "node": index,
        })
        orphans, state.queue = state.queue, []
        state.inflight = []
        for request in orphans:
            self._failed_over.add(request.seq)
            heapq.heappush(heap, (
                max(node.death_time, request.arrival),
                request.seq,
                self._attempts.get(request.seq, 0),
                request,
            ))
        self.servers[index].close()

    def _fail_over(
        self, request: QueryRequest, node: int, at: float, kind: str,
        heap, records, workload,
    ) -> None:
        """Retry a failed dispatch on another replica (bounded, with
        deterministic exponential backoff), or record a FAILED outcome."""
        failure = NodeFailure(node=node, time=at, kind=kind)
        attempts = self._attempts.get(request.seq, 0) + 1
        self._attempts[request.seq] = attempts
        self._failed_over.add(request.seq)
        self._timeline.append({
            "t": at, "event": "failover", "node": node,
            "seq": request.seq, "kind": failure.kind, "attempt": attempts,
            "error": str(failure),
        })
        if attempts > self.config.max_retries:
            self._record_failed(request, at, node, heap, records, workload)
            return
        retry_at = at + self.config.backoff_base * (2 ** (attempts - 1))
        heapq.heappush(
            heap, (retry_at, request.seq, attempts, request)
        )

    def _record_failed(
        self, request: QueryRequest, at: float, node: int, heap, records,
        workload,
    ) -> None:
        record = RequestRecord(
            seq=request.seq, tenant=request.tenant, name=request.name,
            status=FAILED, arrival=request.arrival,
            dispatched=at, finished=at, node=node,
            attempts=self._attempts.get(request.seq, 0),
            failed_over=request.seq in self._failed_over,
        )
        records.append(record)
        self._follow_up(workload.on_complete(record), heap)

    def _follow_up(self, request: Optional[QueryRequest], heap) -> None:
        if request is None:
            return
        self._issued.add(request.seq)
        heapq.heappush(heap, (request.arrival, request.seq, 0, request))

    # -- routing -------------------------------------------------------------

    def _route(
        self, request: QueryRequest, time: float, heap, records, workload,
    ) -> None:
        """Place one request on a replica (load-aware, affinity-sticky)."""
        candidates = self._candidates(request, time)
        if not candidates:
            # Every replica that could serve the request is gone.
            self._record_failed(request, time, -1, heap, records, workload)
            return
        tables = scanned_tables(request.plan)
        home = self._tenant_home.get(request.tenant)
        scores = {
            i: (
                self._states[i].depth(time),
                self._states[i].pending_cost(),
                self.cluster.missing_bytes(i, tables),
                i,
            )
            for i in candidates
        }
        chosen = min(candidates, key=lambda i: scores[i])
        if (
            home in candidates
            and scores[home][0] <= scores[chosen][0]
            + self.config.affinity_slack
        ):
            chosen = home
        self._tenant_home[request.tenant] = chosen
        state = self._states[chosen]
        state.queue.append(request)
        state.costs[request.seq] = estimate_plan_cost(
            request.plan, self.servers[chosen].catalog
        )
        self._maybe_scale(time)

    def _candidates(self, request: QueryRequest, time: float) -> List[int]:
        """Nodes allowed to serve the request right now: alive, active,
        spun up, not excluded by earlier faults, placement-permitted,
        and able to obtain every shard the query scans."""
        allowed = None
        if self.config.allowed_nodes is not None:
            allowed = self.config.allowed_nodes.get(request.tenant)
        excluded = self._excluded.get(request.seq, set())
        tables = scanned_tables(request.plan)
        candidates = []
        for node, state in zip(self.cluster.nodes, self._states):
            if node.dead or node.fails_by(time) or not state.active:
                continue
            if node.index in excluded:
                continue
            if allowed is not None and node.index not in allowed:
                continue
            if not self.cluster.can_serve(node.index, tables):
                continue
            candidates.append(node.index)
        return candidates

    # -- serving -------------------------------------------------------------

    def _serve_one(
        self, acting: int, now: float, heap, records, workload,
    ) -> None:
        """One scheduling decision on one node — the exact body of
        :meth:`QueryServer.run`'s iteration, plus shard fetch and the
        mid-query death check."""
        node = self.cluster.nodes[acting]
        state = self._states[acting]
        server = self.servers[acting]
        index = server.policy.choose(
            state.queue, state.costs, server._served_by_tenant
        )
        request = state.queue[index]
        start = max(now, request.arrival)

        estimated = estimate_working_set(request.plan, server.catalog)
        state.inflight = [(f, b) for f, b in state.inflight if f > start]
        decision = server.admission.decide(
            estimated, sum(b for _f, b in state.inflight)
        )
        if decision == WAIT:
            state.wait_floor = min(f for f, _b in state.inflight)
            return
        state.queue.pop(index)
        if decision == SHED_DECISION:
            record = RequestRecord(
                seq=request.seq, tenant=request.tenant,
                name=request.name, status=SHED,
                arrival=request.arrival, dispatched=start,
                finished=start, estimated_bytes=estimated,
                node=acting,
                attempts=self._attempts.get(request.seq, 0),
                failed_over=request.seq in self._failed_over,
            )
            records.append(record)
            self._follow_up(workload.on_complete(record), heap)
            return

        assert decision == ADMIT
        fetch_seconds, fetch_bytes = self.cluster.fetch_missing(
            acting, scanned_tables(request.plan)
        )
        self._fetch_seconds += fetch_seconds
        self._fetch_bytes += fetch_bytes
        try:
            record = server._dispatch(request, start, estimated)
        except DeviceError:
            # Device-scoped fault escaped the executor's recovery: the
            # node survives, but this request must not land there again.
            self._excluded.setdefault(request.seq, set()).add(acting)
            session = server._sessions.pop(request.tenant, None)
            if session is not None:
                session.close()
            detected = max(start, node.lead.clock.now)
            self._fail_over(
                request, acting, detected, "device", heap, records, workload
            )
            return
        if node.fail_at is not None and record.finished > node.fail_at:
            # The node died while the query ran: the client never saw
            # this result.  Void the record and retry on a survivor.
            self._fail_over(
                request, acting, node.fail_at, "node", heap, records,
                workload,
            )
            self._kill_due(node.fail_at, heap, records, workload)
            return
        record.node = acting
        record.attempts = self._attempts.get(request.seq, 0)
        record.failed_over = request.seq in self._failed_over
        record.fetch_seconds = fetch_seconds
        record.fetch_bytes = fetch_bytes
        state.inflight.append((record.finished, estimated))
        records.append(record)
        if record.latency > 0.0:
            self._window.append(record.latency)
        self._follow_up(workload.on_complete(record), heap)

    # -- elasticity ----------------------------------------------------------

    def _maybe_scale(self, time: float) -> None:
        """Queue-depth / SLO driven scale-up and scale-down (elastic
        mode only — fixed fleets never scale)."""
        if self.config.initial_nodes is None:
            return
        if time < self._last_scale + self.config.scale_cooldown:
            return
        active = [
            node.index
            for node, state in zip(self.cluster.nodes, self._states)
            if not node.dead and state.active
        ]
        standby = [
            node.index
            for node, state in zip(self.cluster.nodes, self._states)
            if not node.dead and not state.active
        ]
        if not active:
            return
        depths = {i: self._states[i].depth(time) for i in active}
        if standby:
            slo_pressure = (
                self.config.slo_seconds > 0.0
                and len(self._window) == self._window.maxlen
                and (
                    sum(
                        1 for v in self._window
                        if v <= self.config.slo_seconds
                    ) / len(self._window)
                ) < self.config.slo_target
            )
            if (
                min(depths.values()) > self.config.scale_up_depth
                or slo_pressure
            ):
                joining = standby[0]
                self._states[joining].active = True
                self._states[joining].ready_at = (
                    time + self.config.spinup_seconds
                )
                self._last_scale = time
                self._timeline.append({
                    "t": time, "event": "scale_up", "node": joining,
                    "ready_at": self._states[joining].ready_at,
                })
                return
        if len(active) > 1:
            draining = active[-1]
            if (
                depths[draining] == 0
                and max(depths.values()) <= self.config.scale_down_depth
            ):
                self._states[draining].active = False
                self._last_scale = time
                self._timeline.append({
                    "t": time, "event": "scale_down", "node": draining,
                })

    # -- reporting -----------------------------------------------------------

    def _report(self, records: List[RequestRecord]) -> ClusterReport:
        # Cache counters are summed over every node, dead ones included:
        # work a node did before dying still happened.
        servers = self.servers
        metrics = compute_metrics(
            records,
            plan_cache_hits=sum(s.plan_cache.hits for s in servers),
            plan_cache_misses=sum(s.plan_cache.misses for s in servers),
            result_cache_hits=sum(s.result_cache.hits for s in servers),
            result_cache_misses=sum(s.result_cache.misses for s in servers),
            result_cache_invalidations=sum(
                s.result_cache.invalidations for s in servers
            ),
            slo_seconds=self.config.slo_seconds,
        )
        recorded = {r.seq for r in records}
        node_requests = [0] * len(self.cluster.nodes)
        for record in records:
            if record.node >= 0:
                node_requests[record.node] += 1
        return ClusterReport(
            records=records,
            metrics=metrics,
            timeline=list(self._timeline),
            unreported=sorted(self._issued - recorded),
            failovers=sum(
                1 for r in records if r.completed and r.failed_over
            ),
            fetch_seconds=self._fetch_seconds,
            fetch_bytes=self._fetch_bytes,
            node_requests=node_requests,
            dead_nodes=[n.index for n in self.cluster.nodes if n.dead],
            active_nodes=[
                node.index
                for node, state in zip(self.cluster.nodes, self._states)
                if not node.dead and state.active
            ],
        )
