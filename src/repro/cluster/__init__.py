"""repro.cluster — multi-node serving: replication, failover, elasticity.

The topology level above :mod:`repro.distributed`: N device-group nodes
joined by a NETWORK-tier fabric (:class:`~repro.gpu.topology.NetworkFabric`),
replicated shard placement (:class:`ClusterShardCatalog`), and a
cluster-wide coordinator (:class:`ClusterServer`) doing tenant routing,
load-aware replica selection, mid-query failover on node death, and
queue-depth/SLO driven elastic scaling — the ROADMAP's "millions of
users" story made measurable on the simulated clock.
"""

from repro.cluster.cluster import Cluster, ClusterNode
from repro.cluster.placement import (
    DEFAULT_SPEC,
    ClusterShardCatalog,
    ShardPlacement,
)
from repro.cluster.server import (
    ClusterConfig,
    ClusterReport,
    ClusterServer,
)

__all__ = [
    "Cluster",
    "ClusterNode",
    "ClusterShardCatalog",
    "ShardPlacement",
    "DEFAULT_SPEC",
    "ClusterConfig",
    "ClusterReport",
    "ClusterServer",
]
