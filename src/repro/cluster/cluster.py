"""The cluster: N device-group nodes joined by a network fabric.

A :class:`Cluster` is the topology level above
:class:`~repro.gpu.topology.DeviceGroup`: each :class:`ClusterNode` wraps
one group (its lead device runs the node's serving loop) and the nodes
are joined by a :class:`~repro.gpu.topology.NetworkFabric` — the NETWORK
link tier, priced above NVLink/PCIe/NVMe, with per-pair channel and
per-node NIC contention and NET profiler events on both endpoints.

Shard placement comes from :class:`~repro.cluster.placement.ClusterShardCatalog`.
Replication is priced, not copied: every node executes against the full
host catalog, but before a query runs, its coordinator node must *hold*
every shard of the tables it scans — shards it neither hosts nor has
cached are fetched from the lowest-index surviving holder over the
fabric (:meth:`Cluster.fetch_missing`), the cross-node leg of the
exchange layer.  Fetched shards are cached per node; the cache dies
with the node.

Failure injection mirrors :meth:`~repro.gpu.device.Device.inject_faults`
at node scope: :meth:`Cluster.fail_node_at` arms a deterministic death
time on the virtual clock, and the serving layer kills the node — and
fails queries over to surviving replicas — when the clock reaches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.backend import OperatorBackend
from repro.core.framework import GpuOperatorFramework, default_framework
from repro.errors import ClusterError
from repro.gpu.device import GTX_1080TI, Device, DeviceSpec
from repro.gpu.topology import DeviceGroup, NetworkFabric
from repro.gpu.transfer import DATACENTER_NET, LinkSpec
from repro.relational.table import Table

from repro.cluster.placement import ClusterShardCatalog


@dataclass
class ClusterNode:
    """One node: a device group, its liveness state, and its shard cache."""

    index: int
    group: DeviceGroup
    #: Armed death time on the virtual clock (None: never fails).
    fail_at: Optional[float] = None
    dead: bool = False
    death_time: float = 0.0
    #: (table, shard) pairs fetched over the network and kept locally.
    fetched: Set[Tuple[str, int]] = field(default_factory=set)

    @property
    def lead(self) -> Device:
        """The device the node's serving loop runs on."""
        return self.group[0]

    def fails_by(self, time: float) -> bool:
        """True when the node's armed death time has passed at ``time``."""
        return self.fail_at is not None and self.fail_at <= time


class Cluster:
    """N device-group nodes, a network fabric, and a shard placement."""

    def __init__(
        self,
        num_nodes: int,
        catalog: Dict[str, Table],
        backend_name: str = "handwritten",
        *,
        devices_per_node: int = 1,
        device_spec: DeviceSpec = GTX_1080TI,
        replication: int = 2,
        placement: Optional[ClusterShardCatalog] = None,
        link: LinkSpec = DATACENTER_NET,
        framework: Optional[GpuOperatorFramework] = None,
    ) -> None:
        if num_nodes < 1:
            raise ClusterError(f"node count must be >= 1: {num_nodes}")
        self.catalog = dict(catalog)
        self.backend_name = backend_name
        self.framework = (
            framework if framework is not None else default_framework()
        )
        self.nodes: List[ClusterNode] = [
            ClusterNode(index=i, group=DeviceGroup.of_size(
                devices_per_node, device_spec,
            ))
            for i in range(num_nodes)
        ]
        self.fabric = NetworkFabric(
            [node.group for node in self.nodes], link=link
        )
        self.placement = (
            placement
            if placement is not None
            else ClusterShardCatalog(
                self.catalog, num_nodes, replication=replication
            )
        )
        if self.placement.num_nodes != num_nodes:
            raise ClusterError(
                f"placement spans {self.placement.num_nodes} nodes, "
                f"cluster has {num_nodes}"
            )

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> ClusterNode:
        return self.nodes[index]

    def make_backend(self, node: int) -> OperatorBackend:
        """A backend instance on the node's lead device."""
        return self.framework.create(self.backend_name, self.nodes[node].lead)

    # -- failure surface -----------------------------------------------------

    def fail_node_at(self, node: int, time: float) -> None:
        """Arm a deterministic node death at virtual-clock ``time``."""
        if time < 0.0:
            raise ClusterError(f"failure time cannot be negative: {time}")
        self.nodes[node].fail_at = time

    def alive(self) -> List[int]:
        """Indices of nodes not yet killed."""
        return [node.index for node in self.nodes if not node.dead]

    # -- cross-node shard movement (the network leg of the exchange) ---------

    def alive_holders(self, table: str, shard: int) -> List[int]:
        """Surviving nodes holding a copy of the shard (primary first)."""
        return [
            h for h in self.placement.holders(table, shard)
            if not self.nodes[h].dead
        ]

    def missing_bytes(self, node: int, tables: Iterable[str]) -> int:
        """Bytes ``node`` would fetch to coordinate a query over
        ``tables`` (the routing cost model's network term)."""
        return sum(
            p.nbytes
            for p in self.placement.missing_for(
                node, tables, self.nodes[node].fetched
            )
        )

    def fetch_missing(
        self, node: int, tables: Iterable[str]
    ) -> Tuple[float, int]:
        """Pull every missing shard of ``tables`` to ``node``.

        Each shard moves from its lowest-index surviving holder over the
        fabric (NET events on both leads, NIC + channel contention), then
        joins the node's local cache.  Returns (network seconds, bytes).
        Raises :class:`ClusterError` when a shard has no surviving holder
        — data loss the router should have refused to serve.
        """
        target = self.nodes[node]
        if target.dead:
            raise ClusterError(f"cannot fetch to dead node {node}")
        seconds = 0.0
        nbytes = 0
        for placement in self.placement.missing_for(
            node, tables, target.fetched
        ):
            sources = self.alive_holders(placement.table, placement.shard)
            if not sources:
                raise ClusterError(
                    f"shard {placement.table}[{placement.shard}] has no "
                    f"surviving holder"
                )
            seconds += self.fabric.transfer(
                sources[0], node, placement.nbytes,
                label=f"fetch:{placement.table}[{placement.shard}]",
            )
            nbytes += placement.nbytes
            target.fetched.add((placement.table, placement.shard))
        return seconds, nbytes

    def can_serve(self, node: int, tables: Iterable[str]) -> bool:
        """True when every shard the query needs is obtainable at
        ``node``: hosted there, cached there, or held by a survivor."""
        target = self.nodes[node]
        for placement in self.placement.missing_for(
            node, tables, target.fetched
        ):
            if not self.alive_holders(placement.table, placement.shard):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"Cluster({len(self.nodes)} nodes x "
            f"{len(self.nodes[0].group)} devices, "
            f"backend={self.backend_name!r}, "
            f"replication={self.placement.replication})"
        )
