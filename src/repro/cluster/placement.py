"""Replicated shard placement across cluster nodes.

The cluster-level analogue of :class:`repro.distributed.partition.ShardCatalog`:
every base table is split into shards (reusing the hash/range/round-robin
partitioners), and each shard is placed on a *primary* node plus ``K - 1``
replicas with chained placement — shard ``s``'s copies live on nodes
``(s % N, (s + 1) % N, ...)``, so losing any single node leaves every
shard with at least one surviving holder whenever ``replication >= 2``.

Placement is a pure function of (catalog, node count, replication, specs):
the same inputs produce the same shard sizes and copy sets on every run,
which the cluster determinism tests pin down.  Replication is priced, not
copied — nodes share the host tables, and holding or fetching a shard
only matters when the coordinator moves its bytes over the NETWORK link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.distributed.partition import PartitionSpec, partition_indices
from repro.errors import ClusterError
from repro.relational.table import Table

#: Default placement: round-robin rows — perfectly balanced shard sizes,
#: which is what a serving-layer fetch cost model wants by default.
DEFAULT_SPEC = PartitionSpec(kind="round_robin")


@dataclass(frozen=True)
class ShardPlacement:
    """One shard of one table: size and the nodes holding a copy."""

    table: str
    shard: int
    nbytes: int
    rows: int
    #: Holding nodes; ``copies[0]`` is the primary.
    copies: Tuple[int, ...]

    @property
    def primary(self) -> int:
        return self.copies[0]


def _shard_nbytes(table: Table, rows: int) -> int:
    """Physical bytes of a ``rows``-row shard (exact for fixed-width
    columns: per-row bytes scale linearly with the row count)."""
    if table.num_rows == 0:
        return 0
    total = 0
    for column in table:
        total += (column.nbytes // len(column)) * rows
    return total


class ClusterShardCatalog:
    """Shard placement map for a cluster of ``num_nodes`` nodes.

    Every table in the catalog is sharded into ``num_nodes`` shards by
    default (override per table via ``specs``; override the shard count
    via ``num_shards``) and each shard is replicated onto ``replication``
    consecutive nodes starting at its primary.
    """

    def __init__(
        self,
        catalog: Dict[str, Table],
        num_nodes: int,
        replication: int = 2,
        specs: Optional[Dict[str, PartitionSpec]] = None,
        num_shards: Optional[int] = None,
    ) -> None:
        if num_nodes < 1:
            raise ClusterError(f"node count must be >= 1: {num_nodes}")
        if replication < 1:
            raise ClusterError(f"replication must be >= 1: {replication}")
        self.num_nodes = num_nodes
        #: Effective copies per shard (clamped: N nodes hold at most N).
        self.replication = min(replication, num_nodes)
        self.num_shards = num_shards if num_shards is not None else num_nodes
        if self.num_shards < 1:
            raise ClusterError(f"shard count must be >= 1: {self.num_shards}")
        self.specs: Dict[str, PartitionSpec] = dict(specs or {})
        self._placements: Dict[str, List[ShardPlacement]] = {}
        for name in sorted(catalog):
            table = catalog[name]
            spec = self.specs.get(name, DEFAULT_SPEC)
            indices = partition_indices(table, spec, self.num_shards)
            placements = []
            for shard, rows in enumerate(len(ix) for ix in indices):
                primary = shard % num_nodes
                copies = tuple(
                    (primary + r) % num_nodes
                    for r in range(self.replication)
                )
                placements.append(ShardPlacement(
                    table=name,
                    shard=shard,
                    nbytes=_shard_nbytes(table, rows),
                    rows=rows,
                    copies=copies,
                ))
            self._placements[name] = placements

    @property
    def tables(self) -> List[str]:
        return list(self._placements)

    def shards_for(self, table: str) -> List[ShardPlacement]:
        """All shard placements of one table (shard order)."""
        try:
            return list(self._placements[table])
        except KeyError:
            raise ClusterError(f"table {table!r} has no placement")

    def holders(self, table: str, shard: int) -> Tuple[int, ...]:
        """Nodes holding a copy of the shard (primary first)."""
        placements = self.shards_for(table)
        if not 0 <= shard < len(placements):
            raise ClusterError(
                f"shard {shard} out of range for {table!r} "
                f"({len(placements)} shards)"
            )
        return placements[shard].copies

    def hosted_by(self, node: int) -> List[ShardPlacement]:
        """Every shard placement with a copy on ``node``."""
        return [
            p for placements in self._placements.values()
            for p in placements if node in p.copies
        ]

    def node_bytes(self, node: int) -> int:
        """Total shard bytes hosted on ``node`` (placement footprint)."""
        return sum(p.nbytes for p in self.hosted_by(node))

    def missing_for(
        self,
        node: int,
        tables: Iterable[str],
        cached: Iterable[Tuple[str, int]] = (),
    ) -> List[ShardPlacement]:
        """Shards of ``tables`` that ``node`` neither hosts nor has cached
        — the set a query routed there would fetch over the network."""
        cache = set(cached)
        missing = []
        for table in sorted(set(tables)):
            if table not in self._placements:
                continue
            for placement in self._placements[table]:
                if node in placement.copies:
                    continue
                if (table, placement.shard) in cache:
                    continue
                missing.append(placement)
        return missing
