"""Multi-GPU execution: partitioning, exchange, and group execution.

This package scales the single-device stack out to a simulated
:class:`~repro.gpu.topology.DeviceGroup`.  Base tables are split into
per-device shards (:mod:`partition`), data movement between devices is
priced by exchange operators over the cost-modelled interconnect
(:mod:`exchange`), plan eligibility is decided by a small analyzer
(:mod:`planner`), and :class:`DistributedExecutor` ties it together:
partition-parallel scans with partial-aggregate merge for Q1/Q6-style
plans, broadcast or shuffle hash joins for Q3/Q4-style plans, chosen by
cost.  :class:`GroupServer` replicates the serving layer per device, and
:mod:`trace` merges per-device timelines into one Chrome trace with a
process row per GPU.
"""

from repro.distributed.exchange import (
    EXCHANGE_MODES,
    AllReduce,
    Broadcast,
    ExchangeChoice,
    Gather,
    Shuffle,
    choose_exchange,
    movement_matrix,
)
from repro.distributed.executor import (
    EXCHANGE_POLICIES,
    MERGE_MODES,
    STRATEGIES,
    DistributedExecutor,
    DistributedReport,
    DistributedResult,
    ShardReport,
)
from repro.distributed.partition import (
    PARTITIONER_KINDS,
    PartitionSpec,
    ShardCatalog,
    parse_partition_spec,
    partition_indices,
    partition_table,
)
from repro.distributed.planner import (
    DistributedDecision,
    JoinExchangePlan,
    analyze,
)
from repro.distributed.serve import GroupServeReport, GroupServer
from repro.distributed.trace import (
    group_chrome_trace_json,
    write_group_chrome_trace,
)

__all__ = [
    "AllReduce",
    "Broadcast",
    "ExchangeChoice",
    "EXCHANGE_MODES",
    "EXCHANGE_POLICIES",
    "Gather",
    "MERGE_MODES",
    "STRATEGIES",
    "Shuffle",
    "choose_exchange",
    "movement_matrix",
    "DistributedDecision",
    "DistributedExecutor",
    "DistributedReport",
    "DistributedResult",
    "GroupServeReport",
    "GroupServer",
    "JoinExchangePlan",
    "PARTITIONER_KINDS",
    "PartitionSpec",
    "ShardCatalog",
    "ShardReport",
    "analyze",
    "group_chrome_trace_json",
    "parse_partition_spec",
    "partition_indices",
    "partition_table",
    "write_group_chrome_trace",
]
