"""Column partitioning of tables into per-device shards.

Three partitioners cover the placement strategies the multi-GPU exchange
layer needs:

* **hash** — multiplicative hashing of one column; equal keys colocate,
  which is what makes per-shard joins and group-bys on that column
  complete without a merge (the co-partitioning property shuffle joins
  rely on).
* **range** — value ranges from equi-depth boundaries over the column;
  equal values colocate here too, and shards are contiguous in key space
  (the layout a sort-based pipeline would produce).
* **round_robin** — rows dealt out ``row % n``; perfectly balanced but
  colocates nothing, so only merge-at-the-top plans are sound on it.

All three are pure functions of (values, shard count): partitioning the
same table twice — or on two runs of a seeded benchmark — yields the
same shards, which the determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import PlanError
from repro.relational.table import Table

#: Known partitioner kinds (the ``kind:`` prefix of a CLI partition spec).
PARTITIONER_KINDS = ("hash", "range", "round_robin")

#: Fibonacci multiplier for multiplicative hashing (2^64 / golden ratio):
#: cheap, stateless, and spreads consecutive keys across shards.
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class PartitionSpec:
    """How one table is split across the device group."""

    kind: str
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in PARTITIONER_KINDS:
            raise PlanError(
                f"unknown partitioner {self.kind!r}; "
                f"known: {', '.join(PARTITIONER_KINDS)}"
            )
        if self.kind in ("hash", "range") and not self.column:
            raise PlanError(f"{self.kind} partitioning needs a column")
        if self.kind == "round_robin" and self.column:
            raise PlanError("round_robin partitioning takes no column")

    @property
    def colocates_equal_keys(self) -> bool:
        """True when equal partition-column values land on one shard."""
        return self.kind in ("hash", "range")

    def __str__(self) -> str:
        if self.column:
            return f"{self.kind}:{self.column}"
        return self.kind


def parse_partition_spec(text: str) -> PartitionSpec:
    """Parse a CLI spec: ``hash:<col>``, ``range:<col>``, ``round_robin``."""
    kind, _, column = text.partition(":")
    return PartitionSpec(kind=kind, column=column or None)


def _hash_values(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit hash of a column's physical values."""
    if values.dtype.kind == "f":
        # Hash the bit pattern: exact, and distinguishes -0.0 from 0.0
        # the same way on every run.
        bits = np.ascontiguousarray(values, dtype=np.float64).view(np.uint64)
    else:
        bits = values.astype(np.uint64)  # int64 wraps, which is fine
    return (bits * _HASH_MULTIPLIER) >> np.uint64(32)


def partition_indices(
    table: Table, spec: PartitionSpec, num_shards: int
) -> List[np.ndarray]:
    """Row-index arrays, one per shard, covering the table exactly.

    Within each shard the indices stay ascending, so shard-local row
    order matches the original table order.
    """
    if num_shards < 1:
        raise PlanError(f"shard count must be >= 1: {num_shards}")
    n = table.num_rows
    if spec.kind == "round_robin":
        assignment = np.arange(n, dtype=np.int64) % num_shards
    else:
        assert spec.column is not None
        values = table.column(spec.column).data
        if spec.kind == "hash":
            assignment = (
                _hash_values(values) % np.uint64(num_shards)
            ).astype(np.int64)
        else:  # range: equi-depth boundaries from the sorted values
            if n == 0:
                assignment = np.zeros(0, dtype=np.int64)
            else:
                ordered = np.sort(values, kind="stable")
                cuts = [(i * n) // num_shards for i in range(1, num_shards)]
                boundaries = ordered[cuts]
                assignment = np.searchsorted(
                    boundaries, values, side="right"
                ).astype(np.int64)
    return [
        np.flatnonzero(assignment == shard).astype(np.int64)
        for shard in range(num_shards)
    ]


def partition_table(
    table: Table, spec: PartitionSpec, num_shards: int
) -> List[Table]:
    """Split ``table`` into ``num_shards`` shard tables (possibly empty)."""
    return [
        table.take(indices)
        for indices in partition_indices(table, spec, num_shards)
    ]


class ShardCatalog:
    """Per-device views over a base catalog.

    Tables registered through :meth:`shard` are physically partitioned;
    every other table is *replicated* — each device's catalog maps it to
    the same host table object, so replication costs nothing on the host
    and is priced only when the exchange layer moves it or a device scan
    uploads it.
    """

    def __init__(self, catalog: Dict[str, Table], num_shards: int) -> None:
        if num_shards < 1:
            raise PlanError(f"shard count must be >= 1: {num_shards}")
        self.base = dict(catalog)
        self.num_shards = num_shards
        self._shards: Dict[str, List[Table]] = {}
        self._specs: Dict[str, PartitionSpec] = {}
        self._indices: Dict[str, List[np.ndarray]] = {}

    def shard(self, name: str, spec: PartitionSpec) -> None:
        """Partition base table ``name`` by ``spec`` across all shards."""
        if name not in self.base:
            known = ", ".join(sorted(self.base))
            raise PlanError(f"unknown table {name!r}; catalog has: {known}")
        indices = partition_indices(self.base[name], spec, self.num_shards)
        self._indices[name] = indices
        self._shards[name] = [self.base[name].take(ix) for ix in indices]
        self._specs[name] = spec

    def is_sharded(self, name: str) -> bool:
        return name in self._shards

    def spec_for(self, name: str) -> PartitionSpec:
        return self._specs[name]

    def shard_table(self, name: str, shard: int) -> Table:
        return self._shards[name][shard]

    def shard_rows(self, name: str) -> List[int]:
        """Row count per shard of a sharded table."""
        return [t.num_rows for t in self._shards[name]]

    def shard_indices(self, name: str) -> List[np.ndarray]:
        """Original-table row indices per shard (for movement accounting)."""
        return self._indices[name]

    def device_catalog(self, shard: int) -> Dict[str, Table]:
        """The catalog device ``shard`` executes against: its shard of
        every sharded table, the shared host table for everything else."""
        if not 0 <= shard < self.num_shards:
            raise IndexError(
                f"shard {shard} out of range for {self.num_shards} shards"
            )
        catalog = dict(self.base)
        for name, shards in self._shards.items():
            catalog[name] = shards[shard]
        return catalog
