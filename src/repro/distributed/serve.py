"""Multi-device query serving: tenant-partitioned replica groups.

The serving layer's multi-GPU story is the simplest one that matches
practice for read-mostly analytics: every device holds a full replica of
the catalog and runs its own :class:`~repro.serve.server.QueryServer`
(scheduler, admission controller, caches, stream pool); tenants are
assigned to devices round-robin in order of first appearance, so one
tenant's requests — including closed-loop follow-ups, which inherit the
tenant — always land on the same device and keep hitting its warm plan
and result caches.

Each sub-server runs on its device's own simulated clock, so the group
report's latencies reflect per-device queueing, not a global serial
order.  The merged record stream and aggregate metrics come out of the
same :func:`~repro.serve.metrics.compute_metrics` fold the single-device
server uses, with cache counters summed across replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.framework import GpuOperatorFramework, default_framework
from repro.gpu.topology import DeviceGroup
from repro.relational.table import Table
from repro.serve.metrics import ServeMetrics, compute_metrics
from repro.serve.request import QueryRequest, RequestRecord
from repro.serve.server import QueryServer, ServeReport, ServerConfig


class _TenantSlice:
    """A fixed arrival list that forwards completions to the real
    workload (closed-loop follow-ups stay on the owning device)."""

    def __init__(self, requests: List[QueryRequest], parent) -> None:
        self._requests = requests
        self._parent = parent

    def arrivals(self) -> List[QueryRequest]:
        return list(self._requests)

    def on_complete(self, record: RequestRecord) -> Optional[QueryRequest]:
        return self._parent.on_complete(record)


@dataclass
class GroupServeReport:
    """Outcome of one :meth:`GroupServer.run` across all replicas."""

    records: List[RequestRecord]
    metrics: ServeMetrics
    #: Per-device sub-reports, index = device position in the group.
    per_device: Tuple[ServeReport, ...]
    #: Tenant -> device index placement this run used.
    assignment: Dict[str, int]


class GroupServer:
    """Serves a workload on a replica per device of a group."""

    def __init__(
        self,
        group: DeviceGroup,
        backend_name: str,
        catalog: Dict[str, Table],
        config: Optional[ServerConfig] = None,
        *,
        framework: Optional[GpuOperatorFramework] = None,
    ) -> None:
        framework = framework if framework is not None else default_framework()
        self.group = group
        self.backend_name = backend_name
        self.servers = [
            QueryServer(
                framework.create(backend_name, device), catalog, config
            )
            for device in group
        ]

    def run(self, workload) -> GroupServeReport:
        """Partition the workload by tenant and serve each slice."""
        requests = list(workload.arrivals())
        assignment: Dict[str, int] = {}
        for request in requests:
            if request.tenant not in assignment:
                assignment[request.tenant] = len(assignment) % len(self.group)
        slices: List[List[QueryRequest]] = [[] for _ in self.group]
        for request in requests:
            slices[assignment[request.tenant]].append(request)

        reports: List[ServeReport] = []
        records: List[RequestRecord] = []
        for server, owned in zip(self.servers, slices):
            report = server.run(_TenantSlice(owned, workload))
            reports.append(report)
            records.extend(report.records)
        records.sort(key=lambda record: record.seq)
        metrics = compute_metrics(
            records,
            plan_cache_hits=sum(s.plan_cache.hits for s in self.servers),
            plan_cache_misses=sum(s.plan_cache.misses for s in self.servers),
            result_cache_hits=sum(s.result_cache.hits for s in self.servers),
            result_cache_misses=sum(
                s.result_cache.misses for s in self.servers
            ),
            result_cache_invalidations=sum(
                s.result_cache.invalidations for s in self.servers
            ),
        )
        return GroupServeReport(
            records=records,
            metrics=metrics,
            per_device=tuple(reports),
            assignment=assignment,
        )

    def close(self) -> None:
        for server in self.servers:
            server.close()

    def __enter__(self) -> "GroupServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
