"""Multi-device query serving: tenant-partitioned replica groups.

The serving layer's multi-GPU story is the simplest one that matches
practice for read-mostly analytics: every device holds a full replica of
the catalog and runs its own :class:`~repro.serve.server.QueryServer`
(scheduler, admission controller, caches, stream pool); tenants are
assigned to devices round-robin in order of first appearance, so one
tenant's requests — including closed-loop follow-ups, which inherit the
tenant — always land on the same device and keep hitting its warm plan
and result caches.

Each sub-server runs on its device's own simulated clock, so the group
report's latencies reflect per-device queueing, not a global serial
order.  The merged record stream and aggregate metrics come out of the
same :func:`~repro.serve.metrics.compute_metrics` fold the single-device
server uses, with cache counters summed across replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.framework import GpuOperatorFramework, default_framework
from repro.gpu.topology import DeviceGroup
from repro.relational.table import Table
from repro.serve.metrics import ServeMetrics, compute_metrics
from repro.serve.request import QueryRequest, RequestRecord
from repro.serve.server import QueryServer, ServeReport, ServerConfig


class _TenantSlice:
    """A fixed arrival list that forwards completions to the real
    workload (closed-loop follow-ups stay on the owning device)."""

    def __init__(self, requests: List[QueryRequest], parent) -> None:
        self._requests = requests
        self._parent = parent

    def arrivals(self) -> List[QueryRequest]:
        return list(self._requests)

    def on_complete(self, record: RequestRecord) -> Optional[QueryRequest]:
        return self._parent.on_complete(record)


@dataclass
class GroupServeReport:
    """Outcome of one :meth:`GroupServer.run` across all replicas."""

    records: List[RequestRecord]
    metrics: ServeMetrics
    #: Per-device sub-reports, index = device position in the group.
    per_device: Tuple[ServeReport, ...]
    #: Tenant -> device index placement this run used.
    assignment: Dict[str, int]


class GroupServer:
    """Serves a workload on a replica per device of a group."""

    def __init__(
        self,
        group: DeviceGroup,
        backend_name: str,
        catalog: Dict[str, Table],
        config: Optional[ServerConfig] = None,
        *,
        framework: Optional[GpuOperatorFramework] = None,
    ) -> None:
        framework = framework if framework is not None else default_framework()
        self.group = group
        self.backend_name = backend_name
        self.servers = [
            QueryServer(
                framework.create(backend_name, device), catalog, config
            )
            for device in group
        ]
        #: Device indices still in rotation (replicas not yet removed).
        self._active: List[int] = list(range(len(group)))
        #: Tenant -> device index, persistent across runs so closed-loop
        #: tenants keep their warm caches between workloads.
        self._assignment: Dict[str, int] = {}
        #: Round-robin cursor over the active replicas.
        self._next_slot = 0

    @property
    def active_replicas(self) -> Tuple[int, ...]:
        """Device indices currently serving (in group order)."""
        return tuple(self._active)

    def _assign(self, tenant: str) -> int:
        """Pin a new tenant to the next active replica round-robin."""
        device = self._active[self._next_slot % len(self._active)]
        self._assignment[tenant] = device
        self._next_slot += 1
        return device

    def remove_replica(self, index: int) -> None:
        """Take one replica out of rotation and rebalance its tenants.

        Tenant pins used to be static for the server's lifetime, so a
        removed replica's tenants kept routing into a closed server.
        Now the orphaned tenants are re-pinned round-robin across the
        survivors (in first-appearance order, deterministically) and all
        future routing only considers active replicas.
        """
        if index not in self._active:
            raise ValueError(f"replica {index} is not active")
        if len(self._active) == 1:
            raise ValueError("cannot remove the last active replica")
        self._active.remove(index)
        self.servers[index].close()
        orphans = [
            tenant for tenant, device in self._assignment.items()
            if device == index
        ]
        for tenant in orphans:
            self._assign(tenant)

    def run(self, workload) -> GroupServeReport:
        """Partition the workload by tenant and serve each slice."""
        requests = list(workload.arrivals())
        for request in requests:
            if request.tenant not in self._assignment:
                self._assign(request.tenant)
        slices: Dict[int, List[QueryRequest]] = {
            device: [] for device in self._active
        }
        for request in requests:
            slices[self._assignment[request.tenant]].append(request)

        reports: List[ServeReport] = []
        records: List[RequestRecord] = []
        for device in self._active:
            report = self.servers[device].run(
                _TenantSlice(slices[device], workload)
            )
            reports.append(report)
            records.extend(report.records)
        records.sort(key=lambda record: record.seq)
        active_servers = [self.servers[device] for device in self._active]
        metrics = compute_metrics(
            records,
            plan_cache_hits=sum(s.plan_cache.hits for s in active_servers),
            plan_cache_misses=sum(
                s.plan_cache.misses for s in active_servers
            ),
            result_cache_hits=sum(
                s.result_cache.hits for s in active_servers
            ),
            result_cache_misses=sum(
                s.result_cache.misses for s in active_servers
            ),
            result_cache_invalidations=sum(
                s.result_cache.invalidations for s in active_servers
            ),
        )
        return GroupServeReport(
            records=records,
            metrics=metrics,
            per_device=tuple(reports),
            assignment=dict(self._assignment),
        )

    def close(self) -> None:
        for device in self._active:
            self.servers[device].close()

    def __enter__(self) -> "GroupServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
