"""Eligibility analysis for partition-parallel plan execution.

The distributed executor runs one copy of (almost) the whole plan per
device, against a per-device catalog in which exactly one base table —
the *sharded* table — is replaced by that device's shard while every
other base table is replicated.  That is correct precisely when every
operator between the sharded scan and the *merge point* distributes over
row-unions of the sharded table:

* ``Filter``/``Project`` are row-local — always distribute.
* ``Join`` with a replicated other side matches each sharded row
  independently — distributes.
* A ``GroupBy`` *at* the merge point (the plan's topmost aggregation)
  distributes by construction: each device computes partials and the
  host recombines them with the chunked-scan combine machinery.
* A ``GroupBy`` strictly *below* the merge point (e.g. Q4's decorrelated
  EXISTS) is only complete per-device when all rows of each group
  colocate — the partitioning must be hash or range on one of its keys.
* ``OrderBy``/``Limit`` are admitted only above a keyed merge group-by
  (small output, re-sorted on the host), mirroring the chunked-scan
  rules.

Plans without a topmost aggregation are rejected outright: their result
row *order* would depend on the partitioning, so they could never match
the serial executor bit-for-bit.  The executor falls back to
single-device execution for every ineligible plan — distribution is an
optimisation, never a semantics change.

The analysis also works out whether the plan's top join admits a
*shuffle* exchange (hash-partition the build side instead of replicating
it): the build side must expose its join key as a stored column of
exactly one base table, and the fact side's stored partitioning — or a
re-shard onto the join key — must colocate every inner group-by.  The
broadcast-vs-shuffle choice itself is made by the cost model in
:mod:`repro.distributed.exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.predicate import And, Not, Or, Predicate
from repro.query.chunked import COMBINABLE_AGGREGATES, _peel_wrappers
from repro.query.plan import (
    Filter,
    GroupBy,
    InSubquery,
    Join,
    PlanNode,
    Project,
    Scan,
    ScalarCompare,
    SemiJoin,
    walk,
)
from repro.relational.table import Table
from repro.distributed.partition import PartitionSpec


def _contains_scan(node: PlanNode, table: str) -> bool:
    return any(
        isinstance(n, Scan) and n.table == table for n in walk(node)
    )


def _has_subquery(predicate: Predicate) -> bool:
    """True when a filter predicate still carries an unresolved subquery."""
    if isinstance(predicate, (InSubquery, ScalarCompare)):
        return True
    if isinstance(predicate, (And, Or)):
        return any(_has_subquery(part) for part in predicate.parts)
    if isinstance(predicate, Not):
        return _has_subquery(predicate.part)
    return False


def _scan_tables(node: PlanNode) -> List[str]:
    return [n.table for n in walk(node) if isinstance(n, Scan)]


@dataclass(frozen=True)
class JoinExchangePlan:
    """Shuffle-eligibility facts about the plan's top join."""

    #: The sharded side's join column (a stored column of the sharded
    #: table) — shuffle re-partitions the fact side onto ``hash:<this>``.
    fact_key: str
    #: The build-side base table that is hash-partitioned instead of
    #: replicated in shuffle mode, and its join column.
    build_table: str
    build_key: str


@dataclass(frozen=True)
class DistributedDecision:
    """Outcome of :func:`analyze` for one (plan, partitioning) pair."""

    eligible: bool
    #: Human-readable fallback reason when not eligible.
    reason: str
    sharded_table: Optional[str] = None
    spec: Optional[PartitionSpec] = None
    #: The merge-point GroupBy (the per-device plan root) and the peeled
    #: OrderBy/Limit wrappers re-applied after the host merge.
    inner: Optional[GroupBy] = None
    wrappers: Tuple[PlanNode, ...] = ()
    keyed: bool = False
    #: Base tables replicated to every device (referenced, not sharded).
    replicated: Tuple[str, ...] = ()
    #: Whether the *stored* partitioning colocates every inner group-by
    #: (gates broadcast mode).
    broadcast_sound: bool = True
    #: Shuffle facts, or None with ``shuffle_reason`` saying why not.
    join_exchange: Optional[JoinExchangePlan] = None
    shuffle_reason: str = ""
    #: Key sets of group-bys below the merge point over the sharded table
    #: (re-checked against the effective partitioning in shuffle mode).
    inner_group_keys: Tuple[FrozenSet[str], ...] = field(default=())


def _ineligible(reason: str) -> DistributedDecision:
    return DistributedDecision(eligible=False, reason=reason)


def colocated(
    spec: PartitionSpec, key_sets: Tuple[FrozenSet[str], ...]
) -> bool:
    """True when ``spec`` sends every group of every key set to one
    shard: hash/range partitioning on a column of each set."""
    return all(
        spec.colocates_equal_keys and spec.column in keys
        for keys in key_sets
    )


def analyze(
    plan: PlanNode,
    catalog: Dict[str, Table],
    spec: PartitionSpec,
) -> DistributedDecision:
    """Decide whether (and how) ``plan`` can run partition-parallel."""
    inner, wrappers = _peel_wrappers(plan)
    if not isinstance(inner, GroupBy):
        return _ineligible(
            "no aggregation at the top: result row order would depend on "
            "the partitioning"
        )
    keyed = bool(inner.keys)
    if wrappers and not keyed:
        return _ineligible(
            "OrderBy/Limit above a global aggregate is not distributable"
        )
    for aggregate in inner.aggregates:
        if aggregate.kind in COMBINABLE_AGGREGATES:
            continue
        if aggregate.kind == "avg" and keyed:
            continue
        return _ineligible(
            f"aggregate kind {aggregate.kind!r} has no shard-combinable "
            "partial form here"
        )

    for node in walk(inner):
        if isinstance(node, Filter) and _has_subquery(node.predicate):
            # Per-device resolution would run the subquery against a
            # *shard* of its tables, changing the membership set.
            return _ineligible(
                "plan carries an unresolved subquery predicate; it must "
                "be resolved against the whole catalog first"
            )

    tables = _scan_tables(inner)
    missing = sorted({t for t in tables if t not in catalog})
    if missing:
        return _ineligible(f"unknown tables: {', '.join(missing)}")

    if spec.column is not None:
        owners = sorted(
            {t for t in set(tables) if spec.column in catalog[t]}
        )
        if not owners:
            return _ineligible(
                f"partition column {spec.column!r} is not a column of any "
                "scanned table"
            )
        if len(owners) > 1:
            return _ineligible(
                f"partition column {spec.column!r} is ambiguous across "
                f"tables: {', '.join(owners)}"
            )
        sharded = owners[0]
    else:
        # round_robin: shard the biggest referenced table (ties by name).
        sharded = max(set(tables), key=lambda t: (catalog[t].nbytes, t))
    if tables.count(sharded) != 1:
        return _ineligible(
            f"table {sharded!r} is scanned more than once; sharding it "
            "would need multi-occurrence placement"
        )
    for node in walk(inner):
        if isinstance(node, SemiJoin) and _contains_scan(node.right, sharded):
            # A semi/anti membership set built from one shard is
            # incomplete: semi keeps too few rows, anti keeps too many.
            return _ineligible(
                f"a semi/anti join builds its key set from sharded table "
                f"{sharded!r}; the membership test needs the whole table"
            )

    inner_group_keys = tuple(
        frozenset(node.keys)
        for node in walk(inner.child)
        if isinstance(node, GroupBy) and _contains_scan(node, sharded)
    )
    broadcast_sound = colocated(spec, inner_group_keys)
    replicated = tuple(sorted(set(tables) - {sharded}))

    join_exchange, shuffle_reason = _analyze_top_join(
        inner, catalog, sharded, tables
    )
    shuffle_sound = join_exchange is not None and colocated(
        PartitionSpec("hash", join_exchange.fact_key), inner_group_keys
    )
    if join_exchange is not None and not shuffle_sound:
        shuffle_reason = (
            "re-sharding on the join key would break an inner group-by's "
            "colocation"
        )
        join_exchange = None
    if not broadcast_sound and join_exchange is None:
        return _ineligible(
            f"{spec} does not colocate an inner group-by's keys and no "
            f"shuffle alternative exists ({shuffle_reason})"
        )

    return DistributedDecision(
        eligible=True,
        reason="",
        sharded_table=sharded,
        spec=spec,
        inner=inner,
        wrappers=tuple(wrappers),
        keyed=keyed,
        replicated=replicated,
        broadcast_sound=broadcast_sound,
        join_exchange=join_exchange,
        shuffle_reason=shuffle_reason,
        inner_group_keys=inner_group_keys,
    )


def _find_top_join(node: PlanNode) -> Optional[Join]:
    """The first Join on the single-child spine below the merge point."""
    while isinstance(node, (Filter, Project)):
        node = node.child
    return node if isinstance(node, Join) else None


def _analyze_top_join(
    inner: GroupBy,
    catalog: Dict[str, Table],
    sharded: str,
    tables: List[str],
) -> Tuple[Optional[JoinExchangePlan], str]:
    """Shuffle-exchange facts for the top join (None + reason if not)."""
    top = _find_top_join(inner.child)
    if top is None:
        return None, "no join below the merge point"
    left_has = _contains_scan(top.left, sharded)
    if left_has and _contains_scan(top.right, sharded):
        return None, f"both join sides reach {sharded!r}"
    if left_has:
        fact_key, build_side, build_key = (
            top.left_on, top.right, top.right_on
        )
    elif _contains_scan(top.right, sharded):
        fact_key, build_side, build_key = (
            top.right_on, top.left, top.left_on
        )
    else:
        return None, f"the top join does not touch {sharded!r}"
    if fact_key not in catalog[sharded]:
        return None, (
            f"join key {fact_key!r} is not a stored column of {sharded!r}"
        )
    owners = sorted(
        {
            t for t in set(_scan_tables(build_side))
            if build_key in catalog[t]
        }
    )
    if len(owners) != 1:
        return None, (
            f"build join key {build_key!r} must come from exactly one "
            f"base table (candidates: {', '.join(owners) or 'none'})"
        )
    build_table = owners[0]
    if tables.count(build_table) != 1:
        return None, f"build table {build_table!r} is scanned more than once"
    for node in walk(build_side):
        if (
            isinstance(node, GroupBy)
            and _contains_scan(node, build_table)
            and build_key not in node.keys
        ):
            return None, (
                f"a build-side group-by does not key on {build_key!r}"
            )
    return JoinExchangePlan(fact_key, build_table, build_key), ""
