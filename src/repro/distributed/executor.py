"""Partition-parallel query execution across a simulated device group.

The :class:`DistributedExecutor` is the multi-GPU counterpart of
:class:`~repro.query.executor.QueryExecutor`: it splits one base table
into per-device shards, runs the (lightly rewritten) plan once per
device through an ordinary single-device executor, prices the
inter-device data movement with the exchange operators, and recombines
the per-device partial aggregates on the host with the same combine
machinery the chunked-scan path uses — a device shard is just a chunk
that lives on its own device.

Placement model (see DESIGN.md "Interconnect cost model"):

* The sharded table's shards are *device-resident*: re-partitioning them
  (a shuffle join whose stored layout does not match the join key) moves
  rows peer-to-peer and is priced with :class:`Shuffle`.
* Replicated tables are *host-resident*: each device uploads them during
  its scan, so replication is priced as parallel H2D transfers by the
  per-device executors themselves — broadcast mode adds no separate
  exchange step, it simply leaves the build side whole in every device
  catalog.
* Partial results merge over the interconnect: a :class:`Gather` to
  device 0 by default, or an :class:`AllReduce` when every device should
  end up with the merged aggregate.

Ineligible plans (see :mod:`repro.distributed.planner`) fall back to
plain single-device execution, and a one-device group always takes that
path — so ``--devices 1`` is bit-identical to the serial executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.framework import GpuOperatorFramework, default_framework
from repro.errors import PlanError
from repro.gpu.profiler import ProfileSummary, merge_summaries
from repro.gpu.topology import DeviceGroup
from repro.query.chunked import (
    _apply_wrappers,
    _chunk_plan,
    _combine_aggregates,
    _combine_keyed_groups,
)
from repro.query.executor import ExecutionReport, QueryExecutor
from repro.query.plan import Join, PlanNode, walk
from repro.relational.table import Table
from repro.distributed.exchange import (
    AllReduce,
    ExchangeChoice,
    Gather,
    Shuffle,
    choose_exchange,
    movement_matrix,
)
from repro.distributed.partition import (
    PartitionSpec,
    ShardCatalog,
    parse_partition_spec,
    partition_indices,
)
from repro.distributed.planner import DistributedDecision, analyze

#: How per-device partial aggregates are merged over the interconnect.
MERGE_MODES = ("gather", "all_reduce")

#: Exchange-mode selection: cost model, or force one pattern.
EXCHANGE_POLICIES = ("cost", "broadcast", "shuffle")

#: Execution strategies a distributed run can report.
STRATEGIES = (
    "single_device",
    "partition_parallel",
    "broadcast_join",
    "shuffle_join",
)


@dataclass(frozen=True)
class ShardReport:
    """One device's slice of a distributed execution."""

    device: int
    shard_rows: int
    report: ExecutionReport


@dataclass(frozen=True)
class DistributedReport:
    """Cost accounting for one distributed query execution."""

    backend: str
    num_devices: int
    strategy: str
    #: The stored partitioning (``hash:<col>`` etc.) this run started from.
    partition: str
    #: Simulated wall-clock from group-aligned start to full drain.
    makespan_seconds: float
    #: Peer-to-peer re-partitioning (shuffle joins only).
    exchange_seconds: float
    exchange_bytes: int
    #: Partial-aggregate merge over the interconnect.
    merge_mode: str
    merge_seconds: float
    merge_bytes: int
    #: Why the run fell back to one device ("" when distributed).
    reason: str
    per_device: Tuple[ShardReport, ...]
    #: Group-wide cost summary (kernels, transfers incl. D2D, compiles).
    summary: ProfileSummary
    #: Broadcast-vs-shuffle cost-model verdict (None without a top join).
    exchange_choice: Optional[ExchangeChoice] = None

    @property
    def simulated_seconds(self) -> float:
        return self.makespan_seconds

    @property
    def simulated_ms(self) -> float:
        return self.makespan_seconds * 1e3

    @property
    def devices_used(self) -> int:
        return len(self.per_device)


@dataclass(frozen=True)
class DistributedResult:
    """A materialised result table plus its distributed cost report."""

    table: Table
    report: DistributedReport


class DistributedExecutor:
    """Runs logical plans partition-parallel on a :class:`DeviceGroup`.

    ``partition`` names the stored layout of the sharded table (a
    :class:`PartitionSpec` or its ``kind[:column]`` string form).
    ``exchange`` picks the join exchange pattern: ``"cost"`` (default)
    lets the cost model decide, ``"broadcast"``/``"shuffle"`` force one.
    ``merge`` picks how partials meet: ``"gather"`` to device 0 or an
    ``"all_reduce"`` that leaves every device with the merged result.
    The remaining knobs are forwarded to the per-device executors.
    """

    def __init__(
        self,
        group: DeviceGroup,
        backend_name: str,
        catalog: Dict[str, Table],
        partition: Union[PartitionSpec, str],
        *,
        framework: Optional[GpuOperatorFramework] = None,
        join_strategy: Optional[str] = None,
        exchange: str = "cost",
        merge: str = "gather",
        scan_chunks: Optional[int] = None,
        scan_streams: int = 2,
    ) -> None:
        if exchange not in EXCHANGE_POLICIES:
            raise PlanError(
                f"unknown exchange policy {exchange!r}; "
                f"known: {', '.join(EXCHANGE_POLICIES)}"
            )
        if merge not in MERGE_MODES:
            raise PlanError(
                f"unknown merge mode {merge!r}; "
                f"known: {', '.join(MERGE_MODES)}"
            )
        if isinstance(partition, str):
            partition = parse_partition_spec(partition)
        self.group = group
        self.catalog = dict(catalog)
        self.partition = partition
        self.exchange = exchange
        self.merge = merge
        self.join_strategy = join_strategy
        self.scan_chunks = scan_chunks
        self.scan_streams = scan_streams
        framework = framework if framework is not None else default_framework()
        self.backend_name = backend_name
        self.backends = [
            framework.create(backend_name, device) for device in group
        ]

    # -- public API ------------------------------------------------------------

    def execute(
        self, plan: PlanNode, result_name: str = "result"
    ) -> DistributedResult:
        """Execute ``plan`` and return the result with its cost report."""
        decision = analyze(plan, self.catalog, self.partition)
        if len(self.group) == 1:
            return self._execute_single(
                plan, result_name, "one device in the group"
            )
        if not decision.eligible:
            return self._execute_single(plan, result_name, decision.reason)
        return self._execute_distributed(plan, result_name, decision)

    # -- single-device fallback ------------------------------------------------

    def _sub_executor(self, device: int, catalog: Dict[str, Table]) -> QueryExecutor:
        return QueryExecutor(
            self.backends[device],
            catalog,
            join_strategy=self.join_strategy,
            scan_chunks=self.scan_chunks,
            scan_streams=self.scan_streams,
        )

    def _execute_single(
        self, plan: PlanNode, result_name: str, reason: str
    ) -> DistributedResult:
        """Whole plan on device 0 — bit-identical to the serial executor."""
        result = self._sub_executor(0, self.catalog).execute(plan, result_name)
        num_rows = max(
            (t.num_rows for t in self.catalog.values()), default=0
        )
        report = DistributedReport(
            backend=self.backend_name,
            num_devices=len(self.group),
            strategy="single_device",
            partition=str(self.partition),
            makespan_seconds=result.report.simulated_seconds,
            exchange_seconds=0.0,
            exchange_bytes=0,
            merge_mode=self.merge,
            merge_seconds=0.0,
            merge_bytes=0,
            reason=reason,
            per_device=(ShardReport(0, num_rows, result.report),),
            summary=result.report.summary,
        )
        return DistributedResult(table=result.table, report=report)

    # -- distributed path ------------------------------------------------------

    def _resolve_mode(
        self, decision: DistributedDecision
    ) -> Tuple[str, Optional[ExchangeChoice]]:
        """Pick broadcast vs shuffle, honouring soundness and overrides."""
        assert decision.sharded_table is not None
        choice: Optional[ExchangeChoice] = None
        if decision.join_exchange is not None:
            jx = decision.join_exchange
            reshard_required = not (
                self.partition.kind == "hash"
                and self.partition.column == jx.fact_key
            )
            choice = choose_exchange(
                self.group,
                build_bytes=self.catalog[jx.build_table].nbytes,
                fact_bytes=self.catalog[decision.sharded_table].nbytes,
                reshard_required=reshard_required,
            )
        if self.exchange == "shuffle":
            if decision.join_exchange is None:
                raise PlanError(
                    "shuffle exchange is not available for this plan: "
                    + (decision.shuffle_reason or "no join below the merge")
                )
            return "shuffle", choice
        if self.exchange == "broadcast":
            if not decision.broadcast_sound:
                raise PlanError(
                    f"broadcast exchange is unsound under {self.partition}: "
                    "an inner group-by's keys are not colocated"
                )
            return "broadcast", choice
        # Cost-based: fall back to whichever pattern is sound when only
        # one is; otherwise trust the model.
        if decision.join_exchange is None:
            return "broadcast", None
        if not decision.broadcast_sound:
            return "shuffle", choice
        assert choice is not None
        return choice.mode, choice

    def _execute_distributed(
        self,
        plan: PlanNode,
        result_name: str,
        decision: DistributedDecision,
    ) -> DistributedResult:
        assert decision.inner is not None
        assert decision.sharded_table is not None
        group = self.group
        n = len(group)
        sharded = decision.sharded_table
        mode, choice = self._resolve_mode(decision)

        # Per-device catalogs: shard the fact table (re-keyed onto the
        # join column in shuffle mode), co-partition the build side in
        # shuffle mode, replicate everything else.
        shards = ShardCatalog(self.catalog, n)
        effective_spec = self.partition
        if mode == "shuffle":
            assert decision.join_exchange is not None
            jx = decision.join_exchange
            effective_spec = PartitionSpec("hash", jx.fact_key)
            shards.shard(sharded, effective_spec)
            shards.shard(jx.build_table, PartitionSpec("hash", jx.build_key))
        else:
            shards.shard(sharded, self.partition)

        cursors = [device.profiler.mark() for device in group]
        t0 = group.align()

        # Exchange phase: shuffle joins whose stored layout differs from
        # the join key move fact rows peer-to-peer before any scan runs.
        exchange_seconds = 0.0
        exchange_bytes = 0
        if mode == "shuffle" and effective_spec != self.partition:
            reshard = self._reshard_shuffle(sharded, effective_spec, n)
            exchange_seconds = reshard.run(group, label=f"reshard:{sharded}")
            exchange_bytes = reshard.total_bytes

        # Per-device partial plans.  Devices whose shard is empty sit the
        # query out (unless every shard is empty — then device 0 runs the
        # degenerate plan exactly like the serial executor would).
        participants = [
            i for i in range(n) if shards.shard_table(sharded, i).num_rows > 0
        ] or [0]
        per_plan = (
            _chunk_plan(decision.inner) if decision.keyed else decision.inner
        )
        partials: List[Table] = []
        shard_reports: List[ShardReport] = []
        for i in participants:
            sub = self._sub_executor(i, shards.device_catalog(i))
            result = sub.execute(per_plan, f"{result_name}.gpu{i}")
            partials.append(result.table)
            shard_reports.append(
                ShardReport(
                    device=i,
                    shard_rows=shards.shard_table(sharded, i).num_rows,
                    report=result.report,
                )
            )

        # Merge phase: partial aggregates meet over the interconnect.
        partial_bytes = [0] * n
        for i, table in zip(participants, partials):
            partial_bytes[i] = table.nbytes
        if self.merge == "gather":
            root = participants[0]
            merge_bytes = sum(
                b for i, b in enumerate(partial_bytes) if i != root
            )
            merge_seconds = Gather(
                tuple(partial_bytes), root=root
            ).run(group, label="merge:gather")
        else:
            merge_seconds = AllReduce(max(partial_bytes)).run(
                group, label="merge:all_reduce"
            )
            merge_bytes = max(partial_bytes) * _all_reduce_sends(n)
        makespan = group.synchronize() - t0

        # Host combine — same machinery as the chunked-scan path, so the
        # distributed result matches it (and the whole-table path) up to
        # float summation order.
        if decision.keyed:
            combined = _combine_keyed_groups(
                decision.inner, partials, result_name
            )
            combined = _apply_wrappers(
                combined, list(decision.wrappers), result_name
            )
        else:
            combined = _combine_aggregates(
                decision.inner, partials, result_name
            )

        if any(isinstance(node, Join) for node in walk(decision.inner)):
            strategy = "shuffle_join" if mode == "shuffle" else "broadcast_join"
        else:
            strategy = "partition_parallel"
        summary = merge_summaries(
            [
                device.profiler.summary(since=cursor)
                for device, cursor in zip(group, cursors)
            ]
        )
        report = DistributedReport(
            backend=self.backend_name,
            num_devices=n,
            strategy=strategy,
            partition=str(self.partition),
            makespan_seconds=makespan,
            exchange_seconds=exchange_seconds,
            exchange_bytes=exchange_bytes,
            merge_mode=self.merge,
            merge_seconds=merge_seconds,
            merge_bytes=merge_bytes,
            reason="",
            per_device=tuple(shard_reports),
            summary=summary,
            exchange_choice=choice,
        )
        return DistributedResult(table=combined, report=report)

    def _reshard_shuffle(
        self, sharded: str, new_spec: PartitionSpec, n: int
    ) -> Shuffle:
        """Movement matrix from the stored layout to ``new_spec``."""
        table = self.catalog[sharded]
        old = partition_indices(table, self.partition, n)
        new = partition_indices(table, new_spec, n)
        assignment = np.zeros(table.num_rows, dtype=np.int64)
        for dst, indices in enumerate(new):
            assignment[indices] = dst
        counts = [
            [
                int(np.count_nonzero(assignment[indices] == dst))
                for dst in range(n)
            ]
            for indices in old
        ]
        row_bytes = table.nbytes / max(1, table.num_rows)
        return Shuffle.from_matrix(movement_matrix(counts, row_bytes))


def _all_reduce_sends(n: int) -> int:
    """Per-device send count of the recursive-doubling all-reduce."""
    sends = 0
    distance = 1
    while distance < n:
        sends += 1
        distance *= 2
    return sends
