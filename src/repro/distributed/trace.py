"""Chrome-trace export for a whole device group.

Single-device traces put every track under one implicit process (pid 0).
A multi-GPU run maps naturally onto Chrome's process/thread hierarchy
instead: each device becomes its own *process* row (``pid`` = device
index, named ``gpu<i> (<spec>)``), with the usual engine tracks as
threads beneath it and peer copies (D2D) on their own track.  Loading
the merged file at ``chrome://tracing`` or https://ui.perfetto.dev shows
the per-device timelines stacked, which is where scan overlap across
devices and exchange serialisation become visible.

Output is deterministic for a given group state: devices in group order,
metadata rows before events, fixed field order — so merged traces can be
diffed across runs (the determinism tests rely on this).
"""

from __future__ import annotations

import json

from repro.gpu.profiler import to_chrome_trace, track_metadata
from repro.gpu.topology import DeviceGroup


def group_chrome_trace_json(group: DeviceGroup, indent: int = 1) -> str:
    """Render every device's events as one merged Chrome-trace document."""
    rows = []
    for pid, device in enumerate(group):
        events = device.profiler.events
        rows.extend(
            track_metadata(
                events,
                pid=pid,
                process_name=f"gpu{pid} ({device.spec.name})",
            )
        )
        rows.extend(to_chrome_trace(events, pid=pid))
    document = {
        "traceEvents": rows,
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, indent=indent)


def write_group_chrome_trace(path: str, group: DeviceGroup) -> None:
    """Write :func:`group_chrome_trace_json` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(group_chrome_trace_json(group))
        handle.write("\n")
