"""Exchange operators: pricing data movement across a device group.

Four operators cover the movement patterns of distributed query plans.
Each is a small description object whose :meth:`run` prices the pattern's
peer copies on a :class:`~repro.gpu.topology.DeviceGroup` — contention
(shared copy engines, per-pair channels) falls out of the topology layer,
so a broadcast from one device serialises on that device's D2H engine
while shuffles between disjoint pairs overlap.

* :class:`Broadcast` — one origin device sends a full copy to every other
  device; cost grows with ``(N - 1) * bytes``.
* :class:`Shuffle` — an all-to-all redistribution described by a movement
  matrix (``moved[src][dst]`` bytes); each source's sends serialise on
  its engine, different sources overlap.
* :class:`Gather` — every device sends its (small) partial result to one
  root device.
* :class:`AllReduce` — recursive-doubling partial-aggregate merge: in
  round ``r`` devices at distance ``2^r`` exchange partials, ``ceil(log2
  N)`` rounds total.  Numerically the host still folds the partials the
  same way — the operator only prices the interconnect pattern.

:func:`choose_exchange` is the cost model that picks broadcast vs shuffle
for a distributed join, mirroring how the single-device optimizer picks
join algorithms: estimate both patterns' wall time from link parameters,
take the cheaper.  The decision flips with the build side's size — small
builds broadcast, large builds shuffle — which is the classic distributed
join crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.gpu.topology import DeviceGroup

#: Exchange modes a distributed join can use.
EXCHANGE_MODES = ("broadcast", "shuffle")


@dataclass(frozen=True)
class Broadcast:
    """Replicate ``nbytes`` from ``origin`` to every other device."""

    nbytes: int
    origin: int = 0

    def run(self, group: DeviceGroup, label: str = "broadcast") -> float:
        if len(group) <= 1 or self.nbytes <= 0:
            return 0.0
        t0 = group.now()
        for dst in range(len(group)):
            if dst != self.origin:
                group.copy_d2d(self.origin, dst, self.nbytes, label=label)
        return group.now() - t0


@dataclass(frozen=True)
class Shuffle:
    """All-to-all redistribution: ``moved[src][dst]`` bytes per pair."""

    moved: Tuple[Tuple[int, ...], ...]

    @classmethod
    def from_matrix(cls, moved: Sequence[Sequence[int]]) -> "Shuffle":
        return cls(tuple(tuple(int(b) for b in row) for row in moved))

    @property
    def total_bytes(self) -> int:
        return sum(
            b for src, row in enumerate(self.moved)
            for dst, b in enumerate(row) if src != dst
        )

    def run(self, group: DeviceGroup, label: str = "shuffle") -> float:
        if len(group) <= 1 or self.total_bytes <= 0:
            return 0.0
        t0 = group.now()
        for src, row in enumerate(self.moved):
            for dst, nbytes in enumerate(row):
                if src != dst and nbytes > 0:
                    group.copy_d2d(src, dst, nbytes, label=label)
        return group.now() - t0


@dataclass(frozen=True)
class Gather:
    """Collect per-device partials (``nbytes[i]`` from device i) at the
    root; the root's own partial does not move."""

    nbytes: Tuple[int, ...]
    root: int = 0

    def run(self, group: DeviceGroup, label: str = "gather") -> float:
        if len(group) <= 1:
            return 0.0
        t0 = group.now()
        for src, nbytes in enumerate(self.nbytes):
            if src != self.root and nbytes > 0:
                group.copy_d2d(src, self.root, nbytes, label=label)
        return group.now() - t0


@dataclass(frozen=True)
class AllReduce:
    """Recursive-doubling merge of equal-sized partials (``nbytes`` each).

    Round ``r`` pairs device ``i`` with ``i XOR 2^r`` (when both exist);
    each pair exchanges partials in both directions.  After ``ceil(log2
    N)`` rounds every device holds the merged aggregate.
    """

    nbytes: int

    def run(self, group: DeviceGroup, label: str = "all_reduce") -> float:
        n = len(group)
        if n <= 1 or self.nbytes <= 0:
            return 0.0
        t0 = group.now()
        distance = 1
        while distance < n:
            for i in range(n):
                peer = i ^ distance
                if peer < n and i < peer:
                    group.copy_d2d(i, peer, self.nbytes, label=label)
                    group.copy_d2d(peer, i, self.nbytes, label=label)
            # Rounds are bulk-synchronous: everyone finishes exchanging
            # before the next doubling.
            group.align()
            distance *= 2
        return group.now() - t0


# -- broadcast-vs-shuffle cost model ----------------------------------------


@dataclass(frozen=True)
class ExchangeChoice:
    """Outcome of the broadcast-vs-shuffle decision for one join."""

    mode: str
    broadcast_cost: float
    shuffle_cost: float
    #: Bytes the chosen pattern moves over the interconnect.
    moved_bytes: int
    #: True when shuffle must first re-partition the fact side onto the
    #: join key (stored partitioning differs from the join column).
    reshard_required: bool


def choose_exchange(
    group: DeviceGroup,
    build_bytes: int,
    fact_bytes: int,
    reshard_required: bool,
) -> ExchangeChoice:
    """Pick broadcast or shuffle for a distributed hash join.

    ``build_bytes`` is the build side's referenced payload, ``fact_bytes``
    the (sharded) fact side's.  Broadcast replicates the whole build side
    to every device; shuffle hash-partitions it instead, sending each
    device only its ``1/N`` slice, but must additionally re-partition the
    fact side onto the join key when the stored layout does not already
    colocate it (``reshard_required``).  Costs are modelled wall times of
    the two patterns — per-device sends serialise on the origin's copy
    engine, matching how :meth:`Broadcast.run`/:meth:`Shuffle.run` price
    the real copies.
    """
    n = len(group)
    if n <= 1:
        return ExchangeChoice("broadcast", 0.0, 0.0, 0, reshard_required)
    broadcast_cost = (n - 1) * group.d2d_time(build_bytes)
    # Shuffle: the origin sends N-1 slices of B/N; the fact reshard is an
    # all-to-all where each device sends (N-1) slices of F/N^2 — both
    # serialise on their origin engines.
    shuffle_cost = (n - 1) * group.d2d_time(build_bytes // n)
    fact_moved = 0
    if reshard_required:
        per_pair = fact_bytes // (n * n)
        shuffle_cost += (n - 1) * group.d2d_time(per_pair)
        fact_moved = fact_bytes * (n - 1) // n
    if broadcast_cost <= shuffle_cost:
        return ExchangeChoice(
            "broadcast", broadcast_cost, shuffle_cost,
            (n - 1) * build_bytes, reshard_required,
        )
    return ExchangeChoice(
        "shuffle", broadcast_cost, shuffle_cost,
        build_bytes * (n - 1) // n + fact_moved, reshard_required,
    )


def movement_matrix(
    old_assignment: Sequence[Sequence[int]],
    row_bytes: float,
) -> List[List[int]]:
    """Shuffle matrix from per-shard movement counts.

    ``old_assignment[src][dst]`` is the number of rows currently on shard
    ``src`` that the new partitioning sends to ``dst``; ``row_bytes`` is
    the average payload per row.  Diagonal entries (rows that stay put)
    are zeroed.
    """
    matrix: List[List[int]] = []
    for src, row in enumerate(old_assignment):
        matrix.append([
            0 if src == dst else int(round(count * row_bytes))
            for dst, count in enumerate(row)
        ])
    return matrix
