"""Tiered compressed column store: device -> host -> simulated NVMe.

Columns ingested into a :class:`TieredColumnStore` are split into row
chunks, each compressed by the codec chooser, and placed on one of three
tiers.  Every tier move prices the *compressed* bytes on the matching
link — promotions to the device pay an H2D transfer on the PCIe link,
spills pay a D2H transfer, and the host <-> NVMe leg pays a blocking
host I/O on the (much slower) NVMe link — so the effective interconnect
bandwidth seen by a scan rises with the compression ratio.  On arrival
at the device a chunk is decompressed by a simulated decode kernel
before the scan consumes it.

Consistency under faults: a spill charges its D2H transfer *before*
releasing the device buffer, and a promote frees its freshly allocated
buffer when the H2D transfer faults — so an injected
:class:`~repro.errors.TransferError` at any point leaves every chunk
resident and re-fetchable on its previous tier, with no double-free.

The store registers a pressure callback with the device's memory
manager: under allocation pressure it spills cold (LRU, pin-aware)
chunks down-tier instead of failing, which is what turns the OOM cliff
into graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import TransferError
from repro.gpu.device import Device
from repro.gpu.kernel import TUNED_PROFILE, EfficiencyProfile
from repro.gpu.memory import DeviceBuffer
from repro.gpu.transfer import NVME_SSD, LinkSpec
from repro.relational.table import Table
from repro.storage.chooser import encode_best
from repro.storage.codecs import (
    EncodedColumn,
    batch_decode_cost,
    decode,
    encode_cost,
)

#: Tier names, fastest first.
TIER_DEVICE = "device"
TIER_HOST = "host"
TIER_NVME = "nvme"
TIERS = (TIER_DEVICE, TIER_HOST, TIER_NVME)

#: Default rows per compressed chunk.
CHUNK_ROWS = 65536


@dataclass
class _Chunk:
    """One compressed row range of one column, resident on one tier."""

    table: str
    column: str
    lo: int
    hi: int
    encoded: EncodedColumn
    tier: str = TIER_HOST
    buffer: Optional[DeviceBuffer] = None  # live iff tier == device
    tick: int = 0
    pins: int = 0

    @property
    def compressed_nbytes(self) -> int:
        return self.encoded.compressed_nbytes

    @property
    def raw_nbytes(self) -> int:
        return self.encoded.raw_nbytes


@dataclass
class StoreStats:
    """Counters for spills/promotes and the compression win."""

    columns: int = 0
    chunks: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    tier_bytes: Dict[str, int] = field(default_factory=dict)
    fetches: int = 0
    decoded_bytes: int = 0
    promotes: int = 0
    promoted_raw_bytes: int = 0
    promoted_compressed_bytes: int = 0
    spills: int = 0
    spilled_bytes: int = 0
    nvme_reads: int = 0
    nvme_read_bytes: int = 0
    nvme_writes: int = 0
    nvme_write_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Whole-store raw/compressed ratio."""
        return self.raw_bytes / max(self.compressed_bytes, 1)

    @property
    def effective_bandwidth_gain(self) -> float:
        """Raw bytes delivered per compressed byte moved over PCIe.

        This is the factor by which compression multiplied the
        interconnect's effective bandwidth for the promoted working set
        (1.0 when nothing promoted or nothing compressed).
        """
        if self.promoted_compressed_bytes <= 0:
            return 1.0
        return self.promoted_raw_bytes / self.promoted_compressed_bytes

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (serve metrics, benchmarks)."""
        return {
            "columns": self.columns,
            "chunks": self.chunks,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "compression_ratio": round(self.compression_ratio, 3),
            "tier_bytes": dict(self.tier_bytes),
            "fetches": self.fetches,
            "decoded_bytes": self.decoded_bytes,
            "promotes": self.promotes,
            "promoted_raw_bytes": self.promoted_raw_bytes,
            "promoted_compressed_bytes": self.promoted_compressed_bytes,
            "effective_bandwidth_gain": round(
                self.effective_bandwidth_gain, 3
            ),
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "nvme_reads": self.nvme_reads,
            "nvme_read_bytes": self.nvme_read_bytes,
            "nvme_writes": self.nvme_writes,
            "nvme_write_bytes": self.nvme_write_bytes,
        }


class TieredColumnStore:
    """Compressed, chunked, three-tier column storage for one device.

    ``device_budget`` caps the compressed bytes the store keeps resident
    on the device (None = bounded only by memory pressure);
    ``host_budget`` caps the host tier, with overflow demoted to the
    simulated NVMe tier over ``nvme_link``.
    """

    def __init__(
        self,
        device: Device,
        *,
        device_budget: Optional[int] = None,
        host_budget: Optional[int] = None,
        chunk_rows: int = CHUNK_ROWS,
        nvme_link: LinkSpec = NVME_SSD,
        profile: EfficiencyProfile = TUNED_PROFILE,
        price_encode: bool = True,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive: {chunk_rows}")
        self.device = device
        self.device_budget = device_budget
        self.host_budget = host_budget
        self.chunk_rows = chunk_rows
        self.nvme_link = nvme_link
        self.profile = profile
        self.price_encode = price_encode
        self._columns: Dict[Tuple[str, str], List[_Chunk]] = {}
        self._tick = 0
        self._device_bytes = 0
        self._host_bytes = 0
        self.stats = StoreStats()
        self._closed = False
        device.memory.register_pressure_callback(self._pressure_spill)

    # -- ingest ------------------------------------------------------------

    def ingest_table(
        self, table: Table, columns: Optional[Iterable[str]] = None
    ) -> None:
        """Encode and adopt ``table``'s columns (host tier initially)."""
        names = list(columns) if columns is not None else table.column_names
        for name in names:
            self.ingest_column(table.name, name, table.column(name).data)

    def ingest_column(
        self, table: str, column: str, values: np.ndarray
    ) -> None:
        """Encode ``values`` into row chunks and adopt them."""
        key = (table, column)
        if key in self._columns:
            raise ValueError(f"column {table}.{column} already ingested")
        chunks: List[_Chunk] = []
        # Register before encoding so the host-budget sweep can demote
        # this column's own chunks while they are still streaming in.
        self._columns[key] = chunks
        n = len(values)
        for lo in range(0, max(n, 1), self.chunk_rows):
            hi = min(lo + self.chunk_rows, n)
            encoded = encode_best(values[lo:hi])
            if self.price_encode:
                self.device.launch(encode_cost(encoded), self.profile)
            chunk = _Chunk(
                table=table, column=column, lo=lo, hi=hi, encoded=encoded,
                tier=TIER_HOST, tick=self._bump(),
            )
            chunks.append(chunk)
            self._host_bytes += chunk.compressed_nbytes
            self.stats.chunks += 1
            self.stats.raw_bytes += chunk.raw_nbytes
            self.stats.compressed_bytes += chunk.compressed_nbytes
            self._enforce_host_budget()
        self.stats.columns += 1

    # -- queries -----------------------------------------------------------

    def manages(self, table: str, column: str) -> bool:
        """Whether fetches for this column should go through the store."""
        return (table, column) in self._columns

    def managed_tables(self) -> List[str]:
        """Names of tables with at least one managed column."""
        return sorted({table for table, _column in self._columns})

    def table_compressed_nbytes(self, table: str) -> int:
        """Compressed footprint of all managed columns of ``table``."""
        return sum(
            chunk.compressed_nbytes
            for (t, _c), chunks in self._columns.items() if t == table
            for chunk in chunks
        )

    def column_codecs(self, table: str) -> Dict[str, str]:
        """Chosen codec per managed column (first chunk's pick)."""
        return {
            column: chunks[0].encoded.codec
            for (t, column), chunks in sorted(self._columns.items())
            if t == table and chunks
        }

    def tier_bytes(self) -> Dict[str, int]:
        """Current compressed bytes resident per tier."""
        totals = {tier: 0 for tier in TIERS}
        for chunks in self._columns.values():
            for chunk in chunks:
                totals[chunk.tier] += chunk.compressed_nbytes
        return totals

    def snapshot_stats(self) -> StoreStats:
        """The counters with the tier occupancy filled in."""
        self.stats.tier_bytes = self.tier_bytes()
        return self.stats

    # -- fetch (promote + decode) -----------------------------------------

    def fetch(
        self,
        table: str,
        column: str,
        backend: Any,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ):
        """Materialise ``table.column[lo:hi]`` as a device handle.

        Covering chunks are promoted to the device tier (NVMe -> host
        I/O, host -> device H2D of *compressed* bytes), decoded by a
        simulated kernel, and the decoded rows are wrapped via the
        backend's materialise path (no raw-size H2D is charged — the
        raw bytes never cross the link).
        """
        return self.fetch_many(table, (column,), backend, lo, hi)[column]

    def fetch_many(
        self,
        table: str,
        columns: Iterable[str],
        backend: Any,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Materialise several columns' ``[lo, hi)`` rows in one batch.

        A scan fetches its whole managed column set through here: the
        covering chunks of every column promote in ONE H2D transfer and
        decompress in ONE batched kernel launch, so the fetch pays the
        link latency and the launch overhead once — not once per
        (column, chunk).  Semantics are identical to per-column
        :meth:`fetch` calls; only the fixed costs are amortised.
        """
        names = list(columns)
        covers: Dict[str, List[_Chunk]] = {}
        spans: Dict[str, Tuple[int, int]] = {}
        all_cover: List[_Chunk] = []
        for column in names:
            chunks = self._columns[(table, column)]
            total = chunks[-1].hi if chunks else 0
            clo = 0 if lo is None else lo
            chi = total if hi is None else hi
            cover = [c for c in chunks if c.lo < chi and c.hi > clo]
            covers[column] = cover
            spans[column] = (clo, chi)
            all_cover.extend(cover)
        for chunk in all_cover:
            chunk.pins += 1
        try:
            self._promote_batch(all_cover)
            if all_cover:
                self.device.launch(
                    batch_decode_cost([c.encoded for c in all_cover]),
                    self.profile,
                )
            out: Dict[str, Any] = {}
            for column in names:
                clo, chi = spans[column]
                parts: List[np.ndarray] = []
                for chunk in covers[column]:
                    data = decode(chunk.encoded)
                    parts.append(data[max(clo - chunk.lo, 0):chi - chunk.lo])
                    chunk.tick = self._bump()
                if not parts:
                    dtype = self._columns[(table, column)][0].encoded.dtype
                    values = np.empty(0, dtype=dtype)
                elif len(parts) == 1:
                    values = parts[0]
                else:
                    values = np.concatenate(parts)
                self.stats.fetches += 1
                self.stats.decoded_bytes += int(values.nbytes)
                out[column] = self._materialize(
                    backend, values, f"{table}.{column}"
                )
        finally:
            for chunk in all_cover:
                chunk.pins -= 1
        return out

    def _materialize(self, backend: Any, values: np.ndarray, label: str):
        """Wrap decoded rows as a device handle without an H2D charge."""
        wrap = getattr(backend, "_wrap", None)
        if wrap is not None:
            return wrap(values, label)
        runtime = getattr(backend, "runtime", None)
        if runtime is not None:
            # ArrayFire's runtime wraps device-side results as Arrays;
            # raw runtime._materialize storage would not be a Handle.
            from_result = getattr(runtime, "from_result", None)
            if from_result is not None:
                return from_result(values, label)
            if hasattr(runtime, "_materialize"):
                return runtime._materialize(values, label)
        return backend.upload(values, label)

    # -- tier movement -----------------------------------------------------

    def _bump(self) -> int:
        self._tick += 1
        return self._tick

    def _label(self, op: str, chunk: _Chunk) -> str:
        return f"storage:{op}:{chunk.table}.{chunk.column}"

    def _promote_batch(self, cover: List[_Chunk]) -> None:
        """Promote every non-device chunk in ``cover``, batching each leg.

        The NVMe reads coalesce into one sequential read and the host ->
        device moves into one H2D transfer (one staging copy), so a fetch
        pays each link's fixed latency once however many chunks it
        covers.  Faults keep the all-or-nothing guarantee: a failed H2D
        frees every freshly allocated buffer and leaves every chunk on
        its previous tier.
        """
        nvme = [c for c in cover if c.tier == TIER_NVME]
        if nvme:
            total = sum(c.compressed_nbytes for c in nvme)
            self.device.host_io(
                total, "storage:nvme-read:batch", link=self.nvme_link
            )
            for chunk in nvme:
                chunk.tier = TIER_HOST
                self._host_bytes += chunk.compressed_nbytes
                self.stats.nvme_reads += 1
                self.stats.nvme_read_bytes += chunk.compressed_nbytes
        host = [c for c in cover if c.tier == TIER_HOST]
        if not host:
            return
        total = sum(c.compressed_nbytes for c in host)
        if self.device_budget is not None:
            while (
                self._device_bytes + total > self.device_budget
                and self._spill_coldest() is not None
            ):
                pass
        buffers: List[DeviceBuffer] = []
        try:
            for chunk in host:
                buffers.append(
                    self.device.allocate(
                        chunk.compressed_nbytes, self._label("chunk", chunk)
                    )
                )
            self.device.transfer_to_device(
                total, "storage:promote:batch"
            )
        except Exception:
            # Allocation failure or transfer fault: release whatever was
            # freshly allocated; every chunk is still host-resident.
            for buffer in buffers:
                self.device.free(buffer)
            raise
        for chunk, buffer in zip(host, buffers):
            chunk.buffer = buffer
            chunk.tier = TIER_DEVICE
            self._host_bytes -= chunk.compressed_nbytes
            self._device_bytes += chunk.compressed_nbytes
            self.stats.promotes += 1
            self.stats.promoted_raw_bytes += chunk.raw_nbytes
            self.stats.promoted_compressed_bytes += chunk.compressed_nbytes

    def _spill_chunk(self, chunk: _Chunk) -> int:
        """Device -> host: charge the D2H transfer, then release.

        The transfer is charged *before* the buffer is released so an
        injected fault leaves the chunk fully resident on the device —
        no partial state, no double-free on retry.
        """
        nbytes = chunk.compressed_nbytes
        self.device.transfer_to_host(nbytes, self._label("spill", chunk))
        assert chunk.buffer is not None
        self.device.free(chunk.buffer)
        chunk.buffer = None
        chunk.tier = TIER_HOST
        self._device_bytes -= nbytes
        self._host_bytes += nbytes
        self.stats.spills += 1
        self.stats.spilled_bytes += nbytes
        self._enforce_host_budget()
        return nbytes

    def _demote_chunk(self, chunk: _Chunk) -> int:
        """Host -> NVMe: charge the blocking storage write."""
        nbytes = chunk.compressed_nbytes
        self.device.host_io(
            nbytes, self._label("nvme-write", chunk), link=self.nvme_link
        )
        chunk.tier = TIER_NVME
        self._host_bytes -= nbytes
        self.stats.nvme_writes += 1
        self.stats.nvme_write_bytes += nbytes
        return nbytes

    def _lru_chunks(self, tier: str) -> List[_Chunk]:
        """Unpinned chunks on ``tier``, coldest first."""
        victims = [
            chunk
            for chunks in self._columns.values()
            for chunk in chunks
            if chunk.tier == tier and chunk.pins == 0
        ]
        victims.sort(key=lambda chunk: chunk.tick)
        return victims

    def _spill_coldest(self) -> Optional[int]:
        """Spill the coldest unpinned device chunk; None when pinned out."""
        victims = self._lru_chunks(TIER_DEVICE)
        if not victims:
            return None
        return self._spill_chunk(victims[0])

    def _enforce_host_budget(self) -> None:
        if self.host_budget is None:
            return
        while self._host_bytes > self.host_budget:
            victims = self._lru_chunks(TIER_HOST)
            if not victims:
                return
            self._demote_chunk(victims[0])

    def _pressure_spill(self, nbytes_needed: int) -> int:
        """Memory-pressure callback: spill cold chunks down-tier.

        Returns the device bytes released.  A transfer fault mid-spill
        aborts the relief round (the store stays consistent; the failed
        chunk is still resident on the device), letting the allocation
        fail over to the normal OOM path.
        """
        freed = 0
        while freed < nbytes_needed:
            try:
                released = self._spill_coldest()
            except TransferError:
                break
            if released is None:
                break
            freed += released
        return freed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release device residency and detach from the device
        (idempotent); host/NVMe records stay readable for reuse."""
        if self._closed:
            return
        self._closed = True
        self.device.memory.unregister_pressure_callback(self._pressure_spill)
        for chunks in self._columns.values():
            for chunk in chunks:
                if chunk.tier == TIER_DEVICE and chunk.buffer is not None:
                    self.device.free(chunk.buffer)
                    chunk.buffer = None
                    chunk.tier = TIER_HOST
                    self._device_bytes -= chunk.compressed_nbytes
                    self._host_bytes += chunk.compressed_nbytes

    def __enter__(self) -> "TieredColumnStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class StoreSlice:
    """A row-range view of a store for chunked sub-executors.

    Fetches for ``table`` are clamped to ``[lo, hi)`` — the sub-executor
    sees a sliced catalog table, and this view makes the store promote
    only the covering chunks (the compressed footprint of one chunk of
    work), while other tables pass through unclamped.
    """

    def __init__(
        self, store: TieredColumnStore, table: str, lo: int, hi: int
    ) -> None:
        self._store = store
        self._table = table
        self._lo = lo
        self._hi = hi

    def manages(self, table: str, column: str) -> bool:
        return self._store.manages(table, column)

    def fetch(self, table: str, column: str, backend: Any):
        if table == self._table:
            return self._store.fetch(
                table, column, backend, self._lo, self._hi
            )
        return self._store.fetch(table, column, backend)

    def fetch_many(
        self, table: str, columns: Iterable[str], backend: Any
    ) -> Dict[str, Any]:
        if table == self._table:
            return self._store.fetch_many(
                table, columns, backend, self._lo, self._hi
            )
        return self._store.fetch_many(table, columns, backend)
