"""Per-column codec selection from sampled statistics.

The chooser reads a small deterministic strided sample (default 1024
rows), estimates cardinality, mean run length, and the used bit range,
prices each codec's size from those estimates, and picks the smallest.
The estimate only steers the choice — after actually encoding, the pick
is discarded for ``plain`` whenever it failed to beat the raw size, so
``encode_best`` guarantees ``compressed <= raw + HEADER_BYTES``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.storage.codecs import (
    HEADER_BYTES,
    EncodedColumn,
    _bit_view,
    encode,
)

#: Default sample size for the statistics pass.
SAMPLE_ROWS = 1024


@dataclass(frozen=True)
class ColumnStats:
    """Sampled statistics driving codec selection."""

    rows: int
    sampled: int
    distinct: int  # distinct bit patterns in the sample
    mean_run_length: float  # mean run length within the sample
    delta_bits: int  # bit width of (max - min) over the sample
    itemsize: int


def sample_stats(values: np.ndarray, sample: int = SAMPLE_ROWS) -> ColumnStats:
    """Deterministic strided sample; no RNG so runs are repeatable."""
    n = len(values)
    if n == 0:
        return ColumnStats(0, 0, 0, 1.0, 0, values.dtype.itemsize)
    stride = max(n // sample, 1)
    picked = np.ascontiguousarray(values[::stride][:sample])
    bits = _bit_view(picked).astype(np.uint64)
    distinct = len(np.unique(bits))
    if len(bits) > 1:
        runs = 1 + int(np.count_nonzero(bits[1:] != bits[:-1]))
    else:
        runs = 1
    delta = int(bits.max() - bits.min())
    return ColumnStats(
        rows=n,
        sampled=len(picked),
        distinct=distinct,
        mean_run_length=len(picked) / runs,
        delta_bits=delta.bit_length(),
        itemsize=values.dtype.itemsize,
    )


def estimate_sizes(stats: ColumnStats) -> Dict[str, float]:
    """Estimated stored bytes per codec from the sampled statistics.

    A strided sample breaks up runs, so the run-length seen there is a
    conservative (under-)estimate — good: RLE is only picked when runs
    are long enough to survive striding.  Cardinality extrapolates the
    sampled distinct count; when the sample is all-distinct the column
    is assumed all-distinct.
    """
    n, itemsize = stats.rows, stats.itemsize
    raw = n * itemsize
    sizes: Dict[str, float] = {"plain": raw + HEADER_BYTES}
    if n == 0 or stats.sampled == 0:
        return sizes
    runs = n / stats.mean_run_length
    sizes["rle"] = runs * (itemsize + 4) + HEADER_BYTES
    if stats.distinct >= stats.sampled:
        distinct = n  # sample saturated: assume all-distinct
    else:
        distinct = stats.distinct
    code_width = max(int(distinct - 1).bit_length(), 0)
    sizes["dict"] = distinct * itemsize + n * code_width / 8 + HEADER_BYTES
    # The sample can miss the true extremes, so leave headroom: a value
    # outside the sampled range still fits after one extra bit.
    pack_width = min(stats.delta_bits + 1, itemsize * 8)
    sizes["bitpack"] = n * pack_width / 8 + HEADER_BYTES
    return sizes


def choose_codec(values: np.ndarray, sample: int = SAMPLE_ROWS) -> str:
    """The codec with the smallest estimated stored size."""
    sizes = estimate_sizes(sample_stats(values, sample))
    return min(sizes, key=lambda codec: (sizes[codec], codec))


def encode_best(values: np.ndarray, sample: int = SAMPLE_ROWS) -> EncodedColumn:
    """Encode with the chooser's pick, falling back to ``plain``.

    The fallback runs on *measured* sizes, so the result never exceeds
    ``raw + HEADER_BYTES`` even when the sample misled the estimate.
    """
    pick = choose_codec(values, sample)
    encoded = encode(values, pick)
    if pick != "plain":
        plain_bytes = len(values) * values.dtype.itemsize + HEADER_BYTES
        if encoded.compressed_nbytes > plain_bytes:
            encoded = encode(values, "plain")
    return encoded
