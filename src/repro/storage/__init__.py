"""Compressed columnar storage with tiered (device/host/NVMe) residency.

See DESIGN.md ("Compressed storage and tier pricing"): codecs encode
columns bit-exactly, a sampled chooser picks the smallest, and the
:class:`TieredColumnStore` moves compressed chunks between tiers priced
on the simulated links — the engine's larger-than-memory path.
"""

from repro.storage.chooser import (
    SAMPLE_ROWS,
    ColumnStats,
    choose_codec,
    encode_best,
    estimate_sizes,
    sample_stats,
)
from repro.storage.codecs import (
    CODECS,
    HEADER_BYTES,
    EncodedColumn,
    batch_decode_cost,
    codec_summary,
    decode,
    decode_cost,
    encode,
    encode_cost,
)
from repro.storage.tiered import (
    CHUNK_ROWS,
    TIER_DEVICE,
    TIER_HOST,
    TIER_NVME,
    TIERS,
    StoreSlice,
    StoreStats,
    TieredColumnStore,
)

__all__ = [
    "CODECS",
    "HEADER_BYTES",
    "EncodedColumn",
    "batch_decode_cost",
    "codec_summary",
    "decode",
    "decode_cost",
    "encode",
    "encode_cost",
    "SAMPLE_ROWS",
    "ColumnStats",
    "choose_codec",
    "encode_best",
    "estimate_sizes",
    "sample_stats",
    "CHUNK_ROWS",
    "TIER_DEVICE",
    "TIER_HOST",
    "TIER_NVME",
    "TIERS",
    "StoreSlice",
    "StoreStats",
    "TieredColumnStore",
]
