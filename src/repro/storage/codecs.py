"""Lightweight columnar compression codecs for the tiered store.

Three classic database codecs — run-length encoding, dictionary
encoding, and frame-of-reference bit-packing — plus a ``plain``
passthrough.  All of them operate on the column's *bit pattern* (an
unsigned view of the same item size), which makes the round trip
bit-exact for every dtype including floats with NaNs: two values are a
"run" or share a dictionary slot iff their bit patterns are identical,
and frame-of-reference arithmetic over unsigned bit patterns restores
them exactly.

Encode/decode are *simulated kernels*: :func:`encode_cost` and
:func:`decode_cost` describe the work to the device's roofline model so
the virtual clock pays for compression exactly like it pays for any
other operator.  Decompression reads the compressed bytes and writes the
raw bytes, so a high-ratio column decodes in close to ``raw /
dram_bandwidth`` — the on-device half of the "compression raises
effective interconnect bandwidth" argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.gpu.kernel import KernelCost

#: Fixed per-encoded-column metadata footprint (codec tag, dtype, row
#: count, payload widths) charged against every codec including plain —
#: so "compressed never exceeds raw + header" is a meaningful invariant.
HEADER_BYTES = 32

#: Codec names, in chooser preference order for size ties.
CODECS = ("plain", "rle", "dict", "bitpack")

_UINT_BY_ITEMSIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _bit_view(values: np.ndarray) -> np.ndarray:
    """The column reinterpreted as unsigned integers of the same width.

    Bitwise equality over this view is exact for every dtype (NaN == NaN
    at the bit level), which is what run detection and dictionary
    building need.
    """
    dtype = _UINT_BY_ITEMSIZE.get(values.dtype.itemsize)
    if dtype is None:
        raise ValueError(f"unsupported item size: {values.dtype}")
    return np.ascontiguousarray(values).view(dtype)


def _pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack ``values`` (non-negative uint64, all < 2**width) into a
    little-endian ``width``-bit stream stored as uint8."""
    if width == 0 or values.size == 0:
        return np.empty(0, dtype=np.uint8)
    shifts = np.arange(width, dtype=np.uint64)
    bits = (values[:, None] >> shifts) & np.uint64(1)
    return np.packbits(bits.astype(np.uint8), bitorder="little")


def _unpack_bits(packed: np.ndarray, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`: recover ``count`` uint64 values."""
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    bits = np.unpackbits(packed, count=count * width, bitorder="little")
    bits = bits.reshape(count, width).astype(np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return (bits << shifts).sum(axis=1, dtype=np.uint64)


@dataclass(frozen=True)
class EncodedColumn:
    """One column (or row-chunk of a column) in compressed form.

    ``payload`` holds the codec's arrays; what each slot means is
    codec-specific (documented on the encoder).  ``width`` is the packed
    bit width (dict codes / bitpack deltas); ``base`` the bitpack
    frame-of-reference, as the raw unsigned bit pattern.
    """

    codec: str
    n: int
    dtype: np.dtype
    payload: Tuple[np.ndarray, ...]
    width: int = 0
    base: int = 0

    @property
    def raw_nbytes(self) -> int:
        """Decoded size in bytes."""
        return self.n * self.dtype.itemsize

    @property
    def compressed_nbytes(self) -> int:
        """Stored size in bytes, header included."""
        return HEADER_BYTES + sum(int(a.nbytes) for a in self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio raw/compressed (<= 1.0 means it grew)."""
        return self.raw_nbytes / max(self.compressed_nbytes, 1)


def encode_plain(values: np.ndarray) -> EncodedColumn:
    """Passthrough: payload = (copy of the raw values,)."""
    return EncodedColumn(
        codec="plain", n=len(values), dtype=values.dtype,
        payload=(np.array(values, copy=True),),
    )


def encode_rle(values: np.ndarray) -> EncodedColumn:
    """Run-length: payload = (run values, int32 run lengths)."""
    n = len(values)
    if n == 0:
        return EncodedColumn(
            codec="rle", n=0, dtype=values.dtype,
            payload=(values[:0].copy(), np.empty(0, dtype=np.int32)),
        )
    bits = _bit_view(values)
    starts = np.flatnonzero(np.concatenate(([True], bits[1:] != bits[:-1])))
    lengths = np.diff(np.append(starts, n)).astype(np.int32)
    return EncodedColumn(
        codec="rle", n=n, dtype=values.dtype,
        payload=(np.array(values[starts], copy=True), lengths),
    )


def encode_dict(values: np.ndarray) -> EncodedColumn:
    """Dictionary: payload = (unique values, bit-packed codes)."""
    n = len(values)
    if n == 0:
        return EncodedColumn(
            codec="dict", n=0, dtype=values.dtype,
            payload=(values[:0].copy(), np.empty(0, dtype=np.uint8)),
        )
    bits = _bit_view(values)
    uniques, codes = np.unique(bits, return_inverse=True)
    width = max(int(len(uniques) - 1).bit_length(), 0)
    packed = _pack_bits(codes.astype(np.uint64), width)
    return EncodedColumn(
        codec="dict", n=n, dtype=values.dtype,
        payload=(uniques.view(values.dtype).copy(), packed),
        width=width,
    )


def encode_bitpack(values: np.ndarray) -> EncodedColumn:
    """Frame-of-reference bit-packing over the unsigned bit patterns:
    payload = (packed deltas,), ``base`` = min bit pattern."""
    n = len(values)
    if n == 0:
        return EncodedColumn(
            codec="bitpack", n=0, dtype=values.dtype,
            payload=(np.empty(0, dtype=np.uint8),),
        )
    bits = _bit_view(values).astype(np.uint64)
    base = int(bits.min())
    deltas = bits - np.uint64(base)
    width = int(deltas.max()).bit_length()
    packed = _pack_bits(deltas, width)
    return EncodedColumn(
        codec="bitpack", n=n, dtype=values.dtype,
        payload=(packed,), width=width, base=base,
    )


_ENCODERS = {
    "plain": encode_plain,
    "rle": encode_rle,
    "dict": encode_dict,
    "bitpack": encode_bitpack,
}


def encode(values: np.ndarray, codec: str) -> EncodedColumn:
    """Encode with a named codec."""
    try:
        encoder = _ENCODERS[codec]
    except KeyError:
        known = ", ".join(CODECS)
        raise ValueError(f"unknown codec {codec!r}; known: {known}")
    return encoder(values)


def decode(encoded: EncodedColumn) -> np.ndarray:
    """Exact inverse of :func:`encode` for every codec."""
    dtype = encoded.dtype
    uint = _UINT_BY_ITEMSIZE[dtype.itemsize]
    if encoded.codec == "plain":
        return np.array(encoded.payload[0], copy=True)
    if encoded.codec == "rle":
        run_values, lengths = encoded.payload
        if encoded.n == 0:
            return np.empty(0, dtype=dtype)
        return np.repeat(run_values, lengths)
    if encoded.codec == "dict":
        uniques, packed = encoded.payload
        codes = _unpack_bits(packed, encoded.n, encoded.width)
        if len(uniques) == 0:
            return np.empty(0, dtype=dtype)
        return np.array(uniques[codes.astype(np.int64)], copy=True)
    if encoded.codec == "bitpack":
        deltas = _unpack_bits(encoded.payload[0], encoded.n, encoded.width)
        bits = (deltas + np.uint64(encoded.base)).astype(uint)
        return bits.view(dtype).copy()
    raise ValueError(f"unknown codec {encoded.codec!r}")


#: Rough compute intensity per element by codec (shift/mask/gather work),
#: used to price the simulated encode/decode kernels.
_DECODE_FLOPS = {"plain": 0.0, "rle": 2.0, "dict": 3.0, "bitpack": 4.0}
_ENCODE_PASSES = {"plain": 1, "rle": 2, "dict": 3, "bitpack": 2}


def encode_cost(encoded: EncodedColumn) -> KernelCost:
    """Kernel cost of producing ``encoded`` from the raw column."""
    n = max(encoded.n, 1)
    return KernelCost(
        name=f"storage::encode_{encoded.codec}",
        elements=encoded.n,
        flops_per_element=_DECODE_FLOPS[encoded.codec] + 1.0,
        bytes_read_per_element=float(encoded.dtype.itemsize),
        bytes_written_per_element=encoded.compressed_nbytes / n,
        fixed_bytes=HEADER_BYTES,
        passes=_ENCODE_PASSES[encoded.codec],
    )


def decode_cost(encoded: EncodedColumn) -> KernelCost:
    """Kernel cost of decompressing ``encoded`` back to raw values.

    Reads the compressed bytes, writes the raw bytes: the memory-bound
    roofline makes high-ratio columns decode at a fraction of the raw
    scan cost, which is what tier promotion amortises against.
    """
    n = max(encoded.n, 1)
    return KernelCost(
        name=f"storage::decode_{encoded.codec}",
        elements=encoded.n,
        flops_per_element=_DECODE_FLOPS[encoded.codec],
        bytes_read_per_element=encoded.compressed_nbytes / n,
        bytes_written_per_element=float(encoded.dtype.itemsize),
        fixed_bytes=HEADER_BYTES,
    )


def batch_decode_cost(columns: Sequence[EncodedColumn]) -> KernelCost:
    """One kernel decompressing several chunks back-to-back.

    A fetch decodes all its covering chunks in a single batched launch —
    the per-launch fixed cost is paid once, which is what keeps small
    store chunks viable.  The cost is the aggregate of the per-chunk
    decode work, at the compute intensity of the heaviest codec present.
    """
    n = max(sum(e.n for e in columns), 1)
    compressed = sum(e.compressed_nbytes for e in columns)
    raw = sum(e.raw_nbytes for e in columns)
    flops = max((_DECODE_FLOPS[e.codec] for e in columns), default=0.0)
    return KernelCost(
        name="storage::decode_batch",
        elements=sum(e.n for e in columns),
        flops_per_element=flops,
        bytes_read_per_element=compressed / n,
        bytes_written_per_element=raw / n,
        fixed_bytes=HEADER_BYTES,
    )


def codec_summary(encoded: EncodedColumn) -> Dict[str, object]:
    """Small JSON-friendly description (benchmarks, serve metrics)."""
    return {
        "codec": encoded.codec,
        "rows": encoded.n,
        "raw_bytes": encoded.raw_nbytes,
        "compressed_bytes": encoded.compressed_nbytes,
        "ratio": round(encoded.ratio, 3),
    }
