"""Physical execution of logical plans on an operator backend.

The executor is backend-agnostic: it lowers each plan node onto the
:class:`~repro.core.backend.OperatorBackend` operator set (Table II), so a
query costs exactly what its operator composition costs on the chosen
library.  Columns are uploaded once per scan (only those the plan
references — column-store style) and every intermediate is a device
handle; the only downloads are scalar counts and the final result.
"""

from __future__ import annotations

import gc
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import Handle, Operator, OperatorBackend, SupportLevel
from repro.core.expr import ColRef, Expr, Lit
from repro.core.predicate import (
    And,
    Compare,
    CompareCols,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.errors import DeviceMemoryError, PlanError, UnsupportedOperatorError
from repro.gpu.profiler import ProfileSummary
from repro.query.optimizer import choose_join_algorithm
from repro.query.plan import (
    JOIN_ALGORITHMS,
    Aggregate,
    Filter,
    GroupBy,
    InSubquery,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    ScalarCompare,
    Scan,
    SemiJoin,
    TopK,
)
from repro.relational.column import Column
from repro.relational.table import Table
from repro.relational.types import ColumnType


@dataclass
class ColumnMeta:
    """Host-side metadata carried alongside a device column handle."""

    ctype: ColumnType
    dictionary: Optional[List[str]] = None
    #: Upper bound for composite-key strides; -1 = unknown (derived
    #: columns), which blocks use as a non-first group-by key.
    max_value: int = -1


@dataclass
class _Relation:
    """Intermediate execution state: named device handles + metadata."""

    columns: Dict[str, Handle]
    meta: Dict[str, ColumnMeta]
    num_rows: int
    row_limit: Optional[int] = None

    def handle(self, name: str) -> Handle:
        try:
            return self.columns[name]
        except KeyError:
            raise PlanError(
                f"column {name!r} not available "
                f"(have: {', '.join(self.columns)})"
            )


@dataclass(frozen=True)
class ExecutionReport:
    """Cost accounting for one query execution."""

    backend: str
    simulated_seconds: float
    summary: ProfileSummary
    peak_device_bytes: int
    #: Chunk count the OOM-recovery retry settled on, or None when the
    #: query completed on its first (whole-table or configured) attempt.
    oom_recovery_chunks: Optional[int] = None

    @property
    def simulated_ms(self) -> float:
        """Total simulated wall-clock in milliseconds."""
        return self.simulated_seconds * 1e3

    def breakdown(self) -> Dict[str, float]:
        """Seconds by cost category (kernel / transfer / compile)."""
        return {
            "kernel": self.summary.kernel_time,
            "transfer": self.summary.transfer_time,
            "compile": self.summary.compile_time,
        }


@dataclass(frozen=True)
class ExecutionResult:
    """A materialised result table plus its cost report."""

    table: Table
    report: ExecutionReport


class QueryExecutor:
    """Runs logical plans against a catalog of host tables.

    ``join_strategy`` overrides the algorithm of every join the plan left
    undecided (``auto``/``cost``); per-node explicit algorithms always
    win.  ``"cost"`` resolves each undecided join at runtime with the
    optimizer's cost model over the *actual* key cardinalities, restricted
    to what the backend supports.

    ``scan_chunks`` turns on chunked, stream-pipelined scans (see
    :mod:`repro.query.chunked`): eligible plans run chunk-by-chunk on
    ``scan_streams`` rotating asynchronous streams so transfer and compute
    overlap; ineligible plans silently fall back to whole-table execution.

    ``store`` is an optional compressed tiered column store (duck-typed:
    anything with ``manages(table, column)`` and ``fetch(table, column,
    backend, lo, hi)``, e.g. :class:`repro.storage.TieredColumnStore`).
    Scans of store-managed columns fetch compressed chunks through the
    tier hierarchy and decompress on device instead of uploading raw host
    bytes.
    """

    def __init__(
        self,
        backend: OperatorBackend,
        catalog: Dict[str, Table],
        join_strategy: Optional[str] = None,
        scan_chunks: Optional[int] = None,
        scan_streams: int = 2,
        store=None,
    ) -> None:
        if join_strategy is not None and join_strategy not in JOIN_ALGORITHMS:
            raise PlanError(
                f"unknown join strategy {join_strategy!r}; "
                f"known: {', '.join(JOIN_ALGORITHMS)}"
            )
        if scan_chunks is not None and scan_chunks < 1:
            raise PlanError(f"scan_chunks must be >= 1: {scan_chunks}")
        if scan_streams < 1:
            raise PlanError(f"scan_streams must be >= 1: {scan_streams}")
        self.backend = backend
        self.catalog = dict(catalog)
        self.join_strategy = join_strategy
        self.scan_chunks = scan_chunks
        self.scan_streams = scan_streams
        self.store = store

    # -- public API --------------------------------------------------------------

    def execute(self, plan: PlanNode, result_name: str = "result") -> ExecutionResult:
        """Execute ``plan`` and return the result with its cost report.

        When the device runs out of memory mid-plan (including injected
        faults), chunk-eligible plans are retried through the chunked
        path with a chunk count sized from the remaining free bytes —
        graceful degradation instead of a hard failure.  The retry's
        report carries the chunk count in ``oom_recovery_chunks``.
        """
        plan = self._resolve_subqueries(plan)
        oom: Optional[DeviceMemoryError] = None
        if self.scan_chunks is not None:
            from repro.query.chunked import try_execute_chunked

            try:
                chunked = try_execute_chunked(self, plan, result_name)
            except DeviceMemoryError as exc:
                # Even the configured chunk count can OOM on a small
                # device; escalate through the recovery path.
                oom = exc.with_traceback(None)
                return self._retry_chunked(plan, result_name, oom)
            if chunked is not None:
                return chunked
        try:
            return self._execute_whole(plan, result_name)
        except DeviceMemoryError as exc:
            # Drop the traceback before leaving the handler: its frames
            # pin the failed attempt's intermediate device arrays, which
            # the retry needs the collector to release.
            oom = exc.with_traceback(None)
        return self._retry_chunked(plan, result_name, oom)

    def _execute_whole(self, plan: PlanNode, result_name: str) -> ExecutionResult:
        """One whole-table execution attempt with its cost report."""
        device = self.backend.device
        cursor = device.profiler.mark()
        t0 = device.clock.now
        device.memory.reset_peak()
        relation = self._execute_root(plan, needed=None)
        table = self._materialise(relation, result_name)
        report = ExecutionReport(
            backend=self.backend.name,
            simulated_seconds=device.clock.elapsed_since(t0),
            summary=device.profiler.summary(since=cursor),
            peak_device_bytes=device.memory.peak_bytes,
        )
        return ExecutionResult(table=table, report=report)

    def _recovery_chunks(self, table_bytes: int, num_rows: int) -> int:
        """First chunk count to try after an OOM.

        Sized so one chunk's scan columns plus intermediates (roughly 4x
        the chunk's input bytes: filtered copies, derived columns, result
        buffers) fit in the device's current free bytes.
        """
        device = self.backend.device
        free = device.memory.free_bytes
        if device.pool is not None:
            # Freed blocks parked in the pool's freelists are reusable
            # capacity even though the manager still counts them as used.
            free += device.pool.cached_bytes
        if self.store is not None:
            tier_bytes = getattr(self.store, "tier_bytes", None)
            if tier_bytes is not None:
                # Store chunks resident on the device spill down-tier
                # under pressure, so they are reclaimable capacity too.
                free += tier_bytes().get("device", 0)
        chunks = math.ceil(4 * max(table_bytes, 1) / max(free, 1))
        return max(2, min(chunks, max(num_rows, 2)))

    def _retry_chunked(
        self,
        plan: PlanNode,
        result_name: str,
        oom: DeviceMemoryError,
    ) -> ExecutionResult:
        """Re-run an OOM'd plan through the chunked path, escalating the
        chunk count (doubling) while chunks themselves still OOM."""
        from repro.query.chunked import chunkable_table, try_execute_chunked

        table_name = chunkable_table(plan, probe_joins=True)
        if table_name is None or table_name not in self.catalog:
            raise oom
        gc.collect()  # release the failed attempt's intermediates
        table = self.catalog[table_name]
        table_bytes = table.nbytes
        max_chunks = max(table.num_rows, 2)
        chunks = self._recovery_chunks(table_bytes, table.num_rows)
        while True:
            retry_oom: Optional[DeviceMemoryError] = None
            try:
                result = try_execute_chunked(
                    self, plan, result_name, chunks=chunks, probe_joins=True
                )
            except DeviceMemoryError as exc:
                retry_oom = exc.with_traceback(None)
            if retry_oom is None:
                if result is None:
                    raise oom
                report = replace(result.report, oom_recovery_chunks=chunks)
                return ExecutionResult(table=result.table, report=report)
            gc.collect()
            if chunks >= max_chunks:
                raise retry_oom
            chunks = min(chunks * 2, max_chunks)

    # -- subquery resolution ---------------------------------------------------------

    def _resolve_subqueries(self, plan: PlanNode) -> PlanNode:
        """Replace subquery predicates with literal predicates.

        Uncorrelated IN and scalar subqueries are executed bottom-up
        (each through a full ordinary execution, including upload and
        download charges) and spliced into the outer plan as
        :class:`~repro.core.predicate.InSet` / ``Compare`` literals, so
        every downstream layer — backends, the compiled pipeline, the
        chunked and distributed paths — only ever sees flattened plans.
        The inner executions happen before the outer report's
        measurement window opens; their cost is reported per subquery
        run, not folded into the outer query's report.
        """
        if isinstance(plan, Filter):
            return Filter(
                self._resolve_subqueries(plan.child),
                self._resolve_predicate(plan.predicate),
            )
        if isinstance(plan, (Join, SemiJoin)):
            return replace(
                plan,
                left=self._resolve_subqueries(plan.left),
                right=self._resolve_subqueries(plan.right),
            )
        if isinstance(plan, (Project, GroupBy, OrderBy, Limit, TopK)):
            return replace(plan, child=self._resolve_subqueries(plan.child))
        return plan

    def _resolve_predicate(self, predicate: Predicate) -> Predicate:
        if isinstance(predicate, (And, Or)):
            return type(predicate)(
                tuple(self._resolve_predicate(p) for p in predicate.parts)
            )
        if isinstance(predicate, Not):
            return Not(self._resolve_predicate(predicate.part))
        if isinstance(predicate, InSubquery):
            values = self._run_subquery(predicate.subplan, predicate.output)
            if len(values) == 0:
                # IN () is vacuously false, NOT IN () vacuously true.
                always_false = CompareCols(
                    predicate.column, "ne", predicate.column
                )
                return Not(always_false) if predicate.negated else always_false
            in_set = InSet(
                predicate.column,
                tuple(float(v) for v in np.unique(values)),
            )
            return Not(in_set) if predicate.negated else in_set
        if isinstance(predicate, ScalarCompare):
            values = self._run_subquery(predicate.subplan, predicate.output)
            if len(values) != 1:
                raise PlanError(
                    f"scalar subquery for {predicate.column!r} returned "
                    f"{len(values)} rows (expected exactly 1)"
                )
            return Compare(predicate.column, predicate.op, float(values[0]))
        return predicate

    def _run_subquery(self, subplan: PlanNode, output: str) -> np.ndarray:
        """Execute an inner plan and return its ``output`` column's
        physical values (dictionary columns yield their codes)."""
        resolved = self._resolve_subqueries(subplan)
        result = self._execute_whole(resolved, "subquery")
        try:
            column = result.table.column(output)
        except Exception:
            raise PlanError(
                f"subquery does not produce column {output!r} "
                f"(has: {', '.join(result.table.column_names)})"
            )
        return np.asarray(column.data)

    # -- static analysis -----------------------------------------------------------

    def _output_columns(self, plan: PlanNode) -> List[str]:
        """Column names a node's output relation will carry."""
        if isinstance(plan, Scan):
            return self.catalog[plan.table].column_names
        if isinstance(plan, Project):
            return [name for name, _expr in plan.outputs]
        if isinstance(plan, GroupBy):
            return list(plan.keys) + [a.name for a in plan.aggregates]
        if isinstance(plan, Join):
            left = self._output_columns(plan.left)
            right = self._output_columns(plan.right)
            overlap = set(left) & set(right)
            if overlap:
                raise PlanError(
                    f"join sides share column names {sorted(overlap)}; "
                    "project/rename before joining"
                )
            return left + right
        if isinstance(plan, SemiJoin):
            # Right columns never escape a semi/anti join.
            return self._output_columns(plan.left)
        children = plan.children()
        if len(children) == 1:
            return self._output_columns(children[0])
        raise PlanError(f"cannot derive output columns of {plan!r}")

    # -- node dispatch ----------------------------------------------------------------

    def _execute_root(
        self, plan: PlanNode, needed: Optional[Sequence[str]]
    ) -> _Relation:
        """Entry point for a (sub-)plan's root: picks the execution mode.

        Backends advertising ``supports_fused_pipelines`` are routed
        through the pipeline IR (:mod:`repro.query.compiled`), which fuses
        unbroken operator segments into single kernels; everything else —
        and fusion mode ``"off"`` — takes the eager node-by-node path.
        """
        if getattr(self.backend, "supports_fused_pipelines", False):
            from repro.query.compiled import CompiledPlanRunner

            return CompiledPlanRunner(self).run(plan, needed)
        return self._execute(plan, needed)

    def _execute(
        self, plan: PlanNode, needed: Optional[Sequence[str]]
    ) -> _Relation:
        if isinstance(plan, Scan):
            return self._execute_scan(plan, needed)
        if isinstance(plan, Filter):
            return self._execute_filter(plan, needed)
        if isinstance(plan, Project):
            return self._execute_project(plan)
        if isinstance(plan, Join):
            return self._execute_join(plan, needed)
        if isinstance(plan, SemiJoin):
            return self._execute_semi_join(plan, needed)
        if isinstance(plan, GroupBy):
            return self._execute_group_by(plan)
        if isinstance(plan, OrderBy):
            return self._execute_order_by(plan, needed)
        if isinstance(plan, TopK):
            return self._execute_top_k(plan, needed)
        if isinstance(plan, Limit):
            relation = self._execute(plan.child, needed)
            return self._apply_limit(relation, plan.n)
        raise PlanError(f"unknown plan node {type(plan).__name__}")

    def _apply_limit(self, relation: _Relation, n: int) -> _Relation:
        limit = n if relation.row_limit is None else min(n, relation.row_limit)
        relation.row_limit = limit
        return relation

    # -- scan ----------------------------------------------------------------------------

    def _execute_scan(
        self, plan: Scan, needed: Optional[Sequence[str]]
    ) -> _Relation:
        try:
            table = self.catalog[plan.table]
        except KeyError:
            known = ", ".join(sorted(self.catalog))
            raise PlanError(f"unknown table {plan.table!r}; catalog has: {known}")
        names = list(needed) if needed is not None else table.column_names
        columns = self._upload_scan_columns(plan.table, names, table)
        meta: Dict[str, ColumnMeta] = {}
        for name in names:
            column = table.column(name)
            max_value = int(column.data.max()) if len(column.data) else 0
            meta[name] = ColumnMeta(
                ctype=column.ctype,
                dictionary=column.dictionary,
                max_value=max_value,
            )
        return _Relation(columns=columns, meta=meta, num_rows=table.num_rows)

    def _upload_scan_columns(
        self, table_name: str, names: Sequence[str], table: Table
    ) -> Dict[str, Handle]:
        """Device handles for all of a scan's columns.

        Store-managed columns are fetched through one batched store call
        — the covering chunks promote in a single transfer and decode in
        a single launch — so a multi-column scan pays the link latency
        and launch overhead once, not per column.
        """
        handles: Dict[str, Handle] = {}
        if self.store is not None:
            managed = [n for n in names if self.store.manages(table_name, n)]
            if len(managed) > 1:
                handles = self.store.fetch_many(
                    table_name, managed, self.backend
                )
        for name in names:
            if name not in handles:
                handles[name] = self._upload_column(
                    table_name, name, table.column(name).data
                )
        return handles

    def _upload_column(
        self, table_name: str, column_name: str, data: np.ndarray
    ) -> Handle:
        """Scan upload hook (GpuSession overrides it with a resident-column
        cache).  Store-managed columns take the compressed tier path —
        promote compressed chunks, decompress on device — instead of a
        raw host upload."""
        if self.store is not None and self.store.manages(table_name, column_name):
            return self.store.fetch(table_name, column_name, self.backend)
        return self.backend.upload(
            data, label=f"{table_name}.{column_name}"
        )

    # -- filter --------------------------------------------------------------------------

    def _execute_filter(
        self, plan: Filter, needed: Optional[Sequence[str]]
    ) -> _Relation:
        child_needed = self._merge_needed(
            needed, plan.predicate.columns(), plan.child
        )
        relation = self._execute(plan.child, child_needed)
        return self._apply_filter(relation, plan, needed)

    def _apply_filter(
        self,
        relation: _Relation,
        plan: Filter,
        needed: Optional[Sequence[str]],
    ) -> _Relation:
        predicate_columns = {
            name: relation.handle(name) for name in plan.predicate.columns()
        }
        ids = self.backend.selection(predicate_columns, plan.predicate)
        selected = len(ids)
        keep = list(needed) if needed is not None else list(relation.columns)
        new_columns = {
            name: self.backend.gather(relation.handle(name), ids)
            for name in keep
        }
        return _Relation(
            columns=new_columns,
            meta={name: relation.meta[name] for name in keep},
            num_rows=selected,
            row_limit=relation.row_limit,
        )

    # -- project -------------------------------------------------------------------------

    def _execute_project(self, plan: Project) -> _Relation:
        child_needed = self._merge_needed(
            None, plan.required_columns(), plan.child, restrict=True
        )
        relation = self._execute(plan.child, child_needed)
        return self._apply_project(relation, plan)

    def _apply_project(self, relation: _Relation, plan: Project) -> _Relation:
        columns: Dict[str, Handle] = {}
        meta: Dict[str, ColumnMeta] = {}
        for name, expr in plan.outputs:
            if isinstance(expr, ColRef):
                columns[name] = relation.handle(expr.name)
                meta[name] = relation.meta[expr.name]
            elif any(
                isinstance(relation.columns[ref], _HostColumn)
                for ref in expr.columns()
            ):
                # Aggregate outputs (e.g. global SUMs feeding a ratio
                # projection) are host-resident; evaluate on the host.
                host = {
                    ref: relation.columns[ref].data
                    if isinstance(relation.columns[ref], _HostColumn)
                    else self.backend.download(relation.columns[ref])
                    for ref in expr.columns()
                }
                columns[name] = _HostColumn(
                    np.asarray(expr.evaluate(host), dtype=np.float64)
                )
                meta[name] = ColumnMeta(ctype=ColumnType.FLOAT64)
            else:
                columns[name] = self.backend.compute(relation.columns, expr)
                meta[name] = ColumnMeta(ctype=ColumnType.FLOAT64)
        return _Relation(
            columns=columns,
            meta=meta,
            num_rows=relation.num_rows,
            row_limit=relation.row_limit,
        )

    # -- join ----------------------------------------------------------------------------

    def _execute_join(
        self, plan: Join, needed: Optional[Sequence[str]]
    ) -> _Relation:
        left_available = self._output_columns(plan.left)
        right_available = self._output_columns(plan.right)
        overlap = set(left_available) & set(right_available)
        if overlap:
            raise PlanError(
                f"join sides share column names {sorted(overlap)}; "
                "project/rename before joining"
            )
        if needed is None:
            left_needed: Optional[List[str]] = None
            right_needed: Optional[List[str]] = None
        else:
            left_needed = [n for n in needed if n in left_available]
            right_needed = [n for n in needed if n in right_available]
            if plan.left_on not in left_needed:
                left_needed.append(plan.left_on)
            if plan.right_on not in right_needed:
                right_needed.append(plan.right_on)
        left = self._execute(plan.left, left_needed)
        right = self._execute(plan.right, right_needed)
        return self._apply_join(left, right, plan, needed)

    def _apply_join(
        self,
        left: _Relation,
        right: _Relation,
        plan: Join,
        needed: Optional[Sequence[str]],
    ) -> _Relation:
        left_ids, right_ids = self._run_join(
            plan.algorithm,
            left.handle(plan.left_on),
            right.handle(plan.right_on),
        )
        matches = len(left_ids)
        columns: Dict[str, Handle] = {}
        meta: Dict[str, ColumnMeta] = {}
        for name, handle in left.columns.items():
            if needed is not None and name not in needed:
                continue
            columns[name] = self.backend.gather(handle, left_ids)
            meta[name] = left.meta[name]
        for name, handle in right.columns.items():
            if needed is not None and name not in needed:
                continue
            columns[name] = self.backend.gather(handle, right_ids)
            meta[name] = right.meta[name]
        return _Relation(columns=columns, meta=meta, num_rows=matches)

    # -- semi / anti join ---------------------------------------------------------------

    def _execute_semi_join(
        self, plan: SemiJoin, needed: Optional[Sequence[str]]
    ) -> _Relation:
        left_available = self._output_columns(plan.left)
        if needed is None:
            left_needed: Optional[List[str]] = None
        else:
            left_needed = [n for n in needed if n in left_available]
            if plan.left_on not in left_needed:
                left_needed.append(plan.left_on)
        left = self._execute(plan.left, left_needed)
        right = self._execute(
            plan.right,
            self._merge_needed(
                None, frozenset({plan.right_on}), plan.right, restrict=True
            ),
        )
        return self._apply_semi_join(left, right, plan, needed)

    def _apply_semi_join(
        self,
        left: _Relation,
        right: _Relation,
        plan: SemiJoin,
        needed: Optional[Sequence[str]],
    ) -> _Relation:
        """Join for the match ids, then keep (semi) or drop (anti) the
        matched left rows.

        The surviving-row-id set is deduplicated on the host (ascending
        row ids — the same order a flag-vector filter would produce) and
        re-uploaded, mirroring the group-by key round-trip: the studied
        libraries ship no distinct-by-key primitive either.
        """
        left_ids, _right_ids = self._run_join(
            plan.algorithm,
            left.handle(plan.left_on),
            right.handle(plan.right_on),
        )
        matched = np.unique(
            self.backend.download(left_ids).astype(np.int64)
        )
        if plan.anti:
            keep_ids = np.setdiff1d(
                np.arange(left.num_rows, dtype=np.int64), matched,
                assume_unique=True,
            )
        else:
            keep_ids = matched
        ids = self.backend.upload(keep_ids, label="semijoin.keep_ids")
        keep = [
            name for name in left.columns
            if needed is None or name in needed
        ]
        columns = {
            name: self.backend.gather(left.handle(name), ids)
            for name in keep
        }
        return _Relation(
            columns=columns,
            meta={name: left.meta[name] for name in keep},
            num_rows=len(keep_ids),
        )

    def _run_join(
        self, algorithm: str, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        if algorithm in ("auto", "cost") and self.join_strategy is not None:
            algorithm = self.join_strategy
        if algorithm == "cost":
            algorithm = choose_join_algorithm(
                len(left_keys),
                len(right_keys),
                supported=self._supported_join_algorithms(),
            )
        if algorithm == "nested_loop":
            return self.backend.nested_loop_join(left_keys, right_keys)
        if algorithm == "merge":
            return self.backend.merge_join(left_keys, right_keys)
        if algorithm == "hash":
            return self.backend.hash_join(left_keys, right_keys)
        # auto: best supported algorithm first, nested loops as last resort
        # (the only join every studied library can express).
        for runner in (self.backend.hash_join, self.backend.merge_join):
            try:
                return runner(left_keys, right_keys)
            except UnsupportedOperatorError:
                continue
        return self.backend.nested_loop_join(left_keys, right_keys)

    def _supported_join_algorithms(self) -> Tuple[str, ...]:
        """Join algorithms the backend's Table II column offers."""
        support = self.backend.support()
        levels = {
            "hash": support.get(Operator.HASH_JOIN),
            "merge": support.get(Operator.MERGE_JOIN),
            "nested_loop": support.get(Operator.NESTED_LOOP_JOIN),
        }
        return tuple(
            name
            for name, cell in levels.items()
            if cell is not None and cell.level is not SupportLevel.NONE
        )

    # -- group by -----------------------------------------------------------------------

    def _execute_group_by(self, plan: GroupBy) -> _Relation:
        child_needed = self._merge_needed(
            None, plan.required_columns(), plan.child, restrict=True
        )
        relation = self._execute(plan.child, child_needed)
        return self._apply_group_by(relation, plan)

    def _apply_group_by(self, relation: _Relation, plan: GroupBy) -> _Relation:
        if not plan.keys:
            return self._global_aggregation(plan, relation)
        key_handle, strides = self._composite_key(plan.keys, relation)
        columns: Dict[str, Handle] = {}
        meta: Dict[str, ColumnMeta] = {}
        out_keys: Optional[Handle] = None
        for aggregate in plan.aggregates:
            values = self._aggregate_values(aggregate, relation, key_handle)
            group_keys, group_values = self.backend.grouped_aggregation(
                key_handle, values, aggregate.kind
            )
            if out_keys is None:
                out_keys = group_keys
            columns[aggregate.name] = group_values
            out_type = (
                ColumnType.INT64 if aggregate.kind == "count"
                else ColumnType.FLOAT64
            )
            meta[aggregate.name] = ColumnMeta(ctype=out_type)
        assert out_keys is not None
        group_count = len(out_keys)
        # Decompose the composite key on the host (group outputs are small),
        # then re-upload the per-column keys so downstream operators (joins,
        # sorts) keep working on device handles.
        composite = self.backend.download(out_keys).astype(np.int64)
        key_columns = self._decompose_keys(plan.keys, composite, strides, relation)
        ordered: Dict[str, Handle] = {}
        ordered_meta: Dict[str, ColumnMeta] = {}
        for name, (data, key_meta) in key_columns.items():
            ordered[name] = self.backend.upload(data, label=f"groupkey.{name}")
            ordered_meta[name] = key_meta
        ordered.update(columns)
        ordered_meta.update(meta)
        return _Relation(
            columns=ordered, meta=ordered_meta, num_rows=group_count
        )

    def _global_aggregation(
        self, plan: GroupBy, relation: _Relation
    ) -> _Relation:
        columns: Dict[str, Handle] = {}
        meta: Dict[str, ColumnMeta] = {}
        for aggregate in plan.aggregates:
            if aggregate.kind == "count" and aggregate.expr is None:
                scalar = float(relation.num_rows)
            else:
                assert aggregate.expr is not None
                values = self._expr_handle(aggregate.expr, relation)
                scalar = self.backend.reduction(values, aggregate.kind)
            if aggregate.kind == "count":
                columns[aggregate.name] = _HostColumn(
                    np.asarray([int(scalar)], dtype=np.int64)
                )
                meta[aggregate.name] = ColumnMeta(ctype=ColumnType.INT64)
            else:
                columns[aggregate.name] = _HostColumn(
                    np.asarray([scalar], dtype=np.float64)
                )
                meta[aggregate.name] = ColumnMeta(ctype=ColumnType.FLOAT64)
        return _Relation(columns=columns, meta=meta, num_rows=1)

    def _aggregate_values(
        self, aggregate: Aggregate, relation: _Relation, key_handle: Handle
    ) -> Handle:
        if aggregate.kind == "count" and aggregate.expr is None:
            # Backends ignore values for counts; reuse the key handle.
            return key_handle
        assert aggregate.expr is not None
        return self._expr_handle(aggregate.expr, relation)

    def _expr_handle(self, expr: Expr, relation: _Relation) -> Handle:
        if isinstance(expr, ColRef):
            return relation.handle(expr.name)
        return self.backend.compute(relation.columns, expr)

    def _composite_key(
        self, keys: Tuple[str, ...], relation: _Relation
    ) -> Tuple[Handle, List[int]]:
        """Combine key columns into one integer key on the device.

        Strides come from each column's value bound (host metadata), so
        ``(k0 * s1 + k1) * s2 + k2 ...`` is collision-free.
        """
        if len(keys) == 1:
            return relation.handle(keys[0]), [1]
        for key in keys[1:]:
            if relation.meta[key].max_value < 0:
                raise PlanError(
                    f"group-by key {key!r} has no known value bound (it is "
                    "a derived column); place it first in the key list or "
                    "group by the base columns it derives from"
                )
        strides = [relation.meta[k].max_value + 1 for k in keys]
        expr: Expr = ColRef(keys[0])
        for key, stride in zip(keys[1:], strides[1:]):
            expr = expr * Lit(stride) + ColRef(key)
        return self.backend.compute(relation.columns, expr), strides

    def _decompose_keys(
        self,
        keys: Tuple[str, ...],
        composite: np.ndarray,
        strides: List[int],
        relation: _Relation,
    ) -> Dict[str, Tuple[np.ndarray, ColumnMeta]]:
        result: Dict[str, Tuple[np.ndarray, ColumnMeta]] = {}
        if len(keys) == 1:
            name = keys[0]
            key_meta = relation.meta[name]
            result[name] = (
                composite.astype(key_meta.ctype.numpy_dtype), key_meta
            )
            return result
        remaining = composite.astype(np.int64)
        # Peel from the last key to the first: values were accumulated as
        # (((k0 * s1) + k1) * s2 + k2) ...
        parts: List[np.ndarray] = []
        for stride in reversed(strides[1:]):
            parts.append(remaining % stride)
            remaining = remaining // stride
        parts.append(remaining)
        parts.reverse()
        for name, data in zip(keys, parts):
            key_meta = relation.meta[name]
            result[name] = (data.astype(key_meta.ctype.numpy_dtype), key_meta)
        return result

    # -- order by ----------------------------------------------------------------------

    def _execute_order_by(
        self, plan: OrderBy, needed: Optional[Sequence[str]]
    ) -> _Relation:
        child_needed = self._merge_needed(
            needed, frozenset({plan.key}), plan.child
        )
        relation = self._execute(plan.child, child_needed)
        return self._apply_order_by(relation, plan)

    def _apply_order_by(self, relation: _Relation, plan: OrderBy) -> _Relation:
        key_handle = relation.handle(plan.key)
        if isinstance(key_handle, _HostColumn):
            # Group-by outputs are host-resident; sort them on the host.
            order = np.argsort(key_handle.data, kind="stable")
            if plan.descending:
                order = order[::-1]
            columns = {
                name: _reorder_host(handle, order, self.backend)
                for name, handle in relation.columns.items()
            }
            return _Relation(
                columns=columns,
                meta=relation.meta,
                num_rows=relation.num_rows,
                row_limit=relation.row_limit,
            )
        rowids = self.backend.iota(relation.num_rows)
        _sorted_keys, sorted_ids = self.backend.sort_by_key(
            key_handle, rowids, descending=plan.descending
        )
        columns = {
            name: self.backend.gather(handle, sorted_ids)
            if not isinstance(handle, _HostColumn)
            else _HostColumn(
                handle.data[self.backend.download(sorted_ids).astype(np.int64)]
            )
            for name, handle in relation.columns.items()
        }
        return _Relation(
            columns=columns,
            meta=relation.meta,
            num_rows=relation.num_rows,
            row_limit=relation.row_limit,
        )

    # -- top-k --------------------------------------------------------------------------

    def _execute_top_k(
        self, plan: TopK, needed: Optional[Sequence[str]]
    ) -> _Relation:
        child_needed = self._merge_needed(
            needed, frozenset({plan.key}), plan.child
        )
        relation = self._execute(plan.child, child_needed)
        return self._apply_top_k(relation, plan)

    def _apply_top_k(self, relation: _Relation, plan: TopK) -> _Relation:
        """Full device sort, but only the head ``n`` row ids are gathered
        per payload column — bit-identical to OrderBy→Limit (same
        backend sort produces the same id order) with k-row gathers and
        a k-row download instead of full-width materialisation."""
        k = min(plan.n, relation.num_rows)
        key_handle = relation.handle(plan.key)
        if isinstance(key_handle, _HostColumn):
            order = np.argsort(key_handle.data, kind="stable")
            if plan.descending:
                order = order[::-1]
            order = order[:k]
            columns = {
                name: _reorder_host(handle, order, self.backend)
                for name, handle in relation.columns.items()
            }
            return _Relation(
                columns=columns, meta=relation.meta, num_rows=k
            )
        rowids = self.backend.iota(relation.num_rows)
        _sorted_keys, sorted_ids = self.backend.sort_by_key(
            key_handle, rowids, descending=plan.descending
        )
        head_ids = self.backend.gather(sorted_ids, self.backend.iota(k))
        columns = {
            name: self.backend.gather(handle, head_ids)
            if not isinstance(handle, _HostColumn)
            else _HostColumn(
                handle.data[self.backend.download(head_ids).astype(np.int64)]
            )
            for name, handle in relation.columns.items()
        }
        return _Relation(columns=columns, meta=relation.meta, num_rows=k)

    # -- materialisation ----------------------------------------------------------------

    def _materialise(self, relation: _Relation, name: str) -> Table:
        columns: List[Column] = []
        limit = relation.row_limit
        for column_name, handle in relation.columns.items():
            if isinstance(handle, _HostColumn):
                data = handle.data
            else:
                data = self.backend.download(handle)
            if limit is not None:
                data = data[:limit]
            column_meta = relation.meta[column_name]
            columns.append(
                _decode_column(column_name, data, column_meta)
            )
        if not columns:
            raise PlanError("query produced no columns")
        return Table(name, columns)

    # -- helpers ---------------------------------------------------------------------

    def _merge_needed(
        self,
        needed: Optional[Sequence[str]],
        extra: frozenset,
        child: PlanNode,
        restrict: bool = False,
    ) -> Optional[List[str]]:
        """Column set to request from ``child``.

        ``restrict=True`` (Project/GroupBy) always narrows to ``extra``;
        otherwise ``None`` (= all) propagates.
        """
        if restrict:
            return sorted(extra)
        if needed is None:
            return None
        merged = set(needed) | set(extra)
        available = set(self._output_columns(child))
        return sorted(merged & available)


class _HostColumn:
    """A small host-resident result column (group keys, scalars)."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data)

    def __len__(self) -> int:
        return len(self.data)


def _reorder_host(
    handle: Handle, order: np.ndarray, backend: OperatorBackend
) -> Handle:
    if isinstance(handle, _HostColumn):
        return _HostColumn(handle.data[order])
    data = backend.download(handle)
    return _HostColumn(data[order])


def _decode_column(name: str, data: np.ndarray, meta: ColumnMeta) -> Column:
    """Turn downloaded physical data back into a typed column."""
    if meta.ctype.is_dictionary_encoded:
        return Column(
            name,
            meta.ctype,
            data.astype(np.int32, copy=False),
            meta.dictionary,
        )
    physical = meta.ctype.numpy_dtype
    if data.dtype != physical:
        data = data.astype(physical)
    return Column(name, meta.ctype, np.ascontiguousarray(data))
