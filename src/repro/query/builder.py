"""Fluent plan builder.

Reads close to SQL::

    plan = (
        scan("lineitem")
        .filter(col_between("l_shipdate", d0, d1))
        .group_by([], [("revenue", "sum", col("l_extendedprice") * col("l_discount"))])
        .build()
    )
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.expr import Expr, as_expr
from repro.core.predicate import Predicate
from repro.query.plan import (
    Aggregate,
    Filter,
    GroupBy,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    TopK,
)

AggregateSpec = Tuple[str, str, Optional[Union[Expr, str]]]
OutputSpec = Union[str, Tuple[str, Union[Expr, str]]]


class QueryBuilder:
    """Immutable fluent wrapper around a plan node."""

    def __init__(self, plan: PlanNode) -> None:
        self._plan = plan

    def build(self) -> PlanNode:
        """The wrapped logical plan."""
        return self._plan

    # -- operators --------------------------------------------------------------

    def filter(self, predicate: Predicate) -> "QueryBuilder":
        """Append a Filter node."""
        return QueryBuilder(Filter(self._plan, predicate))

    def project(self, outputs: Sequence[OutputSpec]) -> "QueryBuilder":
        """Append a Project node.

        Each output is either a column name (pass-through) or a
        ``(name, expression)`` pair.
        """
        resolved: List[Tuple[str, Expr]] = []
        for output in outputs:
            if isinstance(output, str):
                resolved.append((output, as_expr(output)))
            else:
                name, expr = output
                resolved.append((name, as_expr(expr)))
        return QueryBuilder(Project(self._plan, tuple(resolved)))

    def join(
        self,
        other: "QueryBuilder",
        left_on: str,
        right_on: str,
        algorithm: str = "auto",
    ) -> "QueryBuilder":
        """Append an inner equi-join with ``other``."""
        return QueryBuilder(
            Join(self._plan, other._plan, left_on, right_on, algorithm)
        )

    def semi_join(
        self,
        other: "QueryBuilder",
        left_on: str,
        right_on: str,
        algorithm: str = "auto",
    ) -> "QueryBuilder":
        """Keep rows with at least one key match in ``other`` (SQL IN/EXISTS)."""
        return QueryBuilder(
            SemiJoin(self._plan, other._plan, left_on, right_on, False, algorithm)
        )

    def anti_join(
        self,
        other: "QueryBuilder",
        left_on: str,
        right_on: str,
        algorithm: str = "auto",
    ) -> "QueryBuilder":
        """Keep rows with no key match in ``other`` (SQL NOT IN/NOT EXISTS)."""
        return QueryBuilder(
            SemiJoin(self._plan, other._plan, left_on, right_on, True, algorithm)
        )

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> "QueryBuilder":
        """Append a GroupBy node.

        ``aggregates`` entries are ``(output name, kind, expression)``;
        the expression may be ``None`` for ``count(*)``.
        """
        resolved = tuple(
            Aggregate(
                name,
                kind,
                as_expr(expr) if expr is not None else None,
            )
            for name, kind, expr in aggregates
        )
        return QueryBuilder(GroupBy(self._plan, tuple(keys), resolved))

    def aggregate(self, aggregates: Sequence[AggregateSpec]) -> "QueryBuilder":
        """Global aggregation (GroupBy with no keys)."""
        return self.group_by((), aggregates)

    def order_by(self, key: str, descending: bool = False) -> "QueryBuilder":
        """Append an OrderBy node."""
        return QueryBuilder(OrderBy(self._plan, key, descending))

    def limit(self, n: int) -> "QueryBuilder":
        """Append a Limit node."""
        return QueryBuilder(Limit(self._plan, n))

    def top_k(
        self, key: str, n: int, descending: bool = False
    ) -> "QueryBuilder":
        """Append a TopK node (ORDER BY + LIMIT in one operator)."""
        return QueryBuilder(TopK(self._plan, key, n, descending))

    def __repr__(self) -> str:
        return f"QueryBuilder({self._plan!r})"


def scan(table: str) -> QueryBuilder:
    """Start a query from a base table."""
    return QueryBuilder(Scan(table))
