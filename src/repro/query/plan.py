"""Logical query plans.

A plan is a tree of dataclass nodes over named base tables.  The executor
lowers it onto one :class:`~repro.core.backend.OperatorBackend`; the same
plan therefore runs on every library — the framework property the paper's
query benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.core.expr import Expr
from repro.core.predicate import Predicate
from repro.errors import PlanError

#: Join algorithms a Join node may request.  "auto" picks the backend's
#: best supported algorithm (hash > merge > nested loops); "cost" defers
#: to the optimizer's cost model over the actual input cardinalities (see
#: :func:`repro.query.optimizer.choose_join_algorithm`).
JOIN_ALGORITHMS = ("auto", "nested_loop", "merge", "hash", "cost")


class PlanNode:
    """Base class of logical plan nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child plans (empty for leaves)."""
        return ()

    def required_columns(self) -> FrozenSet[str]:
        """Columns this node itself reads (not including children)."""
        return frozenset()


@dataclass(frozen=True)
class Scan(PlanNode):
    """Leaf: read a named base table from the catalog."""

    table: str

    def __post_init__(self) -> None:
        if not self.table:
            raise PlanError("Scan needs a table name")


@dataclass(frozen=True)
class Filter(PlanNode):
    """Row selection by predicate."""

    child: PlanNode
    predicate: Predicate

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def required_columns(self) -> FrozenSet[str]:
        return self.predicate.columns()


@dataclass(frozen=True)
class Project(PlanNode):
    """Column projection / derivation: (output name, expression) pairs."""

    child: PlanNode
    outputs: Tuple[Tuple[str, Expr], ...]

    def __post_init__(self) -> None:
        if not self.outputs:
            raise PlanError("Project needs at least one output")
        names = [name for name, _expr in self.outputs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate projection names in {names}")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def required_columns(self) -> FrozenSet[str]:
        needed: FrozenSet[str] = frozenset()
        for _name, expr in self.outputs:
            needed |= expr.columns()
        return needed


@dataclass(frozen=True)
class Join(PlanNode):
    """Inner equi-join of two child plans."""

    left: PlanNode
    right: PlanNode
    left_on: str
    right_on: str
    algorithm: str = "auto"

    def __post_init__(self) -> None:
        if self.algorithm not in JOIN_ALGORITHMS:
            raise PlanError(
                f"unknown join algorithm {self.algorithm!r}; "
                f"known: {', '.join(JOIN_ALGORITHMS)}"
            )

    @property
    def join_strategy(self) -> str:
        """Alias for :attr:`algorithm` (the executor-facing name)."""
        return self.algorithm

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def required_columns(self) -> FrozenSet[str]:
        return frozenset({self.left_on, self.right_on})


@dataclass(frozen=True)
class SemiJoin(PlanNode):
    """Semi (``anti=False``) or anti (``anti=True``) equi-join.

    Keeps left rows with at least one (semi) or no (anti) key match on
    the right; right columns never appear in the output — the relational
    shape of SQL ``IN``/``EXISTS`` (and ``NOT IN``/``NOT EXISTS``)
    against another table.
    """

    left: PlanNode
    right: PlanNode
    left_on: str
    right_on: str
    anti: bool = False
    algorithm: str = "auto"

    def __post_init__(self) -> None:
        if self.algorithm not in JOIN_ALGORITHMS:
            raise PlanError(
                f"unknown join algorithm {self.algorithm!r}; "
                f"known: {', '.join(JOIN_ALGORITHMS)}"
            )

    @property
    def join_strategy(self) -> str:
        """Alias for :attr:`algorithm` (the executor-facing name)."""
        return self.algorithm

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def required_columns(self) -> FrozenSet[str]:
        return frozenset({self.left_on, self.right_on})


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """One output aggregate: name, kind, and the value expression."""

    name: str
    kind: str  # sum | count | min | max | avg
    expr: Optional[Expr] = None  # None allowed for count(*)

    def __post_init__(self) -> None:
        if self.kind not in ("sum", "count", "min", "max", "avg"):
            raise PlanError(f"unknown aggregate kind {self.kind!r}")
        if self.expr is None and self.kind != "count":
            raise PlanError(f"aggregate {self.kind!r} needs an expression")


@dataclass(frozen=True)
class GroupBy(PlanNode):
    """Grouped aggregation over zero or more key columns.

    Zero keys = global aggregation (Q6); one or more keys = SQL GROUP BY
    (multi-key groups are combined into one composite device key).
    """

    child: PlanNode
    keys: Tuple[str, ...]
    aggregates: Tuple[Aggregate, ...]

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("GroupBy needs at least one aggregate")
        names = [a.name for a in self.aggregates] + list(self.keys)
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output names in group-by: {names}")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def required_columns(self) -> FrozenSet[str]:
        needed = frozenset(self.keys)
        for aggregate in self.aggregates:
            if aggregate.expr is not None:
                needed |= aggregate.expr.columns()
        return needed


@dataclass(frozen=True)
class OrderBy(PlanNode):
    """Sort rows by one column."""

    child: PlanNode
    key: str
    descending: bool = False

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def required_columns(self) -> FrozenSet[str]:
        return frozenset({self.key})


@dataclass(frozen=True)
class Limit(PlanNode):
    """Keep the first ``n`` rows."""

    child: PlanNode
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise PlanError(f"Limit must be non-negative, got {self.n}")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class TopK(PlanNode):
    """ORDER BY + LIMIT fused: the ``n`` extreme rows by one key.

    Produced by :func:`repro.query.optimizer.push_down_top_k`; the
    executor still sorts on the device but gathers only the head ``n``
    row ids per payload column, so the result is bit-identical to the
    OrderBy→Limit pair it replaces while materialising far fewer rows.
    """

    child: PlanNode
    key: str
    n: int
    descending: bool = False

    def __post_init__(self) -> None:
        if self.n < 0:
            raise PlanError(f"TopK must keep a non-negative count, got {self.n}")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def required_columns(self) -> FrozenSet[str]:
        return frozenset({self.key})


@dataclass(frozen=True)
class InSubquery(Predicate):
    """``column IN (subplan)`` — an uncorrelated IN subquery.

    Carries the inner plan; the executor resolves it to a literal
    :class:`~repro.core.predicate.InSet` before any backend sees the
    predicate, so ``evaluate`` is deliberately unreachable.
    """

    column: str
    subplan: PlanNode
    output: str
    negated: bool = False

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, columns) -> "np.ndarray":  # noqa: F821 - doc type
        raise PlanError(
            f"unresolved IN subquery on {self.column!r}: subqueries must "
            "be resolved by the executor before evaluation"
        )

    def __repr__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.column} {word} <subquery:{self.output}>)"


@dataclass(frozen=True)
class ScalarCompare(Predicate):
    """``column <op> (subplan)`` — an uncorrelated scalar subquery.

    The inner plan must yield exactly one row; the executor splices the
    scalar into a literal :class:`~repro.core.predicate.Compare`.
    """

    column: str
    op: str
    subplan: PlanNode
    output: str

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, columns) -> "np.ndarray":  # noqa: F821 - doc type
        raise PlanError(
            f"unresolved scalar subquery on {self.column!r}: subqueries "
            "must be resolved by the executor before evaluation"
        )

    def __repr__(self) -> str:
        return f"({self.column} {self.op} <subquery:{self.output}>)"


def walk(plan: PlanNode):
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Indented textual rendering of the plan tree."""
    pad = "  " * indent
    if isinstance(plan, Scan):
        line = f"{pad}Scan({plan.table})"
    elif isinstance(plan, Filter):
        line = f"{pad}Filter({plan.predicate!r})"
    elif isinstance(plan, Project):
        cols = ", ".join(f"{n}={e!r}" for n, e in plan.outputs)
        line = f"{pad}Project({cols})"
    elif isinstance(plan, Join):
        line = (
            f"{pad}Join({plan.left_on} = {plan.right_on}, "
            f"algorithm={plan.algorithm})"
        )
    elif isinstance(plan, SemiJoin):
        kind = "AntiJoin" if plan.anti else "SemiJoin"
        line = (
            f"{pad}{kind}({plan.left_on} = {plan.right_on}, "
            f"algorithm={plan.algorithm})"
        )
    elif isinstance(plan, GroupBy):
        aggs = ", ".join(
            f"{a.name}={a.kind}({a.expr!r})" for a in plan.aggregates
        )
        keys = ", ".join(plan.keys) if plan.keys else "<global>"
        line = f"{pad}GroupBy(keys=[{keys}], {aggs})"
    elif isinstance(plan, OrderBy):
        direction = "desc" if plan.descending else "asc"
        line = f"{pad}OrderBy({plan.key} {direction})"
    elif isinstance(plan, Limit):
        line = f"{pad}Limit({plan.n})"
    elif isinstance(plan, TopK):
        direction = "desc" if plan.descending else "asc"
        line = f"{pad}TopK({plan.key} {direction}, n={plan.n})"
    else:
        line = f"{pad}{type(plan).__name__}"
    lines = [line]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
