"""Resident-column sessions.

:class:`~repro.query.executor.QueryExecutor` re-uploads scanned columns on
every execution — the *streaming* regime.  Real GPU DBMSes (the systems
the paper cites: SQreamDB, BlazingDB) keep hot columns resident in device
memory and pay the PCIe cost once.  :class:`GpuSession` adds that cache:
the first query touching a column uploads it, later queries reuse the
device handle.

The cache holds handles per (table, column) and survives for the session's
lifetime; :meth:`GpuSession.evict` frees device memory explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.backend import Handle, OperatorBackend
from repro.query.executor import ExecutionResult, QueryExecutor
from repro.query.plan import PlanNode
from repro.relational.table import Table


class _CachingExecutor(QueryExecutor):
    """Executor whose scans consult the session's column cache."""

    def __init__(
        self,
        backend: OperatorBackend,
        catalog: Dict[str, Table],
        cache: Dict[Tuple[str, str], Handle],
        join_strategy: Optional[str] = None,
    ) -> None:
        super().__init__(backend, catalog, join_strategy=join_strategy)
        self._cache = cache

    def _upload_column(self, table_name: str, column_name: str,
                       data: np.ndarray) -> Handle:
        key = (table_name, column_name)
        handle = self._cache.get(key)
        if handle is None:
            handle = self.backend.upload(
                data, label=f"{table_name}.{column_name}"
            )
            self._cache[key] = handle
        return handle


class GpuSession:
    """A long-lived query session with resident columns.

    Example::

        session = GpuSession(backend, catalog)
        session.execute(q6.plan())   # uploads lineitem columns
        session.execute(q6.plan())   # reuses them: no transfer time
    """

    def __init__(
        self,
        backend: OperatorBackend,
        catalog: Dict[str, Table],
        join_strategy: Optional[str] = None,
    ) -> None:
        self.backend = backend
        self.catalog = dict(catalog)
        self._cache: Dict[Tuple[str, str], Handle] = {}
        self._executor = _CachingExecutor(
            backend, self.catalog, self._cache, join_strategy=join_strategy
        )

    @property
    def join_strategy(self) -> Optional[str]:
        """Session-wide override for undecided (auto/cost) joins."""
        return self._executor.join_strategy

    def execute(self, plan: PlanNode, result_name: str = "result") -> ExecutionResult:
        """Execute a plan, reusing resident columns."""
        return self._executor.execute(plan, result_name)

    @property
    def resident_columns(self) -> Tuple[Tuple[str, str], ...]:
        """(table, column) pairs currently resident on the device."""
        return tuple(sorted(self._cache))

    @property
    def resident_bytes(self) -> int:
        """Device bytes pinned by the session cache."""
        return sum(
            _handle_nbytes(handle) for handle in self._cache.values()
        )

    def evict(self, table: Optional[str] = None) -> int:
        """Free resident columns (all, or one table's); returns how many."""
        keys = [
            key for key in self._cache
            if table is None or key[0] == table
        ]
        for key in keys:
            handle = self._cache.pop(key)
            _free_handle(handle)
        return len(keys)

    def __repr__(self) -> str:
        return (
            f"GpuSession(backend={self.backend.name!r}, "
            f"resident={len(self._cache)} columns, "
            f"{self.resident_bytes / 1e6:.1f} MB)"
        )


def _handle_nbytes(handle: Handle) -> int:
    if hasattr(handle, "nbytes"):
        return int(handle.nbytes)
    if hasattr(handle, "storage"):  # ArrayFire Array
        return int(handle.storage().nbytes)
    return int(np.asarray(handle).nbytes)


def _free_handle(handle: Handle) -> None:
    if hasattr(handle, "free"):
        handle.free()
    elif hasattr(handle, "storage"):
        handle.storage().free()
