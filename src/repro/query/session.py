"""Resident-column sessions.

:class:`~repro.query.executor.QueryExecutor` re-uploads scanned columns on
every execution — the *streaming* regime.  Real GPU DBMSes (the systems
the paper cites: SQreamDB, BlazingDB) keep hot columns resident in device
memory and pay the PCIe cost once.  :class:`GpuSession` adds that cache:
the first query touching a column uploads it, later queries reuse the
device handle.

The cache is LRU-ordered and *pressure-aware*: the session registers a
callback with the device's :class:`~repro.gpu.memory.MemoryManager`, so
when an allocation would fail, resident columns are evicted — least
recently used first, columns pinned by the in-flight query excluded —
until the allocation fits.  Evicted columns simply re-upload on their
next touch.  :meth:`GpuSession.evict` frees device memory explicitly and
:meth:`GpuSession.close` (or a ``with`` block) releases everything the
session holds, including the device pool's cached blocks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.core.backend import Handle, OperatorBackend
from repro.query.executor import ExecutionResult, QueryExecutor
from repro.query.plan import PlanNode
from repro.relational.table import Table


class _CachingExecutor(QueryExecutor):
    """Executor whose scans consult the session's column cache.

    ``_active`` holds the cache keys the in-flight query has touched:
    those handles are reachable from the query's intermediate relations,
    so the session's pressure eviction must not free them mid-plan.
    """

    def __init__(
        self,
        backend: OperatorBackend,
        catalog: Dict[str, Table],
        cache: "OrderedDict[Tuple[str, str], Handle]",
        join_strategy: Optional[str] = None,
        store=None,
    ) -> None:
        super().__init__(
            backend, catalog, join_strategy=join_strategy, store=store
        )
        self._cache = cache
        self._active: Set[Tuple[str, str]] = set()

    def _upload_scan_columns(self, table_name, names, table):
        handles: Dict[str, Handle] = {}
        missing = []
        for name in names:
            key = (table_name, name)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._active.add(key)
                handles[name] = cached
            else:
                missing.append(name)
        if self.store is not None:
            managed = [
                n for n in missing if self.store.manages(table_name, n)
            ]
            if len(managed) > 1:
                # Batched tier path for the cache misses: one promote
                # transfer + one decode launch for the scan's column set.
                fetched = self.store.fetch_many(
                    table_name, managed, self.backend
                )
                for name, handle in fetched.items():
                    self._cache[(table_name, name)] = handle
                    self._active.add((table_name, name))
                handles.update(fetched)
                missing = [n for n in missing if n not in fetched]
        for name in missing:
            handles[name] = self._upload_column(
                table_name, name, table.column(name).data
            )
        return handles

    def _upload_column(self, table_name: str, column_name: str,
                       data: np.ndarray) -> Handle:
        key = (table_name, column_name)
        handle = self._cache.get(key)
        if handle is None:
            if self.store is not None and self.store.manages(
                table_name, column_name
            ):
                # Compressed tier path: promote + decode instead of a
                # raw upload; the decoded handle is cached like any other.
                handle = self.store.fetch(
                    table_name, column_name, self.backend
                )
            else:
                handle = self.backend.upload(
                    data, label=f"{table_name}.{column_name}"
                )
            self._cache[key] = handle
        else:
            self._cache.move_to_end(key)  # most recently used last
        self._active.add(key)
        return handle


class GpuSession:
    """A long-lived query session with resident columns.

    Example::

        with GpuSession(backend, catalog) as session:
            session.execute(q6.plan())   # uploads lineitem columns
            session.execute(q6.plan())   # reuses them: no transfer time
    """

    def __init__(
        self,
        backend: OperatorBackend,
        catalog: Dict[str, Table],
        join_strategy: Optional[str] = None,
        store=None,
    ) -> None:
        self.backend = backend
        self.catalog = dict(catalog)
        self.store = store
        self._cache: "OrderedDict[Tuple[str, str], Handle]" = OrderedDict()
        self._executor = _CachingExecutor(
            backend, self.catalog, self._cache,
            join_strategy=join_strategy, store=store,
        )
        self._closed = False
        #: Lazily-built heterogeneous executor (see :meth:`execute_hybrid`).
        self._hetero = None
        #: Re-entrancy depth of :meth:`execute` — positive while a query
        #: is in flight, so eviction paths know which pins are live.
        self._depth = 0
        #: Plain cached columns dropped by memory pressure (their next
        #: touch re-uploads raw bytes over PCIe), with exact bytes.
        self.pressure_evictions = 0
        self.pressure_evicted_bytes = 0
        #: Store-managed columns dropped by memory pressure (their data
        #: survives compressed in the tiered store; the next touch
        #: re-promotes + decodes instead of re-uploading).  Previously
        #: these were miscounted as evictions.
        self.pressure_spills = 0
        self.pressure_spilled_bytes = 0
        backend.device.memory.register_pressure_callback(
            self._relieve_pressure
        )

    @property
    def join_strategy(self) -> Optional[str]:
        """Session-wide override for undecided (auto/cost) joins."""
        return self._executor.join_strategy

    def execute(self, plan: PlanNode, result_name: str = "result") -> ExecutionResult:
        """Execute a plan, reusing resident columns.

        Re-entrant: a nested :meth:`execute` (sessions interleaved by the
        serving layer, or a query issued from inside another's callback)
        restores the outer query's pins when it finishes instead of
        clearing them — so memory pressure during the inner query can
        never evict columns the outer query still references.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        saved = set(self._executor._active)
        self._depth += 1
        try:
            return self._executor.execute(plan, result_name)
        finally:
            self._depth -= 1
            self._executor._active = saved if self._depth > 0 else set()

    def execute_hybrid(
        self,
        plan: PlanNode,
        result_name: str = "result",
        mode: str = "auto",
    ) -> ExecutionResult:
        """Execute a plan under CPU/GPU placement (see :mod:`repro.hetero`).

        The session's caching executor serves as the *GPU side* of the
        heterogeneous executor, so GPU-placed pipelines still hit the
        resident-column cache (and pin what they touch, exactly like
        :meth:`execute`); CPU-placed pipelines run on the host device
        with free transfers.  ``mode`` is ``"auto"`` (cost-chosen),
        ``"cpu"``, or ``"gpu"`` — the serving layer's pressure shed
        forces ``"cpu"`` to keep a query off the device entirely.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if self._hetero is None:
            # Lazy import: repro.hetero composes executors from this
            # module, so a top-level import would be a cycle.
            from repro.hetero import HeterogeneousExecutor

            self._hetero = HeterogeneousExecutor(gpu_executor=self._executor)
        saved = set(self._executor._active)
        self._depth += 1
        try:
            return self._hetero.execute(plan, result_name, mode=mode)
        finally:
            self._depth -= 1
            self._executor._active = saved if self._depth > 0 else set()

    @property
    def in_flight(self) -> bool:
        """True while a query (possibly nested) is executing."""
        return self._depth > 0

    @property
    def resident_columns(self) -> Tuple[Tuple[str, str], ...]:
        """(table, column) pairs currently resident on the device."""
        return tuple(sorted(self._cache))

    @property
    def resident_bytes(self) -> int:
        """Device bytes pinned by the session cache."""
        return sum(
            _handle_nbytes(handle) for handle in self._cache.values()
        )

    def evict(self, table: Optional[str] = None) -> int:
        """Free resident columns (all, or one table's); returns how many.

        Columns pinned by an in-flight query are skipped: their handles
        are reachable from the query's intermediate relations, so freeing
        them mid-plan would corrupt the running execution.
        """
        pinned = self._executor._active if self._depth > 0 else frozenset()
        keys = [
            key for key in self._cache
            if (table is None or key[0] == table) and key not in pinned
        ]
        for key in keys:
            handle = self._cache.pop(key)
            _free_handle(handle)
        return len(keys)

    def replace_table(self, name: str, table: Table) -> None:
        """Swap in a new version of a base table.

        Updates the session's catalog and evicts the table's resident
        columns so the next query re-uploads fresh data.  Refused while a
        query is in flight — a mid-plan swap would let one query read a
        mix of old and new column versions.
        """
        if self._depth > 0:
            raise RuntimeError(
                "cannot replace a table while a query is in flight"
            )
        self.catalog[name] = table
        self._executor.catalog[name] = table
        self.evict(name)

    def _relieve_pressure(self, needed: int) -> int:
        """Memory-pressure callback: evict LRU columns until ``needed``
        bytes are freed (or nothing evictable remains); returns the bytes
        released.  Columns the in-flight query holds are pinned.

        Each dropped column is classified: store-managed columns count as
        *spills* (the data stays compressed in the tiered store — only
        device residency is lost), everything else as *evictions* (the
        next touch pays a full raw re-upload).  Byte counters record the
        exact device bytes each class released.
        """
        freed = 0
        for key in list(self._cache):
            if freed >= needed:
                break
            if key in self._executor._active:
                continue
            handle = self._cache.pop(key)
            nbytes = _handle_nbytes(handle)
            freed += nbytes
            _free_handle(handle)
            if self.store is not None and self.store.manages(*key):
                self.pressure_spills += 1
                self.pressure_spilled_bytes += nbytes
            else:
                self.pressure_evictions += 1
                self.pressure_evicted_bytes += nbytes
        return freed

    def close(self) -> None:
        """Release everything the session holds: evict all resident
        columns, detach the pressure callback, and return the device
        pool's cached blocks.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.evict()
        self.backend.device.memory.unregister_pressure_callback(
            self._relieve_pressure
        )
        self.backend.device.trim_pool()

    def __enter__(self) -> "GpuSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"GpuSession(backend={self.backend.name!r}, "
            f"resident={len(self._cache)} columns, "
            f"{self.resident_bytes / 1e6:.1f} MB)"
        )


def _handle_nbytes(handle: Handle) -> int:
    if hasattr(handle, "nbytes"):
        return int(handle.nbytes)
    if hasattr(handle, "storage"):  # ArrayFire Array
        return int(handle.storage().nbytes)
    return int(np.asarray(handle).nbytes)


def _free_handle(handle: Handle) -> None:
    if hasattr(handle, "free"):
        handle.free()
    elif hasattr(handle, "storage"):
        handle.storage().free()
