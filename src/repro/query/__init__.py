"""Query processing: logical plans, a fluent builder, and the executor."""

from repro.query.builder import QueryBuilder, scan
from repro.query.executor import (
    ColumnMeta,
    ExecutionReport,
    ExecutionResult,
    QueryExecutor,
)
from repro.query.optimizer import optimize, rename_predicate
from repro.query.session import GpuSession
from repro.query.plan import (
    Aggregate,
    Filter,
    GroupBy,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    explain,
    walk,
)

__all__ = [
    "QueryBuilder",
    "scan",
    "QueryExecutor",
    "ExecutionReport",
    "ExecutionResult",
    "ColumnMeta",
    "GpuSession",
    "optimize",
    "rename_predicate",
    "PlanNode",
    "Scan",
    "Filter",
    "Project",
    "Join",
    "GroupBy",
    "Aggregate",
    "OrderBy",
    "Limit",
    "walk",
    "explain",
]
