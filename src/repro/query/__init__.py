"""Query processing: logical plans, a fluent builder, and the executor."""

from repro.query.builder import QueryBuilder, scan
from repro.query.chunked import (
    COMBINABLE_AGGREGATES,
    chunk_bounds,
    chunkable_table,
    slice_table,
    try_execute_chunked,
)
from repro.query.executor import (
    ColumnMeta,
    ExecutionReport,
    ExecutionResult,
    QueryExecutor,
)
from repro.query.optimizer import (
    COSTED_JOIN_ALGORITHMS,
    choose_join_algorithm,
    estimate_rows,
    join_cost,
    optimize,
    rename_predicate,
    select_join_strategies,
)
from repro.query.session import GpuSession
from repro.query.plan import (
    JOIN_ALGORITHMS,
    Aggregate,
    Filter,
    GroupBy,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    explain,
    walk,
)

__all__ = [
    "QueryBuilder",
    "scan",
    "QueryExecutor",
    "ExecutionReport",
    "ExecutionResult",
    "ColumnMeta",
    "COMBINABLE_AGGREGATES",
    "chunk_bounds",
    "chunkable_table",
    "slice_table",
    "try_execute_chunked",
    "GpuSession",
    "optimize",
    "rename_predicate",
    "choose_join_algorithm",
    "select_join_strategies",
    "estimate_rows",
    "join_cost",
    "COSTED_JOIN_ALGORITHMS",
    "JOIN_ALGORITHMS",
    "PlanNode",
    "Scan",
    "Filter",
    "Project",
    "Join",
    "GroupBy",
    "Aggregate",
    "OrderBy",
    "Limit",
    "walk",
    "explain",
]
