"""Pipeline-IR interpreter for the compiled fused-pipeline backend.

:class:`CompiledPlanRunner` executes a plan by lowering it to the
pipeline IR (:mod:`repro.query.pipeline`) and running each pipeline
front to back.  Per pipeline it picks one of two executions:

* **fused** — the whole segment (scan → filters → projects → probes →
  partial aggregation) becomes ONE simulated kernel priced as a single
  DRAM pass (:meth:`~repro.core.compiled_backend.CompiledBackend.launch_fused`,
  a ``FUSED[...]`` event), after a JIT-codegen charge on the first use of
  the segment's signature (cached thereafter);
* **eager** — the segment replays the eager executor's own relation
  transformations (``_apply_*``), charging exactly the per-operator
  kernels :class:`~repro.query.executor.QueryExecutor` would.

The choice is the backend's ``fusion`` mode: ``"on"``/``"off"`` force
it, ``"auto"`` asks the optimizer's fusion-boundary cost model
(:func:`~repro.query.optimizer.fusion_decision`) per segment.

**Bit-identity.**  The fused path computes result values host-side with
the same NumPy semantics the eager operators use — ``predicate.evaluate``
+ ``flatnonzero`` for filters, ``expr.evaluate`` for projections,
:func:`~repro.core.backend.join_reference` for probes, the shared
:func:`~repro.core.handwritten_backend.grouped_aggregate_host` /
:func:`~repro.core.handwritten_backend.reduction_host` helpers for
aggregation — and reuses the executor's own key decomposition, so every
mode produces byte-identical tables; only the cost events differ.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backend import join_reference
from repro.core.expr import ColRef, Expr, Lit
from repro.core.handwritten_backend import (
    _predicate_cost,
    grouped_aggregate_host,
    reduction_host,
)
from repro.errors import PlanError
from repro.query.executor import ColumnMeta, QueryExecutor, _HostColumn, _Relation
from repro.query.optimizer import FusionDecision, fusion_decision
from repro.query.pipeline import (
    FilterStage,
    GroupBySink,
    Pipeline,
    ProbeStage,
    ProjectStage,
    SemiProbeStage,
    Sink,
    SortSink,
    Source,
    TableSource,
    TopKSink,
    lower_plan,
)
from repro.query.plan import GroupBy, PlanNode, Scan
from repro.relational.types import ColumnType


class CompiledPlanRunner:
    """One plan execution through the pipeline IR."""

    def __init__(self, executor: QueryExecutor) -> None:
        self.executor = executor
        self.backend = executor.backend

    # -- driver -------------------------------------------------------------------

    def run(self, plan: PlanNode, needed) -> _Relation:
        program = lower_plan(
            plan, columns_of=self.executor._output_columns, needed=needed
        )
        outputs: Dict[int, _Relation] = {}
        for pipeline in program.pipelines:
            outputs[pipeline.pid] = self._run_pipeline(pipeline, outputs)
        return outputs[program.result_pid]

    def _run_pipeline(
        self, pipeline: Pipeline, outputs: Dict[int, _Relation]
    ) -> _Relation:
        if self._should_fuse(pipeline):
            return self._run_fused(pipeline, outputs)
        return self._run_eager(pipeline, outputs)

    # -- fusion decision ----------------------------------------------------------

    def _should_fuse(self, pipeline: Pipeline) -> bool:
        if not pipeline.fusable:
            return False
        mode = getattr(self.backend, "fusion", "auto")
        if mode == "off":
            return False
        if mode == "on":
            return True
        return self.decide(pipeline).fuse

    def _signature(self, pipeline: Pipeline) -> str:
        """Program-cache key: the segment's full structure (operators,
        predicates, expressions, pruned column lists)."""
        return repr((pipeline.source, pipeline.stages, pipeline.sink))

    def decide(self, pipeline: Pipeline) -> FusionDecision:
        """The "auto"-mode call into the optimizer's fusion cost model."""
        assert isinstance(pipeline.source, TableSource)
        table = self.executor.catalog.get(pipeline.source.table)
        if table is None:
            # Unknown table: stay eager so the scan raises the executor's
            # usual PlanError.
            return FusionDecision(fuse=False, fused_seconds=0.0, eager_seconds=0.0)
        names = (
            list(pipeline.source.columns)
            if pipeline.source.columns is not None
            else list(table.column_names)
        )

        def width(columns) -> float:
            total = 0.0
            for name in columns:
                try:
                    total += table.column(name).data.dtype.itemsize
                except Exception:
                    total += 8.0  # derived / unknown: assume float64
            return total

        fused_read = width(names)
        stages = pipeline.stages
        if stages and isinstance(stages[0], FilterStage):
            eager_first = width(sorted(stages[0].plan.predicate.columns()))
        else:
            eager_first = fused_read
        num_filters = sum(isinstance(s, FilterStage) for s in stages)
        launches = 0
        for stage in stages:
            if isinstance(stage, FilterStage):
                kept = len(stage.keep) if stage.keep is not None else len(names)
                launches += 1 + kept  # selection + one gather per column
            elif isinstance(stage, ProjectStage):
                launches += sum(
                    0 if isinstance(expr, ColRef) else 1
                    for _name, expr in stage.plan.outputs
                )
            elif isinstance(stage, ProbeStage):
                kept = (
                    len(stage.keep) if stage.keep is not None else len(names) + 1
                )
                launches += 2 + kept  # build + probe + output gathers
            elif isinstance(stage, SemiProbeStage):
                kept = len(stage.keep) if stage.keep is not None else len(names)
                launches += 2 + kept  # build + membership + left gathers
        if isinstance(pipeline.sink, GroupBySink):
            aggregates = len(pipeline.sink.plan.aggregates)
            if pipeline.sink.plan.keys:
                launches += 2 * aggregates + 1  # per-agg hash pass + key math
            else:
                launches += aggregates  # one reduction each
        compile_share = 0.0
        if hasattr(self.backend, "amortized_compile_seconds"):
            compile_share = self.backend.amortized_compile_seconds(
                self._signature(pipeline), pipeline.operator_count
            )
        return fusion_decision(
            table.num_rows,
            fused_read,
            eager_first,
            fused_read,
            num_filters,
            max(launches, 1),
            compile_share,
        )

    # -- eager segment ------------------------------------------------------------

    def _source_relation(
        self, source: Source, outputs: Dict[int, _Relation]
    ) -> _Relation:
        if isinstance(source, TableSource):
            return self.executor._execute_scan(
                Scan(source.table), source.columns
            )
        return outputs[source.pid]

    def _run_eager(
        self, pipeline: Pipeline, outputs: Dict[int, _Relation]
    ) -> _Relation:
        ex = self.executor
        relation = self._source_relation(pipeline.source, outputs)
        for stage in pipeline.stages:
            if isinstance(stage, FilterStage):
                relation = ex._apply_filter(relation, stage.plan, stage.keep)
            elif isinstance(stage, ProjectStage):
                relation = ex._apply_project(relation, stage.plan)
            elif isinstance(stage, ProbeStage):
                relation = ex._apply_join(
                    relation, outputs[stage.build_pid], stage.plan, stage.keep
                )
            elif isinstance(stage, SemiProbeStage):
                relation = ex._apply_semi_join(
                    relation, outputs[stage.build_pid], stage.plan, stage.keep
                )
            else:
                relation = ex._apply_limit(relation, stage.plan.n)
        return self._apply_sink(relation, pipeline.sink)

    def _apply_sink(self, relation: _Relation, sink: Sink) -> _Relation:
        if isinstance(sink, GroupBySink):
            return self.executor._apply_group_by(relation, sink.plan)
        if isinstance(sink, SortSink):
            return self.executor._apply_order_by(relation, sink.plan)
        if isinstance(sink, TopKSink):
            return self.executor._apply_top_k(relation, sink.plan)
        return relation  # Build/Result sinks: already materialised

    # -- fused segment ------------------------------------------------------------

    def _run_fused(
        self, pipeline: Pipeline, outputs: Dict[int, _Relation]
    ) -> _Relation:
        ex = self.executor
        backend = self.backend
        assert isinstance(pipeline.source, TableSource)
        scan = ex._execute_scan(
            Scan(pipeline.source.table), pipeline.source.columns
        )
        backend.ensure_program(
            self._signature(pipeline), pipeline.operator_count
        )

        host: Dict[str, np.ndarray] = {
            name: handle.peek() for name, handle in scan.columns.items()
        }
        meta: Dict[str, ColumnMeta] = dict(scan.meta)
        num_rows = scan.num_rows
        row_limit: Optional[int] = None
        n_input = scan.num_rows
        read_per_row = float(
            sum(handle.itemsize for handle in scan.columns.values())
        )
        flops = 0.0
        fixed_flops = 0.0
        fixed_bytes = 0.0
        ops: List[str] = [f"scan {pipeline.source.table}"]

        for stage in pipeline.stages:
            if isinstance(stage, FilterStage):
                predicate = stage.plan.predicate
                mask = predicate.evaluate(
                    {name: host[name] for name in predicate.columns()}
                )
                ids = np.flatnonzero(mask).astype(np.int64)
                keep = (
                    list(stage.keep) if stage.keep is not None else list(host)
                )
                host = {name: host[name][ids] for name in keep}
                meta = {name: meta[name] for name in keep}
                num_rows = len(ids)
                predicate_flops, _cols = _predicate_cost(predicate)
                flops += predicate_flops + 1.0
                ops.append("filter")
            elif isinstance(stage, ProjectStage):
                new_host: Dict[str, np.ndarray] = {}
                new_meta: Dict[str, ColumnMeta] = {}
                for name, expr in stage.plan.outputs:
                    if isinstance(expr, ColRef):
                        if expr.name not in host:
                            raise PlanError(
                                f"column {expr.name!r} not available "
                                f"(have: {', '.join(host)})"
                            )
                        new_host[name] = host[expr.name]
                        new_meta[name] = meta[expr.name]
                    else:
                        new_host[name] = np.asarray(expr.evaluate(host))
                        new_meta[name] = ColumnMeta(ctype=ColumnType.FLOAT64)
                        flops += expr.flops
                host, meta = new_host, new_meta
                ops.append("project")
            elif isinstance(stage, ProbeStage):
                plan = stage.plan
                build = outputs[stage.build_pid]
                left_ids, right_ids = join_reference(
                    host[plan.left_on], build.handle(plan.right_on).peek()
                )
                needed = stage.keep
                new_host, new_meta = {}, {}
                for name in host:
                    if needed is not None and name not in needed:
                        continue
                    new_host[name] = host[name][left_ids]
                    new_meta[name] = meta[name]
                for name, handle in build.columns.items():
                    if needed is not None and name not in needed:
                        continue
                    new_host[name] = handle.peek()[right_ids]
                    new_meta[name] = build.meta[name]
                host, meta = new_host, new_meta
                num_rows = len(left_ids)
                row_limit = None  # joins drop the annotation, like eager
                table_bytes = (
                    backend.HASH_SLOT_BYTES
                    * backend.HASH_TABLE_OVERALLOC
                    * max(build.num_rows, 1)
                )
                flops += 6.0  # hash + probe chain per streamed row
                fixed_flops += 10.0 * build.num_rows  # table build
                fixed_bytes += 2.0 * table_bytes + float(
                    sum(
                        handle.itemsize * len(handle)
                        for handle in build.columns.values()
                    )
                )
                ops.append(f"probe[{plan.left_on}={plan.right_on}]")
            elif isinstance(stage, SemiProbeStage):
                plan = stage.plan
                build = outputs[stage.build_pid]
                key_handle = build.handle(plan.right_on)
                build_keys = (
                    key_handle.data
                    if isinstance(key_handle, _HostColumn)
                    else key_handle.peek()
                )
                mask = np.isin(host[plan.left_on], build_keys)
                if plan.anti:
                    mask = ~mask
                # Ascending row ids: the same order the eager path's
                # unique/setdiff1d over matched ids produces.
                ids = np.flatnonzero(mask).astype(np.int64)
                needed = stage.keep
                new_host, new_meta = {}, {}
                for name in host:
                    if needed is not None and name not in needed:
                        continue
                    new_host[name] = host[name][ids]
                    new_meta[name] = meta[name]
                host, meta = new_host, new_meta
                num_rows = len(ids)
                row_limit = None  # joins drop the annotation, like eager
                table_bytes = (
                    backend.HASH_SLOT_BYTES
                    * backend.HASH_TABLE_OVERALLOC
                    * max(build.num_rows, 1)
                )
                flops += 6.0  # hash + membership chain per streamed row
                fixed_flops += 10.0 * build.num_rows  # table build
                fixed_bytes += 2.0 * table_bytes + float(
                    sum(
                        handle.itemsize * len(handle)
                        for handle in build.columns.values()
                    )
                )
                kind = "anti" if plan.anti else "semi"
                ops.append(f"{kind}[{plan.left_on}={plan.right_on}]")
            else:  # LimitStage
                n = stage.plan.n
                row_limit = n if row_limit is None else min(n, row_limit)
                ops.append(f"limit {n}")

        sink = pipeline.sink
        if isinstance(sink, GroupBySink):
            return self._fused_group_by(
                sink.plan,
                host,
                meta,
                num_rows,
                n_input,
                read_per_row,
                flops,
                fixed_flops,
                fixed_bytes,
                ops,
            )
        # Stream the surviving rows out: the kernel's only DRAM writes.
        out_bytes = float(sum(array.nbytes for array in host.values()))
        ops.append("stream-out")
        backend.launch_fused(
            "|".join(ops),
            n_input,
            flops=flops,
            read=read_per_row,
            written=out_bytes / max(n_input, 1),
            fixed_flops=fixed_flops,
            fixed_bytes=fixed_bytes,
        )
        columns = {
            name: backend._wrap(array, f"compiled::{name}")
            for name, array in host.items()
        }
        relation = _Relation(
            columns=columns, meta=meta, num_rows=num_rows, row_limit=row_limit
        )
        if isinstance(sink, SortSink):
            return ex._apply_order_by(relation, sink.plan)
        if isinstance(sink, TopKSink):
            return ex._apply_top_k(relation, sink.plan)
        return relation

    # -- fused aggregation --------------------------------------------------------

    def _expr_values(
        self, expr: Optional[Expr], host: Dict[str, np.ndarray]
    ) -> np.ndarray:
        assert expr is not None
        if isinstance(expr, ColRef):
            if expr.name not in host:
                raise PlanError(
                    f"column {expr.name!r} not available "
                    f"(have: {', '.join(host)})"
                )
            return host[expr.name]
        return np.asarray(expr.evaluate(host))

    def _composite_key_host(
        self,
        keys: Tuple[str, ...],
        host: Dict[str, np.ndarray],
        meta: Dict[str, ColumnMeta],
    ) -> Tuple[np.ndarray, List[int]]:
        """Host mirror of ``QueryExecutor._composite_key`` (same strides,
        same expression arithmetic, same derived-key guard)."""
        if keys[0] not in host:
            raise PlanError(
                f"column {keys[0]!r} not available (have: {', '.join(host)})"
            )
        if len(keys) == 1:
            return host[keys[0]], [1]
        for key in keys[1:]:
            if meta[key].max_value < 0:
                raise PlanError(
                    f"group-by key {key!r} has no known value bound (it is "
                    "a derived column); place it first in the key list or "
                    "group by the base columns it derives from"
                )
        strides = [meta[k].max_value + 1 for k in keys]
        expr: Expr = ColRef(keys[0])
        for key, stride in zip(keys[1:], strides[1:]):
            expr = expr * Lit(stride) + ColRef(key)
        return np.asarray(expr.evaluate(host)), strides

    def _fused_group_by(
        self,
        plan: GroupBy,
        host: Dict[str, np.ndarray],
        meta: Dict[str, ColumnMeta],
        num_rows: int,
        n_input: int,
        read_per_row: float,
        flops: float,
        fixed_flops: float,
        fixed_bytes: float,
        ops: List[str],
    ) -> _Relation:
        ex = self.executor
        backend = self.backend
        aggregates = plan.aggregates
        if not plan.keys:
            # Global aggregation: the reductions ride inside the fused
            # kernel; only the scalar results cross back to the host.
            columns: Dict[str, _HostColumn] = {}
            out_meta: Dict[str, ColumnMeta] = {}
            for aggregate in aggregates:
                if aggregate.kind == "count" and aggregate.expr is None:
                    scalar = float(num_rows)
                else:
                    values = self._expr_values(aggregate.expr, host)
                    scalar = reduction_host(values, aggregate.kind)
                    flops += 1.0
                if aggregate.kind == "count":
                    columns[aggregate.name] = _HostColumn(
                        np.asarray([int(scalar)], dtype=np.int64)
                    )
                    out_meta[aggregate.name] = ColumnMeta(ctype=ColumnType.INT64)
                else:
                    columns[aggregate.name] = _HostColumn(
                        np.asarray([scalar], dtype=np.float64)
                    )
                    out_meta[aggregate.name] = ColumnMeta(
                        ctype=ColumnType.FLOAT64
                    )
            ops.append(f"agg[{len(aggregates)}]")
            backend.launch_fused(
                "|".join(ops),
                n_input,
                flops=flops,
                read=read_per_row,
                written=0.0,
                fixed_flops=fixed_flops,
                fixed_bytes=fixed_bytes + 8.0 * len(aggregates),
            )
            backend.device.transfer_to_host(
                8 * max(len(aggregates), 1), "fused_agg_result"
            )
            return _Relation(columns=columns, meta=out_meta, num_rows=1)

        key_data, strides = self._composite_key_host(plan.keys, host, meta)
        agg_columns: Dict[str, np.ndarray] = {}
        agg_meta: Dict[str, ColumnMeta] = {}
        unique_keys: Optional[np.ndarray] = None
        for aggregate in aggregates:
            if aggregate.kind == "count" and aggregate.expr is None:
                values = key_data  # values are ignored for counts
            else:
                values = self._expr_values(aggregate.expr, host)
            group_keys, group_values = grouped_aggregate_host(
                key_data, values, aggregate.kind
            )
            if unique_keys is None:
                unique_keys = group_keys
            agg_columns[aggregate.name] = group_values
            agg_meta[aggregate.name] = ColumnMeta(
                ctype=ColumnType.INT64
                if aggregate.kind == "count"
                else ColumnType.FLOAT64
            )
        assert unique_keys is not None
        groups = len(unique_keys)
        # The partial aggregation is INSIDE the fused kernel (per-tile
        # hash tables); only the partial-merge breaks the pipeline.
        group_row_bytes = 8.0 + 8.0 * len(aggregates)
        table_bytes = (
            backend.HASH_SLOT_BYTES
            * backend.HASH_TABLE_OVERALLOC
            * max(groups, 1)
        )
        ops.append(f"partial-agg[{len(aggregates)}]")
        backend.launch_fused(
            "|".join(ops),
            n_input,
            flops=flops + 10.0 + 2.0 * len(aggregates),
            read=read_per_row,
            written=groups * group_row_bytes / max(n_input, 1),
            fixed_flops=fixed_flops,
            fixed_bytes=fixed_bytes + 2.0 * table_bytes,
        )
        backend.runtime._charge(
            f"groupmerge[{len(aggregates)} aggs]",
            groups,
            flops=2.0 * len(aggregates),
            read=group_row_bytes,
            written=group_row_bytes,
            passes=2,
        )
        # Same host round-trip as the eager group-by: composite keys come
        # down, decomposed per-column keys go back up.
        out_keys = backend._wrap(unique_keys, "compiled::group_keys")
        composite = backend.download(out_keys).astype(np.int64)
        shim = _Relation(columns={}, meta=meta, num_rows=groups)
        key_columns = ex._decompose_keys(plan.keys, composite, strides, shim)
        ordered: Dict[str, object] = {}
        ordered_meta: Dict[str, ColumnMeta] = {}
        for name, (data, key_meta) in key_columns.items():
            ordered[name] = backend.upload(data, label=f"groupkey.{name}")
            ordered_meta[name] = key_meta
        for name, values in agg_columns.items():
            ordered[name] = backend._wrap(values, "compiled::group_values")
        ordered_meta.update(agg_meta)
        return _Relation(columns=ordered, meta=ordered_meta, num_rows=groups)
