"""Explicit pipeline IR: plans decomposed into fusable segments.

Hyper-style pipeline decomposition (Neumann; Eiger and the tile-based
model of Shanbhag et al. carry it to GPUs): a query plan splits at its
*pipeline breakers* — operators that must see every input row before any
output row exists.  Between breakers, rows flow through a chain of
row-local operators (scan → filter → project → probe) that a compiling
engine can execute as **one fused kernel over tiles**, touching DRAM once
instead of once per operator.

Breakers here, matching the executor's materialisation points:

* **Join build** — the build side of a join materialises before the
  probe streams through it; the build side becomes its own pipeline
  ending in a :class:`BuildSink`.
* **GroupBy merge** — per-tile partial aggregates exist inside the
  pipeline, but merging them into final groups breaks it
  (:class:`GroupBySink`).  Downstream operators start a new pipeline fed
  by the merged groups.
* **Sort** — an :class:`OrderBy` consumes everything before emitting
  (:class:`SortSink`).

The lowering pass (:func:`lower_plan`) mirrors the eager executor's
top-down column pruning exactly — each source and stage records the same
``needed`` column lists :class:`~repro.query.executor.QueryExecutor`
would request — so a runner that interprets this IR (fused or eager)
produces bit-identical relations, column order included.  The compiled
backend's runner (:mod:`repro.query.compiled`) is that interpreter; the
fusion-boundary cost model (:func:`repro.query.optimizer.fusion_decision`)
chooses per pipeline whether fusing actually wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PlanError
from repro.query.plan import (
    Filter,
    GroupBy,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    TopK,
)

# -- sources ------------------------------------------------------------------


@dataclass(frozen=True)
class TableSource:
    """Pipeline input: a base-table scan.

    ``columns`` is the pruned column list the scan uploads (None = all),
    exactly what the eager executor's ``needed`` propagation would
    request.
    """

    table: str
    columns: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class PipelineSource:
    """Pipeline input: the materialised output of an earlier pipeline."""

    pid: int


Source = Union[TableSource, PipelineSource]


# -- stages (row-local operators, fusable) ------------------------------------


@dataclass(frozen=True)
class FilterStage:
    """Predicate selection.  ``keep`` is the pruned column list the
    surviving rows carry forward (None = all)."""

    plan: Filter
    keep: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class ProjectStage:
    """Column projection / expression derivation."""

    plan: Project


@dataclass(frozen=True)
class ProbeStage:
    """Probe side of a join: stream rows against ``build_pid``'s
    materialised build relation.  ``keep`` prunes the joined output."""

    plan: Join
    build_pid: int
    keep: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class SemiProbeStage:
    """Probe side of a semi/anti join: stream rows against
    ``build_pid``'s materialised key set, keeping (semi) or dropping
    (anti) matching rows.  Only left columns survive; ``keep`` prunes
    them."""

    plan: SemiJoin
    build_pid: int
    keep: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class LimitStage:
    """Row-limit annotation (applied at materialisation, like the eager
    executor's ``row_limit``)."""

    plan: Limit


Stage = Union[FilterStage, ProjectStage, ProbeStage, SemiProbeStage, LimitStage]


# -- sinks (pipeline breakers / terminals) ------------------------------------


@dataclass(frozen=True)
class BuildSink:
    """Materialise this pipeline's output as a join build side."""

    plan: Union[Join, SemiJoin]


@dataclass(frozen=True)
class GroupBySink:
    """Merge per-tile aggregation partials into final groups."""

    plan: GroupBy


@dataclass(frozen=True)
class SortSink:
    """Full sort of the pipeline's output."""

    plan: OrderBy


@dataclass(frozen=True)
class TopKSink:
    """Sort the pipeline's output and keep the head ``n`` rows."""

    plan: TopK


@dataclass(frozen=True)
class ResultSink:
    """Terminal sink: the query result."""


Sink = Union[BuildSink, GroupBySink, SortSink, TopKSink, ResultSink]


# -- pipelines ----------------------------------------------------------------


@dataclass(frozen=True)
class Pipeline:
    """One unbroken segment: source → row-local stages → sink."""

    pid: int
    source: Source
    stages: Tuple[Stage, ...]
    sink: Sink

    @property
    def fusable(self) -> bool:
        """Whether this segment is a *candidate* for whole-pipeline
        fusion: it scans a base table and contains work a fused kernel
        could absorb (at least one row-local stage, or an aggregation
        sink).  Segments fed by earlier pipelines stay eager — their
        inputs are small materialised breaker outputs, where per-operator
        launches are already cheap.  Whether a candidate actually fuses
        is the cost model's call.
        """
        if not isinstance(self.source, TableSource):
            return False
        has_work = any(
            isinstance(s, (FilterStage, ProjectStage, ProbeStage,
                           SemiProbeStage))
            for s in self.stages
        )
        return has_work or isinstance(self.sink, GroupBySink)

    @property
    def operator_count(self) -> int:
        """Stages plus a non-result sink: the fused kernel's op count."""
        return len(self.stages) + (
            0 if isinstance(self.sink, ResultSink) else 1
        )


@dataclass(frozen=True)
class PipelineProgram:
    """All pipelines of one plan, in dependency order.

    Every :class:`PipelineSource`/``build_pid`` reference points at an
    earlier pipeline, so executing ``pipelines`` front to back satisfies
    all dependencies; ``result_pid`` names the terminal pipeline.
    """

    pipelines: Tuple[Pipeline, ...]
    result_pid: int

    def __post_init__(self) -> None:
        for pipeline in self.pipelines:
            if isinstance(pipeline.source, PipelineSource):
                if pipeline.source.pid >= pipeline.pid:
                    raise PlanError(
                        f"pipeline {pipeline.pid} reads from a later "
                        f"pipeline {pipeline.source.pid}"
                    )
            for stage in pipeline.stages:
                if isinstance(stage, (ProbeStage, SemiProbeStage)) and (
                    stage.build_pid >= pipeline.pid
                ):
                    raise PlanError(
                        f"pipeline {pipeline.pid} probes a later build "
                        f"pipeline {stage.build_pid}"
                    )

    def __len__(self) -> int:
        return len(self.pipelines)


# -- lowering -----------------------------------------------------------------


@dataclass
class _Lowering:
    """Mutable state threaded through one lowering pass."""

    columns_of: Callable[[PlanNode], List[str]]
    pipelines: List[Pipeline] = field(default_factory=list)

    def close(self, source: Source, stages: List[Stage], sink: Sink) -> int:
        pid = len(self.pipelines)
        self.pipelines.append(Pipeline(pid, source, tuple(stages), sink))
        return pid


def _merge_needed(
    state: _Lowering,
    needed: Optional[Sequence[str]],
    extra: frozenset,
    child: PlanNode,
) -> Optional[List[str]]:
    """Mirror of ``QueryExecutor._merge_needed`` (non-restricting form)."""
    if needed is None:
        return None
    merged = set(needed) | set(extra)
    available = set(state.columns_of(child))
    return sorted(merged & available)


def _lower(
    state: _Lowering, node: PlanNode, needed: Optional[Sequence[str]]
) -> Tuple[Source, List[Stage]]:
    """Lower ``node`` into the currently-open pipeline.

    Returns the open pipeline's (source, stages); breakers close the open
    pipeline and start a fresh one fed by its output.  The ``needed``
    propagation replicates the eager executor's recursion case by case,
    which is what makes an IR interpreter bit-identical to it.
    """
    if isinstance(node, Scan):
        columns = tuple(needed) if needed is not None else None
        return TableSource(node.table, columns), []
    if isinstance(node, Filter):
        child_needed = _merge_needed(
            state, needed, node.predicate.columns(), node.child
        )
        source, stages = _lower(state, node.child, child_needed)
        keep = tuple(needed) if needed is not None else None
        stages.append(FilterStage(node, keep))
        return source, stages
    if isinstance(node, Project):
        child_needed = sorted(node.required_columns())
        source, stages = _lower(state, node.child, child_needed)
        stages.append(ProjectStage(node))
        return source, stages
    if isinstance(node, Limit):
        source, stages = _lower(state, node.child, needed)
        stages.append(LimitStage(node))
        return source, stages
    if isinstance(node, Join):
        left_available = state.columns_of(node.left)
        right_available = state.columns_of(node.right)
        overlap = set(left_available) & set(right_available)
        if overlap:
            raise PlanError(
                f"join sides share column names {sorted(overlap)}; "
                "project/rename before joining"
            )
        if needed is None:
            left_needed: Optional[List[str]] = None
            right_needed: Optional[List[str]] = None
        else:
            left_needed = [n for n in needed if n in left_available]
            right_needed = [n for n in needed if n in right_available]
            if node.left_on not in left_needed:
                left_needed.append(node.left_on)
            if node.right_on not in right_needed:
                right_needed.append(node.right_on)
        # Build side first: the probe cannot start until it exists.
        build_source, build_stages = _lower(state, node.right, right_needed)
        build_pid = state.close(build_source, build_stages, BuildSink(node))
        source, stages = _lower(state, node.left, left_needed)
        keep = tuple(needed) if needed is not None else None
        stages.append(ProbeStage(node, build_pid, keep))
        return source, stages
    if isinstance(node, SemiJoin):
        left_available = state.columns_of(node.left)
        if needed is None:
            left_needed: Optional[List[str]] = None
        else:
            left_needed = [n for n in needed if n in left_available]
            if node.left_on not in left_needed:
                left_needed.append(node.left_on)
        # Only the key column of the right side is ever consulted.
        build_source, build_stages = _lower(
            state, node.right, [node.right_on]
        )
        build_pid = state.close(build_source, build_stages, BuildSink(node))
        source, stages = _lower(state, node.left, left_needed)
        keep = tuple(needed) if needed is not None else None
        stages.append(SemiProbeStage(node, build_pid, keep))
        return source, stages
    if isinstance(node, TopK):
        child_needed = _merge_needed(
            state, needed, frozenset({node.key}), node.child
        )
        source, stages = _lower(state, node.child, child_needed)
        pid = state.close(source, stages, TopKSink(node))
        return PipelineSource(pid), []
    if isinstance(node, GroupBy):
        child_needed = sorted(node.required_columns())
        source, stages = _lower(state, node.child, child_needed)
        pid = state.close(source, stages, GroupBySink(node))
        return PipelineSource(pid), []
    if isinstance(node, OrderBy):
        child_needed = _merge_needed(
            state, needed, frozenset({node.key}), node.child
        )
        source, stages = _lower(state, node.child, child_needed)
        pid = state.close(source, stages, SortSink(node))
        return PipelineSource(pid), []
    raise PlanError(f"cannot lower plan node {type(node).__name__}")


def _catalog_columns_of(catalog: Dict[str, object]):
    """An ``columns_of`` callable over a host-table catalog (mirror of
    ``QueryExecutor._output_columns``)."""

    def columns_of(plan: PlanNode) -> List[str]:
        if isinstance(plan, Scan):
            try:
                table = catalog[plan.table]
            except KeyError:
                known = ", ".join(sorted(catalog))
                raise PlanError(
                    f"unknown table {plan.table!r}; catalog has: {known}"
                )
            return list(table.column_names)  # type: ignore[attr-defined]
        if isinstance(plan, Project):
            return [name for name, _expr in plan.outputs]
        if isinstance(plan, GroupBy):
            return list(plan.keys) + [a.name for a in plan.aggregates]
        if isinstance(plan, Join):
            left = columns_of(plan.left)
            right = columns_of(plan.right)
            overlap = set(left) & set(right)
            if overlap:
                raise PlanError(
                    f"join sides share column names {sorted(overlap)}; "
                    "project/rename before joining"
                )
            return left + right
        if isinstance(plan, SemiJoin):
            return columns_of(plan.left)
        children = plan.children()
        if len(children) == 1:
            return columns_of(children[0])
        raise PlanError(f"cannot derive output columns of {plan!r}")

    return columns_of


def lower_plan(
    plan: PlanNode,
    catalog: Optional[Dict[str, object]] = None,
    columns_of: Optional[Callable[[PlanNode], List[str]]] = None,
    needed: Optional[Sequence[str]] = None,
) -> PipelineProgram:
    """Decompose ``plan`` into its pipeline program.

    Column pruning needs plan output schemas: pass either a ``catalog``
    (table name → object with ``column_names``) or a ready ``columns_of``
    callable (the compiled runner passes the executor's own
    ``_output_columns`` so both agree by construction).  ``needed``
    seeds the top-level pruning (None = materialise everything, the
    executor's root behaviour).
    """
    if columns_of is None:
        if catalog is None:
            raise PlanError("lower_plan needs a catalog or a columns_of")
        columns_of = _catalog_columns_of(catalog)
    state = _Lowering(columns_of=columns_of)
    source, stages = _lower(state, plan, needed)
    result_pid = state.close(source, stages, ResultSink())
    return PipelineProgram(tuple(state.pipelines), result_pid)


# -- rendering ----------------------------------------------------------------


def _describe_source(source: Source) -> str:
    if isinstance(source, TableSource):
        columns = (
            "*" if source.columns is None else ", ".join(source.columns)
        )
        return f"scan {source.table}[{columns}]"
    return f"pipeline #{source.pid}"


def _describe_stage(stage: Stage) -> str:
    if isinstance(stage, FilterStage):
        return f"filter {stage.plan.predicate!r}"
    if isinstance(stage, ProjectStage):
        outs = ", ".join(name for name, _ in stage.plan.outputs)
        return f"project [{outs}]"
    if isinstance(stage, ProbeStage):
        return (
            f"probe #{stage.build_pid} on "
            f"{stage.plan.left_on} = {stage.plan.right_on}"
        )
    if isinstance(stage, SemiProbeStage):
        kind = "anti-probe" if stage.plan.anti else "semi-probe"
        return (
            f"{kind} #{stage.build_pid} on "
            f"{stage.plan.left_on} = {stage.plan.right_on}"
        )
    return f"limit {stage.plan.n}"


def _describe_sink(sink: Sink) -> str:
    if isinstance(sink, BuildSink):
        return f"build[{sink.plan.right_on}]"
    if isinstance(sink, GroupBySink):
        keys = ", ".join(sink.plan.keys) if sink.plan.keys else "<global>"
        return f"group-merge[{keys}]"
    if isinstance(sink, SortSink):
        direction = "desc" if sink.plan.descending else "asc"
        return f"sort[{sink.plan.key} {direction}]"
    if isinstance(sink, TopKSink):
        direction = "desc" if sink.plan.descending else "asc"
        return f"top-k[{sink.plan.key} {direction}, n={sink.plan.n}]"
    return "result"


def explain_pipelines(program: PipelineProgram) -> str:
    """Indented textual rendering of a pipeline program."""
    lines = []
    for pipeline in program.pipelines:
        marker = "*" if pipeline.pid == program.result_pid else " "
        fusable = "fusable" if pipeline.fusable else "eager"
        lines.append(
            f"{marker}#{pipeline.pid} [{fusable}] "
            f"{_describe_source(pipeline.source)}"
        )
        for stage in pipeline.stages:
            lines.append(f"    -> {_describe_stage(stage)}")
        lines.append(f"    => {_describe_sink(pipeline.sink)}")
    return "\n".join(lines)
