"""Rule-based logical plan optimizer.

Two classic rewrites, both significant under library execution costs:

* **filter merging** — ``Filter(Filter(x, p1), p2)`` becomes one filter
  with a conjunction.  Each Filter node costs a full selection round
  (flags/scan/compact) plus one gather per carried column; merging
  eliminates a round and hands fusing backends (ArrayFire) a bigger
  predicate tree to fuse.  The trade-off: the merged predicate evaluates
  every conjunct over *all* rows, where sequential filters evaluate later
  conjuncts only over survivors — merging wins when the per-round
  scan/gather costs dominate, which the property tests confirm holds in
  aggregate on this cost model.
* **filter pushdown through projections** — evaluating the predicate
  before deriving projection expressions shrinks the rows every
  downstream kernel touches.

``optimize`` applies the rules bottom-up to a fixpoint.  Rewrites are
purely logical: results are identical (asserted by property tests).

A third, *physical* rewrite is cost-based join selection
(:func:`select_join_strategies`): given base-table cardinalities it
resolves every ``auto``/``cost`` join to the cheapest algorithm the
backend supports, using the same work model as the executor's runtime
dispatch (:func:`choose_join_algorithm`).  It is separate from
:func:`optimize` because it needs a catalog and a backend capability set,
while the logical rules need neither.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from dataclasses import replace

from repro.core.expr import ColRef
from repro.core.predicate import (
    And,
    Between,
    Compare,
    CompareCols,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.query.plan import (
    Filter,
    GroupBy,
    InSubquery,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    ScalarCompare,
    Scan,
    SemiJoin,
    TopK,
)

#: Join algorithms the cost model can choose between, in preference order
#: on ties (hash first: fewest device passes at equal modelled work).
COSTED_JOIN_ALGORITHMS = ("hash", "merge", "nested_loop")

#: Default selectivity guess for a Filter when no statistics exist (the
#: classic System R third).
FILTER_SELECTIVITY = 1.0 / 3.0

# -- join cost model --------------------------------------------------------
#
# Relative per-element work units mirroring the backends' kernel charges
# (see repro/core/*_backend.py and repro/relational/hashjoin.py): the
# absolute scale cancels out, only ratios pick winners.
#
#: NLJ compares every (outer, inner) pair: units per pair.
_NLJ_UNIT = 6.0
#: Merge join radix-sorts both sides (multi-pass) then merges: units per
#: element per side.
_MERGE_UNIT = 40.0
#: Hash join streams each side once through build/probe kernels.
_HASH_UNIT = 12.0
#: Fixed per-kernel-launch work equivalent: biases tiny joins toward the
#: single-launch NLJ, the way launch latency does on the device.
_LAUNCH_UNIT = 2.0e4
#: Launches per algorithm (NLJ: 1; hash: build + probe; merge: radix-sort
#: passes on both sides + merge path).
_LAUNCHES = {"nested_loop": 1.0, "hash": 2.0, "merge": 9.0}


def rename_predicate(
    predicate: Predicate, mapping: Dict[str, str]
) -> Predicate:
    """Rewrite column references through ``mapping`` (output → source)."""
    if isinstance(predicate, Compare):
        return Compare(
            mapping.get(predicate.column, predicate.column),
            predicate.op,
            predicate.value,
        )
    if isinstance(predicate, Between):
        return Between(
            mapping.get(predicate.column, predicate.column),
            predicate.low,
            predicate.high,
        )
    if isinstance(predicate, CompareCols):
        return CompareCols(
            mapping.get(predicate.left, predicate.left),
            predicate.op,
            mapping.get(predicate.right, predicate.right),
        )
    if isinstance(predicate, InSet):
        return InSet(
            mapping.get(predicate.column, predicate.column), predicate.values
        )
    if isinstance(predicate, (InSubquery, ScalarCompare)):
        # The subplan is a closed scope; only the outer column renames.
        return replace(
            predicate,
            column=mapping.get(predicate.column, predicate.column),
        )
    if isinstance(predicate, And):
        return And(tuple(rename_predicate(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(rename_predicate(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Not):
        return Not(rename_predicate(predicate.part, mapping))
    raise TypeError(f"unknown predicate node {predicate!r}")


def _merge_filters(node: Filter) -> Optional[PlanNode]:
    """Filter(Filter(x, inner), outer) -> Filter(x, inner AND outer)."""
    if not isinstance(node.child, Filter):
        return None
    inner = node.child
    return Filter(inner.child, And((inner.predicate, node.predicate)))


def _push_through_project(node: Filter) -> Optional[PlanNode]:
    """Filter(Project(x, outs), p) -> Project(Filter(x, p'), outs).

    Legal when every column the predicate reads is a pass-through
    (``ColRef``) output of the projection; derived columns block the push.
    """
    if not isinstance(node.child, Project):
        return None
    project = node.child
    mapping: Dict[str, str] = {}
    for output_name, expr in project.outputs:
        if isinstance(expr, ColRef):
            mapping[output_name] = expr.name
    if not node.predicate.columns() <= set(mapping):
        return None
    pushed = rename_predicate(node.predicate, mapping)
    return Project(Filter(project.child, pushed), project.outputs)


_FILTER_RULES = (_merge_filters, _push_through_project)


def optimize(plan: PlanNode) -> PlanNode:
    """Apply the rewrite rules bottom-up until nothing changes."""
    rewritten = _optimize_once(plan)
    while rewritten is not None:
        plan = rewritten
        rewritten = _optimize_once(plan)
    return plan


def _optimize_once(plan: PlanNode) -> Optional[PlanNode]:
    """One bottom-up pass; None when the plan is already at fixpoint.

    Nodes are reconstructed *only* when a child actually changed or a
    rule fired, so an unchanged subtree keeps its identity and the
    fixpoint test terminates.
    """
    changed = False

    def rebuild(node: PlanNode) -> PlanNode:
        nonlocal changed
        if isinstance(node, Scan):
            return node
        if isinstance(node, Filter):
            child = rebuild(node.child)
            candidate = (
                node if child is node.child else Filter(child, node.predicate)
            )
            for rule in _FILTER_RULES:
                rewritten = rule(candidate)
                if rewritten is not None:
                    changed = True
                    return rewritten
            if candidate is not node:
                changed = True
            return candidate
        if isinstance(node, Project):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return Project(child, node.outputs)
        if isinstance(node, Join):
            left = rebuild(node.left)
            right = rebuild(node.right)
            if left is node.left and right is node.right:
                return node
            changed = True
            return Join(left, right, node.left_on, node.right_on,
                        node.algorithm)
        if isinstance(node, GroupBy):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return GroupBy(child, node.keys, node.aggregates)
        if isinstance(node, OrderBy):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return OrderBy(child, node.key, node.descending)
        if isinstance(node, Limit):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return Limit(child, node.n)
        if isinstance(node, SemiJoin):
            left = rebuild(node.left)
            right = rebuild(node.right)
            if left is node.left and right is node.right:
                return node
            changed = True
            return replace(node, left=left, right=right)
        if isinstance(node, TopK):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return replace(node, child=child)
        raise TypeError(f"unknown plan node {type(node).__name__}")

    result = rebuild(plan)
    return result if changed else None


def push_down_top_k(plan: PlanNode) -> PlanNode:
    """Fuse ``Limit(OrderBy(x))`` pairs into :class:`TopK` nodes.

    Opt-in (not part of :func:`optimize`): the rewrite changes the
    physical materialisation strategy — sort once, gather only the head
    ``n`` ids per column — while keeping results bit-identical, so the
    binder applies it to SQL plans with a top-level ORDER BY + LIMIT.
    """
    if isinstance(plan, Limit) and isinstance(plan.child, OrderBy):
        inner = plan.child
        return TopK(
            push_down_top_k(inner.child), inner.key, plan.n, inner.descending
        )
    if isinstance(plan, (Join, SemiJoin)):
        left = push_down_top_k(plan.left)
        right = push_down_top_k(plan.right)
        if left is plan.left and right is plan.right:
            return plan
        return replace(plan, left=left, right=right)
    children = plan.children()
    if len(children) == 1:
        child = push_down_top_k(children[0])
        if child is children[0]:
            return plan
        return replace(plan, child=child)
    return plan


# -- cost-based join selection ----------------------------------------------


def join_cost(algorithm: str, left_rows: int, right_rows: int) -> float:
    """Modelled work (arbitrary units) of one join algorithm.

    Mirrors the simulated kernels' cost structure: NLJ is quadratic,
    merge pays multi-pass sorts on both sides, hash streams each side
    once; every algorithm carries its launch overhead so tiny inputs
    prefer the single-launch NLJ.
    """
    if algorithm not in _LAUNCHES:
        raise ValueError(f"no cost model for join algorithm {algorithm!r}")
    n, m = max(left_rows, 0), max(right_rows, 0)
    overhead = _LAUNCHES[algorithm] * _LAUNCH_UNIT
    if algorithm == "nested_loop":
        return _NLJ_UNIT * n * m + overhead
    if algorithm == "merge":
        return _MERGE_UNIT * (n + m) + overhead
    if algorithm == "hash":
        return _HASH_UNIT * (n + m) + overhead
    raise ValueError(f"no cost model for join algorithm {algorithm!r}")


def choose_join_algorithm(
    left_rows: int,
    right_rows: int,
    supported: Sequence[str] = COSTED_JOIN_ALGORITHMS,
) -> str:
    """Cheapest supported algorithm for the given input cardinalities."""
    candidates = [a for a in COSTED_JOIN_ALGORITHMS if a in supported]
    if not candidates:
        raise ValueError(
            f"no supported join algorithm among {tuple(supported)!r}"
        )
    return min(
        candidates, key=lambda a: join_cost(a, left_rows, right_rows)
    )


def estimate_rows(plan: PlanNode, catalog: Dict[str, object]) -> int:
    """Textbook cardinality estimate for a plan node.

    ``catalog`` maps table names to objects with a ``num_rows`` attribute
    (:class:`~repro.relational.table.Table`).  Estimates are deliberately
    simple — scans are exact, filters apply the System R selectivity
    guess, FK-shaped joins keep the larger side — because the join cost
    model only needs order-of-magnitude inputs.
    """
    if isinstance(plan, Scan):
        table = catalog.get(plan.table)
        return int(getattr(table, "num_rows", 0)) if table is not None else 0
    if isinstance(plan, Filter):
        return max(1, int(estimate_rows(plan.child, catalog) * FILTER_SELECTIVITY))
    if isinstance(plan, Join):
        left = estimate_rows(plan.left, catalog)
        right = estimate_rows(plan.right, catalog)
        # FK joins keep each row of the referencing (larger) side once.
        return max(left, right)
    if isinstance(plan, SemiJoin):
        # A semi/anti join can only shrink its left side; reuse the
        # filter guess for the kept fraction.
        return max(
            1, int(estimate_rows(plan.left, catalog) * FILTER_SELECTIVITY)
        )
    if isinstance(plan, GroupBy):
        if not plan.keys:
            return 1
        # Distinct-group guess: sqrt of the input (Cardenas-style shrink).
        return max(1, math.isqrt(estimate_rows(plan.child, catalog)))
    if isinstance(plan, Limit):
        return min(plan.n, estimate_rows(plan.child, catalog))
    if isinstance(plan, TopK):
        return min(plan.n, estimate_rows(plan.child, catalog))
    children = plan.children()
    if len(children) == 1:
        return estimate_rows(children[0], catalog)
    raise TypeError(f"cannot estimate cardinality of {type(plan).__name__}")


# -- fusion-boundary cost model ----------------------------------------------
#
# Whole-pipeline fusion (the `compiled` backend) replaces an eager chain
# of per-operator kernels with ONE kernel touching DRAM once.  That is
# not free money: the fused kernel reads *every* input column over *all*
# rows, while the eager chain's first kernel reads only the predicate
# columns and later kernels touch survivors only.  The model below prices
# both shapes in seconds on the simulated device and is what the
# compiled backend's "auto" mode consults per pipeline segment.
#
# When fusion loses (both covered by the unit tests):
#
# * **tiny inputs** — the eager chain's extra launches cost almost
#   nothing at small ``rows``, while fusion still pays its (amortised)
#   compile share;
# * **low-selectivity early exits** — a narrow predicate column guarding
#   a wide payload: eager scans 4 B/row and then touches only the few
#   survivors, fused drags the full payload through DRAM for every row.

#: Kernel-launch latency the model charges per eager kernel (matches the
#: simulated GTX 1080 Ti's ``launch_latency_s``).
FUSION_LAUNCH_SECONDS = 5.0e-6
#: Effective DRAM bandwidth (484 GB/s at TUNED_PROFILE's 0.92 memory
#: efficiency) used to turn byte counts into seconds.
FUSION_BANDWIDTH = 484.0e9 * 0.92


@dataclass(frozen=True)
class FusionDecision:
    """Outcome of one per-segment fusion call."""

    fuse: bool
    fused_seconds: float
    eager_seconds: float


def fusion_decision(
    rows: int,
    fused_read_bytes_per_row: float,
    eager_first_bytes_per_row: float,
    survivor_bytes_per_row: float,
    num_filters: int,
    eager_launches: int,
    compile_seconds: float = 0.0,
    *,
    launch_seconds: float = FUSION_LAUNCH_SECONDS,
    bandwidth: float = FUSION_BANDWIDTH,
) -> FusionDecision:
    """Should a pipeline segment run as one fused kernel?

    ``fused_read_bytes_per_row`` is every distinct column the fused
    kernel streams (predicate + payload); ``eager_first_bytes_per_row``
    is what the eager chain's first kernel reads (its predicate columns);
    ``survivor_bytes_per_row`` is the carried width of a surviving row.
    Selectivity is estimated as ``FILTER_SELECTIVITY ** num_filters`` —
    no statistics exist, the System R guess again.  ``compile_seconds``
    is the caller's (amortised) codegen share: 0 on a program-cache hit.
    """
    n = max(rows, 0)
    selectivity = FILTER_SELECTIVITY ** max(num_filters, 0)
    survivors = n * selectivity
    fused_bytes = (
        n * fused_read_bytes_per_row + survivors * survivor_bytes_per_row
    )
    # Eager: first kernel scans its inputs over all rows; each further
    # kernel round-trips the surviving working set through DRAM.
    extra_launches = max(eager_launches - 1, 0)
    eager_bytes = (
        n * eager_first_bytes_per_row
        + survivors * survivor_bytes_per_row
        + extra_launches * 2.0 * survivors * survivor_bytes_per_row
    )
    fused_seconds = (
        launch_seconds + fused_bytes / bandwidth + max(compile_seconds, 0.0)
    )
    eager_seconds = (
        max(eager_launches, 1) * launch_seconds + eager_bytes / bandwidth
    )
    return FusionDecision(
        fuse=fused_seconds <= eager_seconds,
        fused_seconds=fused_seconds,
        eager_seconds=eager_seconds,
    )


def select_join_strategies(
    plan: PlanNode,
    catalog: Dict[str, object],
    supported: Sequence[str] = COSTED_JOIN_ALGORITHMS,
) -> PlanNode:
    """Resolve every ``auto``/``cost`` join to a concrete algorithm.

    Explicitly requested algorithms are left untouched; subtrees without
    undecided joins keep their identity (cheap no-op on join-free plans).
    """

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            return node
        if isinstance(node, Join):
            left = rebuild(node.left)
            right = rebuild(node.right)
            algorithm = node.algorithm
            if algorithm in ("auto", "cost"):
                algorithm = choose_join_algorithm(
                    estimate_rows(node.left, catalog),
                    estimate_rows(node.right, catalog),
                    supported,
                )
            if (
                left is node.left
                and right is node.right
                and algorithm == node.algorithm
            ):
                return node
            return Join(left, right, node.left_on, node.right_on, algorithm)
        if isinstance(node, Filter):
            child = rebuild(node.child)
            return node if child is node.child else Filter(child, node.predicate)
        if isinstance(node, Project):
            child = rebuild(node.child)
            return node if child is node.child else Project(child, node.outputs)
        if isinstance(node, GroupBy):
            child = rebuild(node.child)
            if child is node.child:
                return node
            return GroupBy(child, node.keys, node.aggregates)
        if isinstance(node, OrderBy):
            child = rebuild(node.child)
            if child is node.child:
                return node
            return OrderBy(child, node.key, node.descending)
        if isinstance(node, Limit):
            child = rebuild(node.child)
            return node if child is node.child else Limit(child, node.n)
        if isinstance(node, SemiJoin):
            left = rebuild(node.left)
            right = rebuild(node.right)
            algorithm = node.algorithm
            if algorithm in ("auto", "cost"):
                algorithm = choose_join_algorithm(
                    estimate_rows(node.left, catalog),
                    estimate_rows(node.right, catalog),
                    supported,
                )
            if (
                left is node.left
                and right is node.right
                and algorithm == node.algorithm
            ):
                return node
            return replace(node, left=left, right=right, algorithm=algorithm)
        if isinstance(node, TopK):
            child = rebuild(node.child)
            return node if child is node.child else replace(node, child=child)
        raise TypeError(f"unknown plan node {type(node).__name__}")

    return rebuild(plan)
