"""Rule-based logical plan optimizer.

Two classic rewrites, both significant under library execution costs:

* **filter merging** — ``Filter(Filter(x, p1), p2)`` becomes one filter
  with a conjunction.  Each Filter node costs a full selection round
  (flags/scan/compact) plus one gather per carried column; merging
  eliminates a round and hands fusing backends (ArrayFire) a bigger
  predicate tree to fuse.  The trade-off: the merged predicate evaluates
  every conjunct over *all* rows, where sequential filters evaluate later
  conjuncts only over survivors — merging wins when the per-round
  scan/gather costs dominate, which the property tests confirm holds in
  aggregate on this cost model.
* **filter pushdown through projections** — evaluating the predicate
  before deriving projection expressions shrinks the rows every
  downstream kernel touches.

``optimize`` applies the rules bottom-up to a fixpoint.  Rewrites are
purely logical: results are identical (asserted by property tests).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.expr import ColRef
from repro.core.predicate import (
    And,
    Between,
    Compare,
    CompareCols,
    Not,
    Or,
    Predicate,
)
from repro.query.plan import (
    Filter,
    GroupBy,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
)


def rename_predicate(
    predicate: Predicate, mapping: Dict[str, str]
) -> Predicate:
    """Rewrite column references through ``mapping`` (output → source)."""
    if isinstance(predicate, Compare):
        return Compare(
            mapping.get(predicate.column, predicate.column),
            predicate.op,
            predicate.value,
        )
    if isinstance(predicate, Between):
        return Between(
            mapping.get(predicate.column, predicate.column),
            predicate.low,
            predicate.high,
        )
    if isinstance(predicate, CompareCols):
        return CompareCols(
            mapping.get(predicate.left, predicate.left),
            predicate.op,
            mapping.get(predicate.right, predicate.right),
        )
    if isinstance(predicate, And):
        return And(tuple(rename_predicate(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(rename_predicate(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Not):
        return Not(rename_predicate(predicate.part, mapping))
    raise TypeError(f"unknown predicate node {predicate!r}")


def _merge_filters(node: Filter) -> Optional[PlanNode]:
    """Filter(Filter(x, inner), outer) -> Filter(x, inner AND outer)."""
    if not isinstance(node.child, Filter):
        return None
    inner = node.child
    return Filter(inner.child, And((inner.predicate, node.predicate)))


def _push_through_project(node: Filter) -> Optional[PlanNode]:
    """Filter(Project(x, outs), p) -> Project(Filter(x, p'), outs).

    Legal when every column the predicate reads is a pass-through
    (``ColRef``) output of the projection; derived columns block the push.
    """
    if not isinstance(node.child, Project):
        return None
    project = node.child
    mapping: Dict[str, str] = {}
    for output_name, expr in project.outputs:
        if isinstance(expr, ColRef):
            mapping[output_name] = expr.name
    if not node.predicate.columns() <= set(mapping):
        return None
    pushed = rename_predicate(node.predicate, mapping)
    return Project(Filter(project.child, pushed), project.outputs)


_FILTER_RULES = (_merge_filters, _push_through_project)


def optimize(plan: PlanNode) -> PlanNode:
    """Apply the rewrite rules bottom-up until nothing changes."""
    rewritten = _optimize_once(plan)
    while rewritten is not None:
        plan = rewritten
        rewritten = _optimize_once(plan)
    return plan


def _optimize_once(plan: PlanNode) -> Optional[PlanNode]:
    """One bottom-up pass; None when the plan is already at fixpoint.

    Nodes are reconstructed *only* when a child actually changed or a
    rule fired, so an unchanged subtree keeps its identity and the
    fixpoint test terminates.
    """
    changed = False

    def rebuild(node: PlanNode) -> PlanNode:
        nonlocal changed
        if isinstance(node, Scan):
            return node
        if isinstance(node, Filter):
            child = rebuild(node.child)
            candidate = (
                node if child is node.child else Filter(child, node.predicate)
            )
            for rule in _FILTER_RULES:
                rewritten = rule(candidate)
                if rewritten is not None:
                    changed = True
                    return rewritten
            if candidate is not node:
                changed = True
            return candidate
        if isinstance(node, Project):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return Project(child, node.outputs)
        if isinstance(node, Join):
            left = rebuild(node.left)
            right = rebuild(node.right)
            if left is node.left and right is node.right:
                return node
            changed = True
            return Join(left, right, node.left_on, node.right_on,
                        node.algorithm)
        if isinstance(node, GroupBy):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return GroupBy(child, node.keys, node.aggregates)
        if isinstance(node, OrderBy):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return OrderBy(child, node.key, node.descending)
        if isinstance(node, Limit):
            child = rebuild(node.child)
            if child is node.child:
                return node
            changed = True
            return Limit(child, node.n)
        raise TypeError(f"unknown plan node {type(node).__name__}")

    result = rebuild(plan)
    return result if changed else None
