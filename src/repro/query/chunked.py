"""Chunked, double-buffered scans: pipelining PCIe transfer with compute.

The plain executor uploads every scanned column in full before the first
kernel runs, so a cold-cache query pays ``T + C`` (transfer then compute)
even though the two use different hardware engines.  This module splits an
eligible scan into row chunks and prices each chunk's work on a rotating
set of asynchronous streams: chunk ``k+1``'s H2D copy overlaps chunk
``k``'s kernels (and its D2H result copy), driving the makespan toward the
``max(T, C)`` bound — the classic CUDA streams pattern.

Eligibility is deliberately narrow, because chunks must be combinable on
the host without changing query semantics:

* the plan is a ``Scan`` followed by any chain of row-local ``Filter`` /
  ``Project`` nodes (each output row depends on exactly one input row), and
* optionally one *global* aggregate on top whose kinds all combine
  associatively (``sum``/``count``/``min``/``max``; ``avg`` only when a
  single chunk makes combination the identity).

Anything else — joins, keyed group-bys, sorts, limits — falls back to the
ordinary whole-table execution.  With ``scan_chunks=1`` the sub-plan, the
catalog slice, and therefore the exact operator sequence are identical to
the un-chunked path, which is what makes the serial-equivalence tests
bit-exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.query.plan import Filter, GroupBy, PlanNode, Project, Scan
from repro.relational.column import Column
from repro.relational.table import Table, concat_tables

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.query.executor import ExecutionResult, QueryExecutor

#: Aggregate kinds whose per-chunk partials combine associatively.
COMBINABLE_AGGREGATES = frozenset({"sum", "count", "min", "max"})


def chunkable_table(plan: PlanNode, allow_avg: bool = False) -> Optional[str]:
    """Name of the scanned table if ``plan`` is chunk-eligible, else None.

    ``allow_avg`` admits ``avg`` aggregates (valid only when a single
    chunk makes the combine step the identity).
    """
    node = plan
    if isinstance(node, GroupBy):
        if node.keys:
            return None
        for aggregate in node.aggregates:
            if aggregate.kind in COMBINABLE_AGGREGATES:
                continue
            if aggregate.kind == "avg" and allow_avg:
                continue
            return None
        node = node.child
    while isinstance(node, (Filter, Project)):
        node = node.child
    if isinstance(node, Scan):
        return node.table
    return None


def chunk_bounds(num_rows: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``num_rows`` into ``chunks`` contiguous (lo, hi) ranges.

    Ranges are balanced (sizes differ by at most one row) and cover the
    table exactly.  An empty table yields one empty range so the sub-plan
    still executes once.
    """
    if chunks < 1:
        raise ValueError(f"chunk count must be >= 1: {chunks}")
    chunks = min(chunks, num_rows) if num_rows > 0 else 1
    base, extra = divmod(num_rows, chunks)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def slice_table(table: Table, lo: int, hi: int) -> Table:
    """Row range ``[lo, hi)`` of ``table`` as a new table.

    Dictionaries are carried over unchanged, so chunk outputs re-combine
    without re-encoding; a full-range slice reproduces the original
    column payloads byte-for-byte.
    """
    columns = [
        Column(c.name, c.ctype, c.data[lo:hi], c.dictionary) for c in table
    ]
    return Table(table.name, columns)


def try_execute_chunked(
    executor: "QueryExecutor", plan: PlanNode, result_name: str
) -> Optional["ExecutionResult"]:
    """Run ``plan`` chunk-by-chunk on rotating streams, or return None.

    Returns None when the plan shape is not eligible (the caller then
    falls back to whole-table execution).  The cost report covers the
    whole pipelined execution: its ``simulated_seconds`` is the makespan
    across all engines, which is where the overlap win shows up.
    """
    from repro.query.executor import ExecutionReport, ExecutionResult, QueryExecutor

    requested = executor.scan_chunks or 1
    table_name = chunkable_table(plan, allow_avg=requested == 1)
    if table_name is None or table_name not in executor.catalog:
        return None
    table = executor.catalog[table_name]
    bounds = chunk_bounds(table.num_rows, requested)

    device = executor.backend.device
    cursor = device.profiler.mark()
    t0 = device.clock.now
    device.memory.reset_peak()
    num_streams = max(1, executor.scan_streams)
    streams = [
        device.create_stream(f"scan-chunk-{i}") for i in range(num_streams)
    ]

    chunk_tables: List[Table] = []
    for i, (lo, hi) in enumerate(bounds):
        catalog = dict(executor.catalog)
        catalog[table_name] = slice_table(table, lo, hi)
        sub = QueryExecutor(
            executor.backend, catalog, join_strategy=executor.join_strategy
        )
        with device.stream_scope(streams[i % num_streams]):
            relation = sub._execute(plan, needed=None)
            chunk_tables.append(
                sub._materialise(relation, f"{result_name}.chunk{i}")
            )
    device.synchronize()

    combined = _combine_chunks(plan, chunk_tables, result_name)
    report = ExecutionReport(
        backend=executor.backend.name,
        simulated_seconds=device.clock.elapsed_since(t0),
        summary=device.profiler.summary(since=cursor),
        peak_device_bytes=device.memory.peak_bytes,
    )
    return ExecutionResult(table=combined, report=report)


def _combine_chunks(
    plan: PlanNode, tables: List[Table], result_name: str
) -> Table:
    """Merge per-chunk outputs back into one result table."""
    if len(tables) == 1:
        return tables[0].rename(result_name)
    if isinstance(plan, GroupBy):
        return _combine_aggregates(plan, tables, result_name)
    return concat_tables(result_name, tables)


def _combine_aggregates(
    plan: GroupBy, tables: List[Table], result_name: str
) -> Table:
    """Fold per-chunk global-aggregate rows into the final single row.

    ``sum`` and ``count`` partials add; ``min``/``max`` partials reduce
    with the same comparator.  Chunked float sums round differently from a
    single whole-table reduction (float addition is not associative), the
    same way a real multi-stream reduction would.
    """
    columns: List[Column] = []
    for aggregate in plan.aggregates:
        parts = [t.column(aggregate.name) for t in tables]
        values = np.concatenate([p.data for p in parts])
        if aggregate.kind in ("sum", "count"):
            value = values.sum()
        elif aggregate.kind == "min":
            value = values.min()
        else:  # max (avg never reaches here: it requires a single chunk)
            value = values.max()
        data = np.asarray([value], dtype=parts[0].data.dtype)
        columns.append(Column(aggregate.name, parts[0].ctype, data))
    return Table(result_name, columns)
