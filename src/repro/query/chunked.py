"""Chunked, double-buffered scans: pipelining PCIe transfer with compute.

The plain executor uploads every scanned column in full before the first
kernel runs, so a cold-cache query pays ``T + C`` (transfer then compute)
even though the two use different hardware engines.  This module splits an
eligible scan into row chunks and prices each chunk's work on a rotating
set of asynchronous streams: chunk ``k+1``'s H2D copy overlaps chunk
``k``'s kernels (and its D2H result copy), driving the makespan toward the
``max(T, C)`` bound — the classic CUDA streams pattern.

Chunking is also the *graceful degradation* path for memory pressure:
when a whole-table plan raises :class:`~repro.errors.DeviceMemoryError`,
:meth:`QueryExecutor.execute` retries here with a chunk count sized from
the device's remaining free bytes, so each chunk's working set fits.

Eligibility is deliberately narrow, because chunks must be combinable on
the host without changing query semantics:

* the plan is a ``Scan`` followed by any chain of row-local ``Filter`` /
  ``Project`` nodes (each output row depends on exactly one input row);
* optionally one aggregation on top:

  - a *global* aggregate whose kinds all combine associatively
    (``sum``/``count``/``min``/``max``; ``avg`` only when a single chunk
    makes combination the identity), or
  - a *keyed* group-by with the same combinable kinds — here ``avg`` is
    always allowed, recombined as a count-weighted mean (a helper
    ``count(*)`` is injected into the per-chunk plan when the query does
    not already carry one);

* ``OrderBy``/``Limit`` wrappers are admitted only above a keyed
  group-by: group outputs are small, so re-sorting the combined result on
  the host matches the whole-table semantics without re-pricing a sort of
  the full input.

Anything else — joins, sorts over base tables — falls back to the
ordinary whole-table execution.  With ``scan_chunks=1`` the sub-plan, the
catalog slice, and therefore the exact operator sequence are identical to
the un-chunked path, which is what makes the serial-equivalence tests
bit-exact; keyed group-by plans therefore only take the chunked path when
more than one chunk is requested.

One *opt-in* extension widens eligibility for the OOM-recovery path
(``probe_joins=True``; never on by default, so configured scan-chunking
keeps its narrow contract): a keyed group-by over a join whose one side
is a plain (Filter/Project)* scan chain.  The other side (the *build*
side) is executed once and materialised to a host table; each chunk then
joins a row slice of the probe table against a re-scan of that build
table.  Group partials recombine exactly like the ordinary keyed path.
This is what lets Q3-class join+aggregate queries complete when even a
single side's working set exceeds device memory.

When the executor carries a tiered column store, each chunk's
sub-executor receives a :class:`~repro.storage.tiered.StoreSlice` view so
scans promote only the covering compressed chunks of its row range.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.query.plan import (
    Aggregate,
    Filter,
    GroupBy,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    TopK,
)
from repro.relational.column import Column
from repro.relational.table import Table, concat_tables
from repro.relational.types import ColumnType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.query.executor import ExecutionResult, QueryExecutor

#: Aggregate kinds whose per-chunk partials combine associatively.
COMBINABLE_AGGREGATES = frozenset({"sum", "count", "min", "max"})

#: Name of the helper ``count(*)`` injected into per-chunk group-bys so
#: ``avg`` partials can be recombined as a count-weighted mean.  Stripped
#: from the combined output.
CHUNK_COUNT_HELPER = "__chunk_rows"


def _peel_wrappers(plan: PlanNode) -> Tuple[PlanNode, List[PlanNode]]:
    """Strip leading OrderBy/Limit/TopK nodes; returns (inner, wrappers).

    Wrappers come back outermost-first; re-apply them in reverse.  A
    ``TopK`` peels like the OrderBy→Limit pair it fuses: the host
    re-sort plus head slice reproduce its semantics exactly.
    """
    wrappers: List[PlanNode] = []
    node = plan
    while isinstance(node, (OrderBy, Limit, TopK)):
        wrappers.append(node)
        node = node.child
    return node, wrappers


def chunkable_table(
    plan: PlanNode, allow_avg: bool = False, probe_joins: bool = False
) -> Optional[str]:
    """Name of the scanned table if ``plan`` is chunk-eligible, else None.

    ``allow_avg`` admits ``avg`` aggregates in *global* aggregations
    (valid only when a single chunk makes the combine step the identity);
    keyed group-bys may always carry ``avg``.  ``probe_joins`` (opt-in,
    used by OOM recovery) additionally admits a keyed group-by over a
    join with one plain scan-chain side — the probe table's name is
    returned.
    """
    node, wrappers = _peel_wrappers(plan)
    if wrappers and not (isinstance(node, GroupBy) and node.keys):
        # Host re-sorting is only sound for small grouped outputs.
        return None
    if isinstance(node, GroupBy):
        keyed = bool(node.keys)
        for aggregate in node.aggregates:
            if aggregate.kind in COMBINABLE_AGGREGATES:
                continue
            if aggregate.kind == "avg" and (keyed or allow_avg):
                continue
            return None
        node = node.child
    while isinstance(node, (Filter, Project)):
        node = node.child
    if isinstance(node, Scan):
        return node.table
    if probe_joins:
        parts = _probe_join_parts(plan)
        if parts is not None:
            return parts.probe_table
    return None


class _ProbeJoinParts:
    """Decomposition of a chunkable join+group-by plan (probe mode)."""

    def __init__(
        self,
        inner: GroupBy,
        mid: List[PlanNode],
        join: Join,
        probe_side: str,
        probe_table: str,
    ) -> None:
        self.inner = inner
        self.mid = mid  # Filter/Project chain between group-by and join
        self.join = join
        self.probe_side = probe_side  # "left" | "right"
        self.probe_table = probe_table

    @property
    def build_plan(self) -> PlanNode:
        return self.join.right if self.probe_side == "left" else self.join.left

    @property
    def build_key(self) -> str:
        return (
            self.join.right_on if self.probe_side == "left"
            else self.join.left_on
        )


def _scan_chain_table(node: PlanNode) -> Optional[str]:
    """Table name when ``node`` is a (Filter/Project)* chain over a Scan."""
    while isinstance(node, (Filter, Project)):
        node = node.child
    return node.table if isinstance(node, Scan) else None


def _probe_join_parts(plan: PlanNode) -> Optional[_ProbeJoinParts]:
    """Decompose ``plan`` for probe-side join chunking, or return None.

    Eligible shape: wrappers* over a keyed GroupBy with combinable (or
    ``avg``) aggregates, over a (Filter/Project)* chain, over a Join
    with at least one (Filter/Project)*Scan side.  When both sides
    qualify the *right* side is probed (the conventional large fact-table
    position); the other side becomes the build input, executed once.
    """
    node, _wrappers = _peel_wrappers(plan)
    if not (isinstance(node, GroupBy) and node.keys):
        return None
    for aggregate in node.aggregates:
        if aggregate.kind not in COMBINABLE_AGGREGATES | {"avg"}:
            return None
    inner = node
    mid: List[PlanNode] = []
    node = node.child
    while isinstance(node, (Filter, Project)):
        mid.append(node)
        node = node.child
    if not isinstance(node, Join):
        return None
    right_table = _scan_chain_table(node.right)
    if right_table is not None:
        return _ProbeJoinParts(inner, mid, node, "right", right_table)
    left_table = _scan_chain_table(node.left)
    if left_table is not None:
        return _ProbeJoinParts(inner, mid, node, "left", left_table)
    return None


def chunk_bounds(num_rows: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``num_rows`` into ``chunks`` contiguous (lo, hi) ranges.

    Ranges are balanced (sizes differ by at most one row) and cover the
    table exactly.  An empty table yields one empty range so the sub-plan
    still executes once.
    """
    if chunks < 1:
        raise ValueError(f"chunk count must be >= 1: {chunks}")
    chunks = min(chunks, num_rows) if num_rows > 0 else 1
    base, extra = divmod(num_rows, chunks)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def slice_table(table: Table, lo: int, hi: int) -> Table:
    """Row range ``[lo, hi)`` of ``table`` as a new table.

    Dictionaries are carried over unchanged, so chunk outputs re-combine
    without re-encoding; a full-range slice reproduces the original
    column payloads byte-for-byte.
    """
    columns = [
        Column(c.name, c.ctype, c.data[lo:hi], c.dictionary) for c in table
    ]
    return Table(table.name, columns)


def _chunk_plan(inner: PlanNode) -> PlanNode:
    """The plan each chunk actually runs.

    Equal to ``inner`` except when a keyed group-by carries ``avg``
    without a plain ``count(*)``: then a helper count is appended so the
    combine step can weight the per-chunk means.
    """
    if not (isinstance(inner, GroupBy) and inner.keys):
        return inner
    has_avg = any(a.kind == "avg" for a in inner.aggregates)
    has_count = any(
        a.kind == "count" and a.expr is None for a in inner.aggregates
    )
    if not has_avg or has_count:
        return inner
    helper = Aggregate(name=CHUNK_COUNT_HELPER, kind="count", expr=None)
    return replace(inner, aggregates=inner.aggregates + (helper,))


#: Catalog name of the once-executed build side in probe-join chunking.
#: Leading underscores keep it clear of user/TPC-H table names.
PROBE_BUILD_TABLE = "__probe_build"


def _slice_store(store, table_name: str, lo: int, hi: int):
    """Store view clamping ``table_name`` fetches to ``[lo, hi)``."""
    if store is None:
        return None
    from repro.storage.tiered import StoreSlice

    return StoreSlice(store, table_name, lo, hi)


def _probe_sub_plan(probe: _ProbeJoinParts, build_name: str) -> PlanNode:
    """The per-chunk plan: the join's build side swapped for a scan of
    the materialised build table, avg helper injected as usual."""
    if probe.probe_side == "right":
        join: PlanNode = replace(probe.join, left=Scan(build_name))
    else:
        join = replace(probe.join, right=Scan(build_name))
    node = join
    for mid_node in reversed(probe.mid):
        node = replace(mid_node, child=node)
    return replace(_chunk_plan(probe.inner), child=node)


def _build_needed(
    executor: "QueryExecutor", probe: _ProbeJoinParts
) -> Optional[List[str]]:
    """Columns the build side must materialise (None = all).

    With no nodes between the group-by and the join, only the join key
    plus the group-by's requirements that come from the build side are
    needed; an intervening Filter/Project makes the analysis non-local,
    so everything is kept.
    """
    if probe.mid:
        return None
    available = set(executor._output_columns(probe.build_plan))
    needed = set(probe.inner.required_columns()) & available
    needed.add(probe.build_key)
    return sorted(needed)


def try_execute_chunked(
    executor: "QueryExecutor",
    plan: PlanNode,
    result_name: str,
    chunks: Optional[int] = None,
    probe_joins: bool = False,
) -> Optional["ExecutionResult"]:
    """Run ``plan`` chunk-by-chunk on rotating streams, or return None.

    Returns None when the plan shape is not eligible (the caller then
    falls back to whole-table execution).  ``chunks`` overrides the
    executor's configured ``scan_chunks`` — the OOM-recovery path uses it
    to size chunks from the device's free bytes, and passes
    ``probe_joins=True`` to admit the join+group-by shape (build side
    executed once, probe side sliced per chunk).  The cost report covers
    the whole pipelined execution: its ``simulated_seconds`` is the
    makespan across all engines, which is where the overlap win shows up.
    """
    from repro.query.executor import ExecutionReport, ExecutionResult, QueryExecutor

    requested = chunks if chunks is not None else (executor.scan_chunks or 1)
    table_name = chunkable_table(plan, allow_avg=requested == 1)
    probe: Optional[_ProbeJoinParts] = None
    if table_name is None and probe_joins:
        probe = _probe_join_parts(plan)
        if probe is not None:
            table_name = probe.probe_table
    if table_name is None or table_name not in executor.catalog:
        return None
    inner, wrappers = _peel_wrappers(plan)
    keyed = isinstance(inner, GroupBy) and bool(inner.keys)
    if (keyed or probe is not None) and requested == 1:
        # scan_chunks=1 promises the exact un-chunked operator sequence;
        # these paths recombine on the host, so they need >= 2 chunks.
        return None
    table = executor.catalog[table_name]
    bounds = chunk_bounds(table.num_rows, requested)

    device = executor.backend.device
    cursor = device.profiler.mark()
    t0 = device.clock.now
    device.memory.reset_peak()
    num_streams = max(1, executor.scan_streams)
    streams = [
        device.create_stream(f"scan-chunk-{i}") for i in range(num_streams)
    ]

    build_table: Optional[Table] = None
    if probe is not None:
        # Execute the build side ONCE on the full catalog and land it on
        # the host; each chunk re-scans it (an honest per-chunk re-upload
        # of the — post-filter, usually small — build columns).
        build_exec = QueryExecutor(
            executor.backend,
            executor.catalog,
            join_strategy=executor.join_strategy,
            store=executor.store,
        )
        build_relation = build_exec._execute_root(
            probe.build_plan, needed=_build_needed(executor, probe)
        )
        build_table = build_exec._materialise(build_relation, PROBE_BUILD_TABLE)
        build_relation = None  # release the build's device handles
        sub_plan: PlanNode = _probe_sub_plan(probe, PROBE_BUILD_TABLE)
    else:
        sub_plan = _chunk_plan(inner) if keyed else plan

    chunk_tables: List[Table] = []
    for i, (lo, hi) in enumerate(bounds):
        catalog = dict(executor.catalog)
        catalog[table_name] = slice_table(table, lo, hi)
        if build_table is not None:
            catalog[PROBE_BUILD_TABLE] = build_table
        sub = QueryExecutor(
            executor.backend,
            catalog,
            join_strategy=executor.join_strategy,
            store=_slice_store(executor.store, table_name, lo, hi),
        )
        with device.stream_scope(streams[i % num_streams]):
            relation = sub._execute_root(sub_plan, needed=None)
            chunk_tables.append(
                sub._materialise(relation, f"{result_name}.chunk{i}")
            )
    device.synchronize()

    if keyed:
        combined = _combine_keyed_groups(inner, chunk_tables, result_name)
        combined = _apply_wrappers(combined, wrappers, result_name)
    else:
        combined = _combine_chunks(plan, chunk_tables, result_name)
    report = ExecutionReport(
        backend=executor.backend.name,
        simulated_seconds=device.clock.elapsed_since(t0),
        summary=device.profiler.summary(since=cursor),
        peak_device_bytes=device.memory.peak_bytes,
    )
    return ExecutionResult(table=combined, report=report)


def _combine_chunks(
    plan: PlanNode, tables: List[Table], result_name: str
) -> Table:
    """Merge per-chunk outputs back into one result table."""
    if len(tables) == 1:
        return tables[0].rename(result_name)
    if isinstance(plan, GroupBy):
        return _combine_aggregates(plan, tables, result_name)
    return concat_tables(result_name, tables)


def _combine_aggregates(
    plan: GroupBy, tables: List[Table], result_name: str
) -> Table:
    """Fold per-chunk global-aggregate rows into the final single row.

    ``sum`` and ``count`` partials add; ``min``/``max`` partials reduce
    with the same comparator.  Chunked float sums round differently from a
    single whole-table reduction (float addition is not associative), the
    same way a real multi-stream reduction would.
    """
    columns: List[Column] = []
    for aggregate in plan.aggregates:
        parts = [t.column(aggregate.name) for t in tables]
        values = np.concatenate([p.data for p in parts])
        if aggregate.kind in ("sum", "count"):
            value = values.sum()
        elif aggregate.kind == "min":
            value = values.min()
        else:  # max (avg never reaches here: it requires a single chunk)
            value = values.max()
        data = np.asarray([value], dtype=parts[0].data.dtype)
        columns.append(Column(aggregate.name, parts[0].ctype, data))
    return Table(result_name, columns)


def _combine_keyed_groups(
    plan: GroupBy, tables: List[Table], result_name: str
) -> Table:
    """Merge per-chunk keyed group-by outputs into one grouped table.

    Groups are matched by key tuple across chunks and emitted in
    ascending key order — the same order the whole-table path produces
    (``np.unique`` over the composite key is ascending, and the composite
    encoding is monotone in the key tuple).  ``avg`` partials recombine
    as a count-weighted mean, so the result matches the whole-table value
    up to float round-off.
    """
    keys = list(plan.keys)
    concat = concat_tables(result_name, tables)
    key_data = [concat.column(k).data for k in keys]
    # Per-group row counts exist only to weight avg partials; plans
    # without avg need no count column at all.
    has_avg = any(a.kind == "avg" for a in plan.aggregates)
    counts = np.zeros(concat.num_rows, dtype=np.int64)
    if has_avg:
        count_name = next(
            (
                a.name for a in plan.aggregates
                if a.kind == "count" and a.expr is None
            ),
            CHUNK_COUNT_HELPER,
        )
        counts = concat.column(count_name).data.astype(np.int64)

    # Group chunk rows by key tuple; order[i] is the i-th distinct tuple
    # in ascending order.
    row_keys = list(zip(*(arr.tolist() for arr in key_data)))
    order = sorted(set(row_keys))
    index = {key: i for i, key in enumerate(order)}
    inverse = np.asarray([index[key] for key in row_keys], dtype=np.int64)
    k = len(order)
    group_counts = np.bincount(inverse, weights=counts, minlength=k)

    columns: List[Column] = []
    for name, arr in zip(keys, key_data):
        source = concat.column(name)
        first_rows = np.asarray(
            [row_keys.index(key) for key in order], dtype=np.int64
        )
        columns.append(
            Column(name, source.ctype, arr[first_rows], source.dictionary)
        )
    for aggregate in plan.aggregates:
        if aggregate.name == CHUNK_COUNT_HELPER:
            continue
        part = concat.column(aggregate.name)
        values = part.data
        if aggregate.kind in ("sum", "count"):
            data = np.bincount(
                inverse, weights=values.astype(np.float64), minlength=k
            ).astype(part.data.dtype)
        elif aggregate.kind == "avg":
            weighted = np.bincount(
                inverse, weights=values * counts, minlength=k
            )
            data = weighted / np.maximum(group_counts, 1)
        elif aggregate.kind == "min":
            data = np.full(k, np.inf)
            np.minimum.at(data, inverse, values)
            data = data.astype(part.data.dtype)
        else:  # max
            data = np.full(k, -np.inf)
            np.maximum.at(data, inverse, values)
            data = data.astype(part.data.dtype)
        ctype = ColumnType.INT64 if aggregate.kind == "count" else part.ctype
        columns.append(Column(aggregate.name, ctype, data))
    return Table(result_name, columns)


def _apply_wrappers(
    table: Table, wrappers: List[PlanNode], result_name: str
) -> Table:
    """Re-apply peeled OrderBy/Limit/TopK nodes to the combined table."""
    for wrapper in reversed(wrappers):
        if isinstance(wrapper, (OrderBy, TopK)):
            order = np.argsort(table.column(wrapper.key).data, kind="stable")
            if wrapper.descending:
                order = order[::-1]
            if isinstance(wrapper, TopK):
                order = order[: min(wrapper.n, table.num_rows)]
            table = table.take(order)
        else:  # Limit
            n = min(wrapper.n, table.num_rows)  # type: ignore[union-attr]
            table = table.take(np.arange(n))
    return table.rename(result_name)
