"""Text rendering of sweep results (the paper's rows and series)."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.bench.runner import SweepResult


def _format_ms(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value >= 100.0:
        return f"{value:10.1f}"
    if value >= 1.0:
        return f"{value:10.3f}"
    return f"{value:10.4f}"


def render_series(
    result: SweepResult,
    point_header: str = "n",
    show_speedup_vs: Optional[str] = None,
) -> str:
    """One row per sweep point, one simulated-ms column per backend."""
    backends = list(result.series)
    header = [point_header.rjust(12)] + [b.rjust(14) for b in backends]
    if show_speedup_vs is not None:
        others = [b for b in backends if b != show_speedup_vs]
        header += [f"x vs {b}"[:14].rjust(14) for b in others]
    lines = [f"== {result.title} ==", "  ".join(header)]
    for index, point in enumerate(result.points):
        row = [str(point).rjust(12)]
        for backend in backends:
            measurement = result.series[backend][index]
            row.append(
                _format_ms(
                    measurement.simulated_ms if measurement else None
                ).rjust(14)
            )
        if show_speedup_vs is not None:
            base = result.series[show_speedup_vs][index]
            for backend in backends:
                if backend == show_speedup_vs:
                    continue
                other = result.series[backend][index]
                if base is None or other is None or base.simulated_ms == 0:
                    row.append("n/a".rjust(14))
                else:
                    row.append(
                        f"{other.simulated_ms / base.simulated_ms:10.2f}x".rjust(14)
                    )
        lines.append("  ".join(row))
    lines.append("(simulated milliseconds on "
                 "the modelled device; lower is better)")
    return "\n".join(lines)


def render_breakdown(result: SweepResult, point_index: int = 0) -> str:
    """Kernel/transfer/compile breakdown at one sweep point."""
    lines = [
        f"== {result.title} — cost breakdown at "
        f"{result.points[point_index]} ==",
        f"{'backend':>16}  {'total ms':>10}  {'kernel':>10}  "
        f"{'transfer':>10}  {'compile':>10}  {'kernels':>8}",
    ]
    for backend, series in result.series.items():
        measurement = series[point_index]
        if measurement is None:
            lines.append(f"{backend:>16}  {'n/a':>10}")
            continue
        lines.append(
            f"{backend:>16}  {measurement.simulated_ms:10.3f}  "
            f"{measurement.kernel_ms:10.3f}  {measurement.transfer_ms:10.3f}  "
            f"{measurement.compile_ms:10.3f}  {measurement.kernel_count:8d}"
        )
    return "\n".join(lines)


def summarize_winners(result: SweepResult) -> str:
    """Which backend wins at each point (the paper's qualitative claims)."""
    lines = [f"winners for {result.title}:"]
    for index, point in enumerate(result.points):
        best_name = None
        best_ms = None
        for backend, series in result.series.items():
            measurement = series[index]
            if measurement is None:
                continue
            if best_ms is None or measurement.simulated_ms < best_ms:
                best_ms = measurement.simulated_ms
                best_name = backend
        if best_name is None:
            lines.append(f"  {point}: no backend supported the operator")
        else:
            lines.append(f"  {point}: {best_name} ({best_ms:.4f} ms)")
    return "\n".join(lines)


def write_report(
    name: str, text: str, directory: Union[str, Path] = "benchmarks/out"
) -> str:
    """Persist a rendered report under ``benchmarks/out`` and return the
    path (benchmarks both print and save their tables)."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.txt"
    path.write_text(text + "\n")
    return str(path)


def render_all(
    result: SweepResult,
    point_header: str = "n",
    baseline: Optional[str] = None,
) -> str:
    """Series table + winner summary in one string."""
    parts: List[str] = [
        render_series(result, point_header, show_speedup_vs=baseline)
    ]
    parts.append(summarize_winners(result))
    return "\n\n".join(parts)
