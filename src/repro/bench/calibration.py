"""Cost-model calibration report.

Prints every constant the simulation rests on — device peaks, library
efficiency tiers, compile-cost models, algorithm pass structures —
together with the *derived* steady-state throughputs they imply.  This is
the runtime companion to DESIGN.md's "Hardware substitution" section:
when a reviewer asks "why does Boost.Compute lose sorts 2x?", the report
shows the mechanism (4-bit digits → 16 passes) next to the number.
"""

from __future__ import annotations

from typing import List

from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.kernel import TUNED_PROFILE, EfficiencyProfile
from repro.libs.arrayfire.array import ARRAYFIRE_PROFILE
from repro.libs.arrayfire.jit import JitKernelCache
from repro.libs.boost_compute.context import (
    _COMPILE_BASE,
    _COMPILE_PER_UNIT,
    BOOST_COMPUTE_PROFILE,
)
from repro.libs.thrust.vector import THRUST_PROFILE

#: All library tiers in comparison order.
PROFILES = (
    TUNED_PROFILE,
    THRUST_PROFILE,
    ARRAYFIRE_PROFILE,
    BOOST_COMPUTE_PROFILE,
)

#: (library, radix digit bits) — the structural sort difference.
RADIX_DIGITS = (
    ("thrust", 8),
    ("boost.compute", 4),
    ("arrayfire", 8),
    ("handwritten", 8),
)


def effective_bandwidth(
    profile: EfficiencyProfile, spec: DeviceSpec = GTX_1080TI
) -> float:
    """Steady-state DRAM bytes/second a library's kernels achieve."""
    return spec.dram_bandwidth * profile.memory_efficiency


def effective_compute(
    profile: EfficiencyProfile, spec: DeviceSpec = GTX_1080TI
) -> float:
    """Steady-state FLOP/s a library's kernels achieve."""
    return spec.peak_flops * profile.compute_efficiency


def launch_overhead(
    profile: EfficiencyProfile, spec: DeviceSpec = GTX_1080TI
) -> float:
    """Per-launch dispatch cost in seconds."""
    return spec.kernel_launch_latency * profile.launch_multiplier


def render_calibration_report(spec: DeviceSpec = GTX_1080TI) -> str:
    """Human-readable dump of the whole cost model."""
    lines: List[str] = [
        f"== Cost-model calibration (device: {spec.name}) ==",
        "",
        f"device peaks: {spec.peak_flops / 1e12:.2f} TFLOP/s, "
        f"{spec.dram_bandwidth / 1e9:.0f} GB/s DRAM, "
        f"{spec.link.bandwidth / 1e9:.0f} GB/s link ({spec.link.name}), "
        f"{spec.kernel_launch_latency * 1e6:.1f} us launch latency",
        "",
        f"{'library tier':>16}  {'compute':>9}  {'memory':>8}  "
        f"{'eff. GB/s':>10}  {'eff. TFLOP/s':>13}  {'launch us':>10}",
    ]
    for profile in PROFILES:
        lines.append(
            f"{profile.name:>16}  "
            f"{profile.compute_efficiency:9.0%}  "
            f"{profile.memory_efficiency:8.0%}  "
            f"{effective_bandwidth(profile, spec) / 1e9:10.0f}  "
            f"{effective_compute(profile, spec) / 1e12:13.2f}  "
            f"{launch_overhead(profile, spec) * 1e6:10.1f}"
        )
    lines += [
        "",
        "runtime compilation:",
        f"  boost.compute (clBuildProgram): {_COMPILE_BASE * 1e3:.0f} ms + "
        f"{_COMPILE_PER_UNIT * 1e3:.0f} ms per complexity unit",
        f"  arrayfire JIT (NVRTC): {JitKernelCache.COMPILE_BASE * 1e3:.1f} ms"
        f" + {JitKernelCache.COMPILE_PER_NODE * 1e3:.2f} ms per fused node",
        "",
        "radix-sort digit widths (passes for 32-bit keys = 32/bits):",
    ]
    for library, bits in RADIX_DIGITS:
        lines.append(
            f"  {library:>16}: {bits}-bit digits -> {32 // bits} digit passes"
        )
    lines += [
        "",
        "provenance: each constant's mechanism is documented at its",
        "definition site (repro/gpu/*, repro/libs/*) and exercised by the",
        "shape tests in tests/core/test_performance_shapes.py.",
    ]
    return "\n".join(lines)
