"""Workload generators for the operator microbenchmarks.

All generators are seeded and parameterised the way the paper's
experiments sweep them: input size, selectivity, group count, and join
key multiplicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

DEFAULT_SEED = 0x5EED


def uniform_ints(
    n: int, low: int = 0, high: int = 1_000_000, seed: int = DEFAULT_SEED
) -> np.ndarray:
    """Uniform int32 column."""
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, n).astype(np.int32)


def uniform_floats(n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Uniform float64 column in [0, 1)."""
    rng = np.random.default_rng(seed)
    return rng.random(n)


def selective_column(
    n: int, selectivity: float, seed: int = DEFAULT_SEED
) -> Tuple[np.ndarray, float]:
    """Column where ``value < threshold`` selects ~``selectivity`` rows.

    Returns (int32 data in [0, 2^20), threshold).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1]: {selectivity}")
    domain = 1 << 20
    rng = np.random.default_rng(seed)
    data = rng.integers(0, domain, n).astype(np.int32)
    return data, float(selectivity * domain)


def grouped_keys(
    n: int, groups: int, seed: int = DEFAULT_SEED
) -> Tuple[np.ndarray, np.ndarray]:
    """(int32 keys over ``groups`` distinct values, float64 values)."""
    if groups <= 0:
        raise ValueError(f"group count must be positive: {groups}")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, groups, n).astype(np.int32)
    values = rng.random(n)
    return keys, values


def fk_join_keys(
    n_left: int, n_right: int, seed: int = DEFAULT_SEED
) -> Tuple[np.ndarray, np.ndarray]:
    """Foreign-key join inputs: right side has unique keys 0..n_right-1,
    left side references them uniformly (every left row matches exactly
    once) — the TPC-H lineitem→orders shape."""
    rng = np.random.default_rng(seed)
    right = rng.permutation(n_right).astype(np.int32)
    left = rng.integers(0, n_right, n_left).astype(np.int32)
    return left, right


def scatter_permutation(n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """A random permutation of 0..n-1 (int32) for scatter/gather maps."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int32)


@dataclass(frozen=True)
class SelectionWorkload:
    """Materialised inputs for a selection benchmark point."""

    data: np.ndarray
    threshold: float
    selectivity: float


def selection_workload(
    n: int, selectivity: float = 0.1, seed: int = DEFAULT_SEED
) -> SelectionWorkload:
    """Selection input with a calibrated match rate."""
    data, threshold = selective_column(n, selectivity, seed)
    return SelectionWorkload(data=data, threshold=threshold,
                             selectivity=selectivity)
