"""Sweep runner: measures simulated time per backend per parameter point.

The quantity under measurement is *simulated device time* (what the
paper's figures plot as wall-clock on a physical GPU).  A measurement
brackets only the operator under test: uploads happen in the setup phase,
exactly like the paper's methodology of benchmarking operators on
device-resident data.

Warm vs. cold: ``warmup=True`` (default) runs the operator once before
measuring, so one-time costs (OpenCL program builds, ArrayFire JIT
compilations) are amortised as in the paper's steady-state numbers; the
compile-cache ablation flips this off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.backend import OperatorBackend
from repro.core.framework import GpuOperatorFramework, default_framework
from repro.errors import BenchmarkError, UnsupportedOperatorError
from repro.gpu.device import Device, DeviceSpec, GTX_1080TI

#: setup(backend, point) -> state ; run(backend, state) -> result
SetupFn = Callable[[OperatorBackend, Any], Any]
RunFn = Callable[[OperatorBackend, Any], Any]


@dataclass(frozen=True)
class Measurement:
    """One (backend, point) measurement."""

    backend: str
    point: Any
    simulated_ms: float
    kernel_count: int
    kernel_ms: float
    transfer_ms: float
    compile_ms: float
    peak_device_mb: float

    @property
    def label(self) -> str:
        """Point label for table rows."""
        return str(self.point)


@dataclass
class SweepResult:
    """All measurements of one sweep, grouped by backend."""

    title: str
    points: List[Any]
    series: Dict[str, List[Optional[Measurement]]] = field(default_factory=dict)

    def ms(self, backend: str) -> List[Optional[float]]:
        """Simulated milliseconds per point for one backend."""
        return [
            m.simulated_ms if m is not None else None
            for m in self.series[backend]
        ]

    def speedup(self, baseline: str, against: str) -> List[Optional[float]]:
        """Per-point ratio time(against) / time(baseline)."""
        base = self.ms(baseline)
        other = self.ms(against)
        out: List[Optional[float]] = []
        for b, o in zip(base, other):
            if b is None or o is None or b == 0.0:
                out.append(None)
            else:
                out.append(o / b)
        return out


class SweepRunner:
    """Runs an operator sweep across backends."""

    def __init__(
        self,
        backend_names: Sequence[str],
        framework: Optional[GpuOperatorFramework] = None,
        device_spec: DeviceSpec = GTX_1080TI,
        warmup: bool = True,
        fresh_backend_per_point: bool = False,
    ) -> None:
        if not backend_names:
            raise BenchmarkError("sweep needs at least one backend")
        self.backend_names = list(backend_names)
        self.framework = framework if framework is not None else default_framework()
        self.device_spec = device_spec
        self.warmup = warmup
        self.fresh_backend_per_point = fresh_backend_per_point

    def run(
        self,
        title: str,
        points: Sequence[Any],
        setup: SetupFn,
        run: RunFn,
    ) -> SweepResult:
        """Measure ``run`` at every (backend, point).

        Backends that raise :class:`UnsupportedOperatorError` record a
        ``None`` measurement for that point (rendered as "n/a", matching
        the paper's unsupported-operator cells).
        """
        result = SweepResult(title=title, points=list(points))
        for name in self.backend_names:
            backend = self._make_backend(name)
            series: List[Optional[Measurement]] = []
            for point in points:
                if self.fresh_backend_per_point:
                    backend = self._make_backend(name)
                series.append(self._measure(backend, name, point, setup, run))
            result.series[name] = series
        return result

    def _make_backend(self, name: str) -> OperatorBackend:
        return self.framework.create(name, Device(self.device_spec))

    def _measure(
        self,
        backend: OperatorBackend,
        name: str,
        point: Any,
        setup: SetupFn,
        run: RunFn,
    ) -> Optional[Measurement]:
        try:
            state = setup(backend, point)
        except UnsupportedOperatorError:
            return None
        device = backend.device
        try:
            if self.warmup:
                run(backend, state)
            device.memory.reset_peak()
            cursor = device.profiler.mark()
            t0 = device.clock.now
            run(backend, state)
            elapsed = device.clock.elapsed_since(t0)
            summary = device.profiler.summary(since=cursor)
        except UnsupportedOperatorError:
            return None
        return Measurement(
            backend=name,
            point=point,
            simulated_ms=elapsed * 1e3,
            kernel_count=summary.kernel_count,
            kernel_ms=summary.kernel_time * 1e3,
            transfer_ms=summary.transfer_time * 1e3,
            compile_ms=summary.compile_time * 1e3,
            peak_device_mb=device.memory.peak_bytes / 1e6,
        )


def run_simple_sweep(
    title: str,
    backend_names: Sequence[str],
    points: Sequence[Any],
    setup: SetupFn,
    run: RunFn,
    warmup: bool = True,
    fresh_backend_per_point: bool = False,
) -> SweepResult:
    """One-call convenience wrapper over :class:`SweepRunner`."""
    runner = SweepRunner(
        backend_names,
        warmup=warmup,
        fresh_backend_per_point=fresh_backend_per_point,
    )
    return runner.run(title, points, setup, run)
