"""Benchmark harness: workloads, sweep runner, reports, charts, calibration."""

from repro.bench.calibration import (
    effective_bandwidth,
    effective_compute,
    launch_overhead,
    render_calibration_report,
)
from repro.bench.charts import render_bar_chart, render_scaling_chart

from repro.bench.report import (
    render_all,
    render_breakdown,
    render_series,
    summarize_winners,
    write_report,
)
from repro.bench.runner import (
    Measurement,
    SweepResult,
    SweepRunner,
    run_simple_sweep,
)
from repro.bench.workloads import (
    SelectionWorkload,
    fk_join_keys,
    grouped_keys,
    scatter_permutation,
    selection_workload,
    selective_column,
    uniform_floats,
    uniform_ints,
)

__all__ = [
    "render_calibration_report",
    "effective_bandwidth",
    "effective_compute",
    "launch_overhead",
    "render_bar_chart",
    "render_scaling_chart",
    "SweepRunner",
    "SweepResult",
    "Measurement",
    "run_simple_sweep",
    "render_series",
    "render_breakdown",
    "render_all",
    "summarize_winners",
    "write_report",
    "uniform_ints",
    "uniform_floats",
    "selective_column",
    "selection_workload",
    "SelectionWorkload",
    "grouped_keys",
    "fk_join_keys",
    "scatter_permutation",
]
