"""Dependency-free ASCII charts for sweep results.

The paper presents its evaluation as log-log line plots; in a terminal,
a horizontal bar chart per sweep point carries the same information.
Bars are log-scaled so the orders-of-magnitude gaps (hash join vs. NLJ)
stay readable.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.bench.runner import SweepResult

#: Glyph used for bar bodies.
BAR = "█"
HALF = "▌"


def _bar(value_ms: float, smallest_ms: float, width: int) -> str:
    """Log-scaled bar: ``width`` chars span the min..max decade range."""
    if value_ms <= 0.0 or smallest_ms <= 0.0:
        return ""
    ratio = math.log10(value_ms / smallest_ms) if value_ms > smallest_ms else 0.0
    cells = 1.0 + ratio * 10.0  # 10 chars per decade above the minimum
    cells = min(cells, float(width))
    full = int(cells)
    return BAR * full + (HALF if cells - full >= 0.5 else "")


def render_bar_chart(
    result: SweepResult,
    point_index: int = -1,
    width: int = 48,
) -> str:
    """Horizontal log-scale bars for one sweep point, slowest last."""
    points = result.points
    point = points[point_index]
    rows: List[tuple] = []
    for backend, series in result.series.items():
        measurement = series[point_index]
        rows.append(
            (backend, measurement.simulated_ms if measurement else None)
        )
    timed = [r for r in rows if r[1] is not None]
    if not timed:
        return f"== {result.title} @ {point} ==\n(no supporting backend)"
    smallest = min(ms for _name, ms in timed)
    timed.sort(key=lambda row: row[1])
    name_width = max(len(name) for name, _ms in rows)
    lines = [f"== {result.title} @ {point} (log scale, 10 chars/decade) =="]
    for name, ms in timed:
        lines.append(
            f"{name.rjust(name_width)}  {ms:10.4f} ms  "
            f"{_bar(ms, smallest, width)}"
        )
    for name, ms in rows:
        if ms is None:
            lines.append(
                f"{name.rjust(name_width)}  {'n/a':>10}     "
                "(unsupported — Table II)"
            )
    return "\n".join(lines)


def render_scaling_chart(
    result: SweepResult,
    backend: str,
    width: int = 40,
) -> str:
    """One backend's series across all points as log-scaled bars.

    Linear operators show bars growing ~10 chars per 10x input; super-
    linear ones grow faster — scaling shape at a glance.
    """
    series = result.ms(backend)
    timed: List[Optional[float]] = list(series)
    positive = [ms for ms in timed if ms is not None and ms > 0.0]
    if not positive:
        return f"== {result.title} [{backend}] ==\n(no measurements)"
    smallest = min(positive)
    point_width = max(len(str(p)) for p in result.points)
    lines = [f"== {result.title} [{backend}] =="]
    for point, ms in zip(result.points, timed):
        label = str(point).rjust(point_width)
        if ms is None:
            lines.append(f"{label}  {'n/a':>10}")
        else:
            lines.append(
                f"{label}  {ms:10.4f} ms  {_bar(ms, smallest, width)}"
            )
    return "\n".join(lines)
