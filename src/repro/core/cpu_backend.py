"""NumPy reference backend — the correctness oracle.

Executes every operator with plain NumPy on the host and charges nothing
to any simulated device.  Tests compare every GPU backend against this
oracle; it also serves as the semantic definition of each operator.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.backend import (
    Operator,
    OperatorBackend,
    OperatorSupport,
    SupportLevel,
    join_reference,
)
from repro.core.expr import Expr
from repro.core.predicate import Predicate
from repro.gpu.device import Device


class CpuReferenceBackend(OperatorBackend):
    """Plain-NumPy operator implementations (no device, no costs)."""

    name = "cpu-reference"

    def __init__(self, device: Optional[Device] = None) -> None:
        # The oracle does not price anything, but keeping a device slot
        # preserves the backend interface for the framework registry.
        super().__init__(device if device is not None else Device())

    # -- data movement -------------------------------------------------------

    def upload(self, array: np.ndarray, label: str = "column") -> np.ndarray:
        return np.ascontiguousarray(array)

    def download(self, handle: np.ndarray) -> np.ndarray:
        return np.asarray(handle).copy()

    # -- operators -------------------------------------------------------------

    def selection(
        self, columns: Dict[str, np.ndarray], predicate: Predicate
    ) -> np.ndarray:
        mask = predicate.evaluate(columns)
        return np.flatnonzero(mask).astype(np.int64)

    def nested_loop_join(
        self, left_keys: np.ndarray, right_keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return join_reference(left_keys, right_keys)

    def merge_join(
        self, left_keys: np.ndarray, right_keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return join_reference(left_keys, right_keys)

    def hash_join(
        self, left_keys: np.ndarray, right_keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return join_reference(left_keys, right_keys)

    def grouped_aggregation(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        agg: str = "sum",
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._check_agg(agg)
        if len(keys) != len(values):
            raise ValueError(
                f"grouped_aggregation: {len(keys)} keys vs {len(values)} values"
            )
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        groups = len(unique_keys)
        if agg == "sum":
            out = np.bincount(
                inverse, weights=values.astype(np.float64), minlength=groups
            )
            out = out.astype(_sum_dtype(values.dtype), copy=False)
        elif agg == "count":
            out = np.bincount(inverse, minlength=groups).astype(np.int64)
        elif agg == "avg":
            sums = np.bincount(
                inverse, weights=values.astype(np.float64), minlength=groups
            )
            counts = np.bincount(inverse, minlength=groups)
            out = sums / counts
        elif agg == "min":
            out = np.full(groups, np.inf)
            np.minimum.at(out, inverse, values.astype(np.float64))
            out = out.astype(_minmax_dtype(values.dtype), copy=False)
        else:  # max
            out = np.full(groups, -np.inf)
            np.maximum.at(out, inverse, values.astype(np.float64))
            out = out.astype(_minmax_dtype(values.dtype), copy=False)
        return unique_keys, out

    def reduction(self, values: np.ndarray, agg: str = "sum") -> float:
        self._check_agg(agg)
        if agg == "count":
            return float(len(values))
        if len(values) == 0:
            if agg == "sum":
                return 0.0
            raise ValueError(f"reduction {agg!r} of an empty column")
        if agg == "sum":
            return float(values.sum(dtype=np.float64))
        if agg == "avg":
            return float(values.mean(dtype=np.float64))
        if agg == "min":
            return float(values.min())
        return float(values.max())

    def sort(self, values: np.ndarray, descending: bool = False) -> np.ndarray:
        result = np.sort(values, kind="stable")
        return result[::-1].copy() if descending else result

    def sort_by_key(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        descending: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        if descending:
            order = order[::-1]
        return keys[order].copy(), values[order].copy()

    def prefix_sum(self, values: np.ndarray) -> np.ndarray:
        acc = np.cumsum(values, dtype=_sum_dtype(values.dtype))
        if len(acc):
            acc = np.roll(acc, 1)
            acc[0] = 0
        return acc.astype(values.dtype, copy=False)

    def gather(self, source: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return source[indices.astype(np.int64)].copy()

    def scatter(
        self, source: np.ndarray, indices: np.ndarray, length: int
    ) -> np.ndarray:
        out = np.zeros(length, dtype=source.dtype)
        out[indices.astype(np.int64)] = source
        return out

    def product(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        if len(left) != len(right):
            raise ValueError(f"product: {len(left)} vs {len(right)} elements")
        return left * right

    def compute(self, columns: Dict[str, np.ndarray], expr: Expr) -> np.ndarray:
        if not expr.columns():
            raise ValueError(f"expression {expr!r} references no column")
        return np.asarray(expr.evaluate(columns))

    def iota(self, n: int) -> np.ndarray:
        return np.arange(n, dtype=np.int64)

    # -- metadata -----------------------------------------------------------------

    def support(self) -> Dict[Operator, OperatorSupport]:
        full = OperatorSupport(SupportLevel.FULL, "numpy")
        return {operator: full for operator in Operator}


def _sum_dtype(dtype: np.dtype) -> np.dtype:
    if np.issubdtype(dtype, np.integer) or dtype == np.dtype(bool):
        return np.dtype(np.int64)
    return np.dtype(np.float64)


def _minmax_dtype(dtype: np.dtype) -> np.dtype:
    if np.issubdtype(dtype, np.integer):
        return np.dtype(np.int64)
    return np.dtype(np.float64)
