"""ArrayFire plug-in backend (Table II's ArrayFire column).

Selections exploit the library's defining feature: the predicate tree is
built as a lazy JIT expression and evaluated with a single fused kernel,
then ``where()`` yields the row ids directly (full support in Table II).
Two conjunction strategies are provided:

* ``"fused"`` (default) — AND/OR fold into the JIT tree: one fused kernel
  for the whole compound predicate;
* ``"set_ops"`` — Table II's literal realization: per-leaf ``where()``
  followed by ``setIntersect()``/``setUnion()`` on row-id lists.

The fusion-ablation benchmark compares the two.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.backend import (
    Handle,
    Operator,
    OperatorBackend,
    OperatorSupport,
    SupportLevel,
    join_reference,
)
from repro.core.expr import (
    ARITH_OPS,
    BinOp,
    CaseWhen,
    ColRef,
    Expr,
    ExtractYear,
    Lit,
)
from repro.core.predicate import (
    And,
    Between,
    Compare,
    CompareCols,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.errors import UnsupportedOperatorError
from repro.gpu.device import Device
from repro.libs import arrayfire as af

#: Outer-relation batch width for the gfor-style nested-loops join: each
#: batch materialises a (batch × inner) boolean matrix — the reason the
#: paper rates ArrayFire's NLJ support as only partial.
GFOR_BATCH = 1024


class ArrayFireBackend(OperatorBackend):
    """Database operators realized over the ArrayFire emulation."""

    name = "arrayfire"

    def __init__(
        self,
        device: Device,
        conjunction_strategy: str = "fused",
        fusion_enabled: bool = True,
    ) -> None:
        super().__init__(device)
        if conjunction_strategy not in ("fused", "set_ops"):
            raise ValueError(
                "conjunction_strategy must be 'fused' or 'set_ops', "
                f"got {conjunction_strategy!r}"
            )
        self.runtime = af.ArrayFireRuntime(device, fusion_enabled=fusion_enabled)
        self.conjunction_strategy = conjunction_strategy

    # -- data movement ---------------------------------------------------------

    def upload(self, array: np.ndarray, label: str = "column") -> Handle:
        return self.runtime.array(np.ascontiguousarray(array), label=label)

    def download(self, handle: Handle) -> np.ndarray:
        return handle.to_host()

    # -- selection -----------------------------------------------------------------

    def selection(
        self, columns: Dict[str, Handle], predicate: Predicate
    ) -> Handle:
        if self.conjunction_strategy == "set_ops" and isinstance(
            predicate, (And, Or)
        ):
            return self._selection_set_ops(columns, predicate)
        mask = self._mask(columns, predicate)
        return af.where(mask)

    def _mask(self, columns: Dict[str, Handle], predicate: Predicate) -> af.Array:
        """Lazy boolean mask for a predicate tree (fusion builds one tree)."""
        if isinstance(predicate, Compare):
            column = columns[predicate.column]
            op = {"lt": "__lt__", "le": "__le__", "gt": "__gt__",
                  "ge": "__ge__", "eq": "__eq__", "ne": "__ne__"}[predicate.op]
            return getattr(column, op)(predicate.value)
        if isinstance(predicate, Between):
            column = columns[predicate.column]
            return (column >= predicate.low) & (column <= predicate.high)
        if isinstance(predicate, CompareCols):
            left = columns[predicate.left]
            right = columns[predicate.right]
            op = {"lt": "__lt__", "le": "__le__", "gt": "__gt__",
                  "ge": "__ge__", "eq": "__eq__", "ne": "__ne__"}[predicate.op]
            return getattr(left, op)(right)
        if isinstance(predicate, And):
            mask = self._mask(columns, predicate.parts[0])
            for part in predicate.parts[1:]:
                mask = mask & self._mask(columns, part)
            return mask
        if isinstance(predicate, Or):
            mask = self._mask(columns, predicate.parts[0])
            for part in predicate.parts[1:]:
                mask = mask | self._mask(columns, part)
            return mask
        if isinstance(predicate, InSet):
            # No native isin: a chain of == comparisons OR-ed together,
            # all of it one lazy tree the JIT fuses into a single kernel.
            column = columns[predicate.column]
            mask = column == predicate.values[0]
            for value in predicate.values[1:]:
                mask = mask | (column == value)
            return mask
        if isinstance(predicate, Not):
            return ~self._mask(columns, predicate.part)
        raise TypeError(f"unsupported predicate node {predicate!r}")

    def _selection_set_ops(
        self, columns: Dict[str, Handle], predicate: Predicate
    ) -> Handle:
        """Table II's literal realization: per-part ``where`` + set ops."""
        if isinstance(predicate, And):
            ids = [self._selection_set_ops(columns, p) for p in predicate.parts]
            result = ids[0]
            for other in ids[1:]:
                result = af.set_intersect(result, other)
            return result
        if isinstance(predicate, Or):
            ids = [self._selection_set_ops(columns, p) for p in predicate.parts]
            result = ids[0]
            for other in ids[1:]:
                result = af.set_union(result, other)
            return result
        return af.where(self._mask(columns, predicate))

    # -- joins -------------------------------------------------------------------------

    def nested_loop_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """gfor-style batched broadcast comparison (partial support).

        Each outer batch broadcasts against the full inner relation,
        materialising a (batch × m) boolean matrix and compacting it — far
        more DRAM traffic than the STL libraries' ``for_each_n`` loop,
        which is why ArrayFire loses the NLJ comparison.
        """
        left = left_keys.storage().peek()
        right = right_keys.storage().peek()
        left_ids, right_ids = join_reference(left, right)
        n, m = len(left), len(right)
        batches = max(1, (n + GFOR_BATCH - 1) // GFOR_BATCH)
        bool_bytes = 1.0
        for _batch in range(batches):
            batch_rows = min(GFOR_BATCH, n)
            elements = batch_rows * m
            # Broadcast compare: read inner keys once, write the full
            # boolean match matrix.
            self.runtime._charge(
                "gfor_nlj_compare",
                elements,
                flops=1.0,
                read=right_keys.dtype.itemsize / max(batch_rows, 1)
                + left_keys.dtype.itemsize / max(m, 1),
                written=bool_bytes,
            )
            # Compact the matrix into (row, col) pairs: scan + gather.
            self.runtime._charge(
                "gfor_nlj_where",
                elements,
                flops=2.0,
                read=2.0 * bool_bytes,
                written=2.0 * 4.0 * (len(left_ids) / max(n * m, 1)),
                passes=3,
            )
        return (
            self.runtime.from_result(left_ids, "af::nlj_left"),
            self.runtime.from_result(right_ids, "af::nlj_right"),
        )

    def merge_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        raise UnsupportedOperatorError(
            self.name, Operator.MERGE_JOIN.value,
            "ArrayFire offers no binary-search/merge primitives (Table II)",
        )

    # -- aggregation -------------------------------------------------------------------

    def grouped_aggregation(
        self,
        keys: Handle,
        values: Handle,
        agg: str = "sum",
    ) -> Tuple[Handle, Handle]:
        self._check_agg(agg)
        if len(keys) != len(values):
            raise ValueError(
                f"grouped_aggregation: {len(keys)} keys vs {len(values)} values"
            )
        if len(keys) == 0:
            return (
                self.runtime.from_result(
                    np.empty(0, keys.dtype), "af::group_keys"
                ),
                self.runtime.from_result(
                    np.empty(0, np.float64), "af::group_values"
                ),
            )
        sorted_keys, sorted_values = af.sort_by_key(keys, values)
        if agg == "sum":
            return af.sum_by_key(sorted_keys, sorted_values)
        if agg == "count":
            ones = self.runtime.constant(1, len(sorted_keys), np.int64)
            return af.count_by_key(sorted_keys, ones)
        if agg == "min":
            return af.min_by_key(sorted_keys, sorted_values)
        if agg == "max":
            return af.max_by_key(sorted_keys, sorted_values)
        # avg: sumByKey / countByKey, divided lazily and evaluated once.
        out_keys, sums = af.sum_by_key(sorted_keys, sorted_values)
        ones = self.runtime.constant(1, len(sorted_keys), np.int64)
        _keys2, counts = af.count_by_key(sorted_keys, ones)
        averages = (sums.cast(np.float64) / counts.cast(np.float64)).eval()
        return out_keys, averages

    def reduction(self, values: Handle, agg: str = "sum") -> float:
        self._check_agg(agg)
        if agg == "count":
            return float(len(values))
        if len(values) == 0:
            if agg == "sum":
                return 0.0
            raise ValueError(f"reduction {agg!r} of an empty column")
        if agg == "sum":
            return float(af.sum(values))
        if agg == "avg":
            return float(af.sum(values)) / len(values)
        if agg == "min":
            return float(af.min(values))
        return float(af.max(values))

    # -- sorts / primitives ---------------------------------------------------------

    def sort(self, values: Handle, descending: bool = False) -> Handle:
        return af.sort(values, ascending=not descending)

    def sort_by_key(
        self, keys: Handle, values: Handle, descending: bool = False
    ) -> Tuple[Handle, Handle]:
        return af.sort_by_key(keys, values, ascending=not descending)

    def prefix_sum(self, values: Handle) -> Handle:
        return af.scan(values, inclusive=False)

    def gather(self, source: Handle, indices: Handle) -> Handle:
        return af.lookup(source, indices)

    def scatter(self, source: Handle, indices: Handle, length: int) -> Handle:
        destination = self.runtime.constant(0, length, source.dtype)
        af.assign_indexed(destination, indices, source)
        return destination

    def product(self, left: Handle, right: Handle) -> Handle:
        return (left * right).eval()

    def compute(self, columns: Dict[str, Handle], expr: Expr) -> Handle:
        """Lazy evaluation: the whole tree fuses into one JIT kernel."""
        lazy = self._lazy_expr(columns, expr)
        if not isinstance(lazy, af.Array):
            raise ValueError(f"expression {expr!r} references no column")
        return lazy.eval()

    def _lazy_expr(self, columns: Dict[str, Handle], expr: Expr):
        if isinstance(expr, ColRef):
            return columns[expr.name]
        if isinstance(expr, Lit):
            return float(expr.value)
        if isinstance(expr, BinOp):
            left = self._lazy_expr(columns, expr.left)
            right = self._lazy_expr(columns, expr.right)
            if isinstance(left, float) and isinstance(right, float):
                return float(ARITH_OPS[expr.op][0](left, right))
            operator = {"add": "__add__", "sub": "__sub__",
                        "mul": "__mul__", "div": "__truediv__"}[expr.op]
            if isinstance(left, float):
                reflected = {"add": "__radd__", "sub": "__rsub__",
                             "mul": "__rmul__", "div": "__rtruediv__"}[expr.op]
                return getattr(right, reflected)(left)
            return getattr(left, operator)(right)
        if isinstance(expr, ExtractYear):
            child = self._lazy_expr(columns, expr.child)
            if isinstance(child, float):
                return 1992.0 + float(np.floor_divide(4 * int(child), 1461))
            # No native floordiv: (q - q mod 1461) / 1461 is exact in
            # float64 (the numerator is a multiple of 1461) and stays one
            # lazy JIT tree.
            quad = child.cast(np.float64) * 4.0
            return ((quad - (quad % 1461.0)) / 1461.0) + 1992.0
        if isinstance(expr, CaseWhen):
            # Branch-free select: blend both arms with the 0/1 mask —
            # arms, mask, and blend all fuse into the same JIT kernel.
            keep = self._mask(columns, expr.condition).cast(np.float64)
            then = self._lazy_expr(columns, expr.then)
            otherwise = self._lazy_expr(columns, expr.otherwise)
            return keep * then + (1.0 - keep) * otherwise
        raise TypeError(f"unsupported expression node {expr!r}")

    def iota(self, n: int) -> Handle:
        return self.runtime.iota(n, np.int64)

    # -- metadata -------------------------------------------------------------------

    def support(self) -> Dict[Operator, OperatorSupport]:
        return {
            Operator.SELECTION: OperatorSupport(
                SupportLevel.FULL, "where(operator())"
            ),
            Operator.CONJUNCTION: OperatorSupport(
                SupportLevel.FULL, "setIntersect()"
            ),
            Operator.DISJUNCTION: OperatorSupport(
                SupportLevel.FULL, "setUnion()"
            ),
            Operator.NESTED_LOOP_JOIN: OperatorSupport(
                SupportLevel.PARTIAL, "gfor + batched compare"
            ),
            Operator.MERGE_JOIN: OperatorSupport(SupportLevel.NONE),
            Operator.HASH_JOIN: OperatorSupport(SupportLevel.NONE),
            Operator.GROUPED_AGGREGATION: OperatorSupport(
                SupportLevel.FULL, "sumByKey(), countByKey()"
            ),
            Operator.REDUCTION: OperatorSupport(SupportLevel.FULL, "sum<T>()"),
            Operator.SORT: OperatorSupport(SupportLevel.FULL, "sort()"),
            Operator.SORT_BY_KEY: OperatorSupport(SupportLevel.FULL, "sort()"),
            Operator.PREFIX_SUM: OperatorSupport(SupportLevel.FULL, "scan()"),
            Operator.SCATTER: OperatorSupport(
                SupportLevel.FULL, "operator()(af::index)"
            ),
            Operator.GATHER: OperatorSupport(SupportLevel.FULL, "lookup()"),
            Operator.PRODUCT: OperatorSupport(
                SupportLevel.FULL, "operator*()"
            ),
        }
