"""Table II: mapping of library functions to database operators.

``render_table_ii`` regenerates the paper's support matrix from the live
backends' ``support()`` declarations; ``PAPER_TABLE_II`` records the
matrix exactly as printed in the paper, so tests can assert our backends
reproduce it cell for cell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.backend import Operator, OperatorBackend, SupportLevel

#: Row layout of the printed table: the paper merges conjunction with
#: disjunction and scatter with gather into single rows.
TABLE_II_ROWS: Tuple[Tuple[str, Tuple[Operator, ...]], ...] = (
    ("Selection", (Operator.SELECTION,)),
    ("Nested-Loops Join", (Operator.NESTED_LOOP_JOIN,)),
    ("Merge Join", (Operator.MERGE_JOIN,)),
    ("Hash Join", (Operator.HASH_JOIN,)),
    ("Grouped Aggregation", (Operator.GROUPED_AGGREGATION,)),
    (
        "Conjunction & Disjunction",
        (Operator.CONJUNCTION, Operator.DISJUNCTION),
    ),
    ("Reduction", (Operator.REDUCTION,)),
    ("Sort by Key", (Operator.SORT_BY_KEY,)),
    ("Sort", (Operator.SORT,)),
    ("Prefix Sum", (Operator.PREFIX_SUM,)),
    ("Scatter & Gather", (Operator.SCATTER, Operator.GATHER)),
    ("Product", (Operator.PRODUCT,)),
)

#: Library column order as printed in the paper.
TABLE_II_LIBRARIES = ("arrayfire", "boost.compute", "thrust")

#: The paper's Table II, cell by cell: row -> library -> (level, functions).
PAPER_TABLE_II: Dict[str, Dict[str, Tuple[str, str]]] = {
    "Selection": {
        "arrayfire": ("+", "where(operator())"),
        "boost.compute": ("~", "transform() & exclusive_scan() & gather()"),
        "thrust": ("~", "transform() & exclusive_scan() & gather()"),
    },
    "Nested-Loops Join": {
        "arrayfire": ("~", ""),
        "boost.compute": ("+", "for_each_n()"),
        "thrust": ("+", "for_each_n()"),
    },
    "Merge Join": {
        "arrayfire": ("-", ""),
        "boost.compute": ("-", ""),
        "thrust": ("-", ""),
    },
    "Hash Join": {
        "arrayfire": ("-", ""),
        "boost.compute": ("-", ""),
        "thrust": ("-", ""),
    },
    "Grouped Aggregation": {
        "arrayfire": ("+", "sumByKey(), countByKey()"),
        "boost.compute": ("+", "reduce_by_key()"),
        "thrust": ("+", "reduce_by_key()"),
    },
    "Conjunction & Disjunction": {
        "arrayfire": ("+", "setIntersect(), setUnion()"),
        "boost.compute": ("+", "bit_and<T>(), bit_or<T>()"),
        "thrust": ("+", "bit_and<T>(), bit_or<T>()"),
    },
    "Reduction": {
        "arrayfire": ("+", "sum<T>()"),
        "boost.compute": ("+", "reduce()"),
        "thrust": ("+", "reduce()"),
    },
    "Sort by Key": {
        "arrayfire": ("+", "sort()"),
        "boost.compute": ("+", "sort_by_key()"),
        "thrust": ("+", "sort_by_key()"),
    },
    "Sort": {
        "arrayfire": ("+", "sort()"),
        "boost.compute": ("+", "sort()"),
        "thrust": ("+", "sort()"),
    },
    "Prefix Sum": {
        "arrayfire": ("+", "scan()"),
        "boost.compute": ("+", "exclusive_scan()"),
        "thrust": ("+", "exclusive_scan()"),
    },
    "Scatter & Gather": {
        "arrayfire": ("+", "lookup(), operator()(af::index)"),
        "boost.compute": ("+", "scatter(), gather()"),
        "thrust": ("+", "scatter(), gather()"),
    },
    "Product": {
        "arrayfire": ("+", "operator*()"),
        "boost.compute": ("+", "transform() & multiplies<T>()"),
        "thrust": ("+", "transform() & multiplies<T>()"),
    },
}


def _merge_levels(levels: Sequence[SupportLevel]) -> SupportLevel:
    """Merged rows print the *weakest* of their operators' levels."""
    ranking = {SupportLevel.NONE: 0, SupportLevel.PARTIAL: 1, SupportLevel.FULL: 2}
    return min(levels, key=lambda level: ranking[level])


def build_support_matrix(
    backends: Sequence[OperatorBackend],
) -> Dict[str, Dict[str, Tuple[SupportLevel, str]]]:
    """Probe backends and assemble the printed-table cells.

    Returns row title -> backend name -> (level, functions string).
    """
    matrix: Dict[str, Dict[str, Tuple[SupportLevel, str]]] = {}
    declarations = {backend.name: backend.support() for backend in backends}
    for title, operators in TABLE_II_ROWS:
        row: Dict[str, Tuple[SupportLevel, str]] = {}
        for backend in backends:
            support = declarations[backend.name]
            levels = [support[op].level for op in operators]
            functions: List[str] = []
            for op in operators:
                cell = support[op].functions
                if cell and cell not in functions:
                    functions.append(cell)
            row[backend.name] = (_merge_levels(levels), ", ".join(functions))
        matrix[title] = row
    return matrix


def render_table_ii(backends: Sequence[OperatorBackend]) -> str:
    """Human-readable reproduction of Table II for the given backends."""
    matrix = build_support_matrix(backends)
    names = [backend.name for backend in backends]
    header = ["Database operator"] + [
        f"{name} (support / function)" for name in names
    ]
    rows: List[List[str]] = []
    for title, _operators in TABLE_II_ROWS:
        row = [title]
        for name in names:
            level, functions = matrix[title][name]
            cell = level.value if not functions else f"{level.value}  {functions}"
            row.append(cell)
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    )
    lines.append("legend: + full support, ~ partial support, - no support")
    return "\n".join(lines)


def compare_with_paper(
    backends: Sequence[OperatorBackend],
) -> List[str]:
    """Differences between our live matrix and the paper's printed levels.

    Returns human-readable mismatch strings (empty list = exact
    reproduction of every support level).
    """
    matrix = build_support_matrix(backends)
    mismatches: List[str] = []
    for title, expected_row in PAPER_TABLE_II.items():
        for library, (expected_level, _functions) in expected_row.items():
            actual = matrix.get(title, {}).get(library)
            if actual is None:
                mismatches.append(f"{title}/{library}: missing from live matrix")
                continue
            if actual[0].value != expected_level:
                mismatches.append(
                    f"{title}/{library}: paper prints {expected_level!r}, "
                    f"live backend reports {actual[0].value!r}"
                )
    return mismatches
