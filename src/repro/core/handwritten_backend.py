"""Hand-written CUDA-kernel backend — the tuned baseline.

The paper's framing: expert-written, use-case-specific kernels are the
performance ceiling that generic libraries trade away for productivity,
and the libraries' missing hashing support ("one of the fundamental
database primitives") leaves "important tuning potential unused".  This
backend realizes each operator the way a CUDA expert would:

* selection — one fused kernel (predicate + decoupled-lookback compaction);
* hash join — build + probe over a device hash table (the operator no
  library offers);
* grouped aggregation — single-pass hash aggregation with atomics
  (no sort needed);
* prefix sum — single-pass decoupled-lookback scan;
* everything else — single tuned kernels at TUNED_PROFILE efficiency.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.backend import (
    Handle,
    Operator,
    OperatorBackend,
    OperatorSupport,
    SupportLevel,
    join_reference,
)
from repro.core.expr import Expr
from repro.core.predicate import (
    And,
    Between,
    Compare,
    CompareCols,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.gpu.device import Device
from repro.gpu.kernel import TUNED_PROFILE
from repro.libs.base import DeviceArray, LibraryRuntime
from repro.relational.hashjoin import HashJoinConfig, SimulatedHashJoin


class HandwrittenRuntime(LibraryRuntime):
    """Runtime for custom kernels (TUNED_PROFILE efficiency)."""

    library_name = "handwritten"

    def __init__(self, device: Device) -> None:
        super().__init__(device, TUNED_PROFILE)


def _predicate_cost(predicate: Predicate) -> Tuple[float, int]:
    """(flops per element, distinct columns read) for a fused predicate."""
    if isinstance(predicate, (Compare, Between, InSet)):
        return predicate.flops, 1
    if isinstance(predicate, CompareCols):
        return predicate.flops, 2
    if isinstance(predicate, (And, Or)):
        flops = 1.0 * (len(predicate.parts) - 1)
        for part in predicate.parts:
            part_flops, _cols = _predicate_cost(part)
            flops += part_flops
        return flops, len(predicate.columns())
    if isinstance(predicate, Not):
        inner_flops, _cols = _predicate_cost(predicate.part)
        return inner_flops + 1.0, len(predicate.columns())
    raise TypeError(f"unsupported predicate node {predicate!r}")


def grouped_aggregate_host(
    key_data: np.ndarray, value_data: np.ndarray, agg: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Host (NumPy-oracle) semantics of a keyed aggregation.

    Shared by the eager hash-aggregate kernel below and the compiled
    backend's fused group-by, so both produce bit-identical groups:
    keys from ``np.unique`` (ascending), float64 accumulation, count as
    int64.
    """
    unique_keys, inverse = np.unique(key_data, return_inverse=True)
    groups = len(unique_keys)
    if agg == "sum":
        out = np.bincount(
            inverse, weights=value_data.astype(np.float64), minlength=groups
        )
    elif agg == "count":
        out = np.bincount(inverse, minlength=groups).astype(np.float64)
    elif agg == "avg":
        sums = np.bincount(
            inverse, weights=value_data.astype(np.float64), minlength=groups
        )
        counts = np.bincount(inverse, minlength=groups)
        out = sums / np.maximum(counts, 1)
    elif agg == "min":
        out = np.full(groups, np.inf)
        np.minimum.at(out, inverse, value_data.astype(np.float64))
    else:
        out = np.full(groups, -np.inf)
        np.maximum.at(out, inverse, value_data.astype(np.float64))
    out_values = out if agg == "avg" else out.astype(
        np.float64 if agg != "count" else np.int64, copy=False
    )
    return unique_keys, np.asarray(out_values)


def reduction_host(data: np.ndarray, agg: str) -> float:
    """Host (NumPy-oracle) semantics of a global reduction.

    Mirrors the eager ``reduction`` operator exactly: float64
    accumulation for sum/avg, empty sums are 0.0, empty min/max/avg
    raise.
    """
    if len(data) == 0:
        if agg == "sum":
            return 0.0
        raise ValueError(f"reduction {agg!r} of an empty column")
    if agg == "sum":
        return float(data.sum(dtype=np.float64))
    if agg == "avg":
        return float(data.mean(dtype=np.float64))
    if agg == "min":
        return float(data.min())
    return float(data.max())


class HandwrittenBackend(OperatorBackend):
    """Expert-tuned custom kernels for every operator."""

    name = "handwritten"

    #: Runtime class instantiated per device; the compiled backend swaps
    #: in its own subclass so its events carry a distinct library name.
    runtime_class = HandwrittenRuntime

    #: Open-addressing hash tables are sized at 2x the key count to keep
    #: probe chains short (load factor 0.5).
    HASH_TABLE_OVERALLOC = 2.0
    #: One hash-table slot: 4-byte key + 4-byte payload (row id).
    HASH_SLOT_BYTES = 8.0

    def __init__(self, device: Device) -> None:
        super().__init__(device)
        self.runtime = self.runtime_class(device)
        self._hash_joiner = SimulatedHashJoin(
            device,
            profile=self.runtime.profile,
            config=HashJoinConfig(
                load_factor=1.0 / self.HASH_TABLE_OVERALLOC,
                slot_bytes=self.HASH_SLOT_BYTES,
            ),
            name=self.runtime.library_name,
        )

    # -- data movement -----------------------------------------------------------

    def upload(self, array: np.ndarray, label: str = "column") -> Handle:
        return self.runtime._upload(np.ascontiguousarray(array), label)

    def download(self, handle: Handle) -> np.ndarray:
        return handle.to_host()

    def _wrap(self, array: np.ndarray, label: str) -> DeviceArray:
        return self.runtime._materialize(np.ascontiguousarray(array), label)

    # -- selection -----------------------------------------------------------------

    def selection(
        self, columns: Dict[str, Handle], predicate: Predicate
    ) -> Handle:
        host_columns = {name: h.peek() for name, h in columns.items()}
        mask = predicate.evaluate(host_columns)
        ids = np.flatnonzero(mask).astype(np.int64)
        n = len(mask)
        flops, column_count = _predicate_cost(predicate)
        itemsize = sum(
            columns[name].itemsize for name in predicate.columns()
        )
        # One fused kernel: read each predicate column once, evaluate, and
        # compact matching row ids with a decoupled-lookback scan in the
        # same launch.
        self.runtime._charge(
            "fused_select",
            n,
            flops=flops + 2.0,
            read=float(itemsize),
            written=8.0 * (len(ids) / max(n, 1)),
            passes=2,
        )
        self.device.transfer_to_host(8, "selection_count")
        return self._wrap(ids, "hw::select_ids")

    # -- joins ------------------------------------------------------------------------

    def nested_loop_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """Tiled NLJ — written as a reference point; a CUDA expert would
        still reach for the hash join below."""
        left, right = left_keys.peek(), right_keys.peek()
        left_ids, right_ids = join_reference(left, right)
        n, m = len(left), len(right)
        self.runtime._charge(
            "tiled_nlj",
            n,
            flops=6.0 * m,  # tighter inner loop than the library functor
            read=left_keys.itemsize + (m * float(right_keys.itemsize)) / 512.0,
            written=16.0 * (len(left_ids) / max(n, 1)),
        )
        return (
            self._wrap(left_ids, "hw::nlj_left"),
            self._wrap(right_ids, "hw::nlj_right"),
        )

    def merge_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        left, right = left_keys.peek(), right_keys.peek()
        left_ids, right_ids = join_reference(left, right)
        n, m = len(left), len(right)
        key_bytes = float(left_keys.itemsize)
        # Tuned radix sorts on both sides (8-bit digits) ...
        for side, size in (("left", n), ("right", m)):
            digit_passes = max(1, left_keys.itemsize)
            self.runtime._charge(
                f"radix_sort_{side}",
                size,
                flops=4.0 * digit_passes,
                read=(2.0 * key_bytes + 8.0) * digit_passes,
                written=(key_bytes + 8.0) * digit_passes,
                passes=2 * digit_passes,
            )
        # ... then a single merge-path pass.
        self.runtime._charge(
            "merge_path",
            n + m,
            flops=3.0,
            read=key_bytes + 8.0,
            written=16.0 * (len(left_ids) / max(n + m, 1)),
            passes=2,
        )
        return (
            self._wrap(left_ids, "hw::mj_left"),
            self._wrap(right_ids, "hw::mj_right"),
        )

    def hash_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """Build a hash table on the smaller side, probe with the other —
        the operator the paper finds missing from every library.  Costing
        and profiler events come from the shared simulated hash-join
        subsystem (:mod:`repro.relational.hashjoin`)."""
        result = self._hash_joiner.join(left_keys.peek(), right_keys.peek())
        return (
            self._wrap(result.left_ids, "hw::hj_left"),
            self._wrap(result.right_ids, "hw::hj_right"),
        )

    # -- aggregation ---------------------------------------------------------------------

    def grouped_aggregation(
        self,
        keys: Handle,
        values: Handle,
        agg: str = "sum",
    ) -> Tuple[Handle, Handle]:
        """Single-pass hash aggregation with atomics — no sort required,
        the classic advantage of custom kernels over the libraries'
        sort-then-reduce composition."""
        self._check_agg(agg)
        if len(keys) != len(values):
            raise ValueError(
                f"grouped_aggregation: {len(keys)} keys vs {len(values)} values"
            )
        key_data, value_data = keys.peek(), values.peek()
        unique_keys, out_values = grouped_aggregate_host(
            key_data, value_data, agg
        )
        groups = len(unique_keys)
        n = len(key_data)
        table_bytes = self.HASH_SLOT_BYTES * self.HASH_TABLE_OVERALLOC * max(
            groups, 1
        )
        self.runtime._charge(
            "hash_aggregate",
            n,
            flops=10.0,  # hash + atomic aggregate
            read=keys.itemsize + values.itemsize,
            # Atomic updates mostly hit L2 when the group count is small;
            # charge one uncoalesced slot write per element scaled down by
            # the expected L2 hit rate for <=64k groups.
            written=4.0 * self.HASH_SLOT_BYTES * min(1.0, groups / 65536.0)
            + 0.5,
            fixed_bytes=2.0 * table_bytes,  # init + final compaction
            passes=2,
        )
        return (
            self._wrap(unique_keys, "hw::group_keys"),
            self._wrap(out_values, "hw::group_values"),
        )

    def reduction(self, values: Handle, agg: str = "sum") -> float:
        self._check_agg(agg)
        if agg == "count":
            return float(len(values))
        data = values.peek()
        if len(data) == 0:
            if agg == "sum":
                return 0.0
            raise ValueError(f"reduction {agg!r} of an empty column")
        self.runtime._charge(
            f"tuned_reduce<{agg}>",
            len(values),
            flops=1.0,
            read=values.itemsize,
            fixed_bytes=2048.0,
            passes=2,
        )
        self.device.transfer_to_host(8, "reduce_result")
        return reduction_host(data, agg)

    # -- sorts / primitives --------------------------------------------------------------

    def sort(self, values: Handle, descending: bool = False) -> Handle:
        data = np.sort(values.peek(), kind="stable")
        if descending:
            data = data[::-1].copy()
        digit_passes = max(1, values.itemsize)
        self.runtime._charge(
            "tuned_radix_sort",
            len(values),
            flops=4.0 * digit_passes,
            read=2.0 * values.itemsize * digit_passes,
            written=1.0 * values.itemsize * digit_passes,
            passes=2 * digit_passes,
        )
        return self._wrap(data, "hw::sort_out")

    def sort_by_key(
        self, keys: Handle, values: Handle, descending: bool = False
    ) -> Tuple[Handle, Handle]:
        order = np.argsort(keys.peek(), kind="stable")
        if descending:
            order = order[::-1]
        digit_passes = max(1, keys.itemsize)
        payload = float(values.itemsize)
        self.runtime._charge(
            "tuned_radix_sort_by_key",
            len(keys),
            flops=4.0 * digit_passes,
            read=(2.0 * keys.itemsize + payload) * digit_passes,
            written=(keys.itemsize + payload) * digit_passes,
            passes=2 * digit_passes,
        )
        return (
            self._wrap(keys.peek()[order], "hw::sbk_keys"),
            self._wrap(values.peek()[order], "hw::sbk_values"),
        )

    def prefix_sum(self, values: Handle) -> Handle:
        data = values.peek()
        acc_dtype = np.int64 if np.issubdtype(data.dtype, np.integer) else np.float64
        scanned = np.cumsum(data, dtype=acc_dtype)
        if len(scanned):
            scanned = np.roll(scanned, 1)
            scanned[0] = 0
        result = scanned.astype(data.dtype, copy=False)
        # Decoupled-lookback scan: the data crosses DRAM exactly once each
        # way — the structural advantage over the libraries' 3-phase scans.
        self.runtime._charge(
            "lookback_scan",
            len(values),
            flops=2.0,
            read=float(values.itemsize),
            written=float(values.itemsize),
        )
        return self._wrap(result, "hw::scan_out")

    def gather(self, source: Handle, indices: Handle) -> Handle:
        index_data = indices.peek().astype(np.int64, copy=False)
        if len(index_data) and (
            index_data.min() < 0 or index_data.max() >= len(source)
        ):
            raise IndexError(f"gather: index out of range [0, {len(source)})")
        result = source.peek()[index_data]
        self.runtime._charge(
            "tuned_gather",
            len(indices),
            flops=1.0,
            read=indices.itemsize + 4.0 * source.itemsize,
            written=source.itemsize,
        )
        return self._wrap(result, "hw::gather_out")

    def scatter(self, source: Handle, indices: Handle, length: int) -> Handle:
        index_data = indices.peek().astype(np.int64, copy=False)
        if len(index_data) and (
            index_data.min() < 0 or index_data.max() >= length
        ):
            raise IndexError(f"scatter: index out of range [0, {length})")
        out = np.zeros(length, dtype=source.peek().dtype)
        out[index_data] = source.peek()
        self.runtime._charge(
            "tuned_scatter",
            len(source),
            flops=1.0,
            read=source.itemsize + indices.itemsize,
            written=4.0 * source.itemsize,
            fixed_bytes=float(out.nbytes),  # zero-fill pass
        )
        return self._wrap(out, "hw::scatter_out")

    def product(self, left: Handle, right: Handle) -> Handle:
        if len(left) != len(right):
            raise ValueError(f"product: {len(left)} vs {len(right)} elements")
        result = left.peek() * right.peek()
        self.runtime._charge(
            "tuned_product",
            len(left),
            flops=1.0,
            read=left.itemsize + right.itemsize,
            written=result.dtype.itemsize,
        )
        return self._wrap(result, "hw::product_out")

    def compute(self, columns: Dict[str, Handle], expr: Expr) -> Handle:
        """One fused kernel for the whole expression tree."""
        names = sorted(expr.columns())
        if not names:
            raise ValueError(f"expression {expr!r} references no column")
        host_columns = {name: columns[name].peek() for name in names}
        result = np.asarray(expr.evaluate(host_columns))
        read = float(sum(columns[name].itemsize for name in names))
        self.runtime._charge(
            f"fused_expr[{expr.node_count}]",
            len(result),
            flops=expr.flops,
            read=read,
            written=float(result.dtype.itemsize),
        )
        return self._wrap(result, "hw::expr_out")

    def iota(self, n: int) -> Handle:
        self.runtime._charge("iota", n, flops=1.0, written=8.0)
        return self._wrap(np.arange(n, dtype=np.int64), "hw::iota")

    # -- metadata -----------------------------------------------------------------------

    def support(self) -> Dict[Operator, OperatorSupport]:
        return {
            operator: OperatorSupport(SupportLevel.FULL, "custom CUDA kernel")
            for operator in Operator
        }
