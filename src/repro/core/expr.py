"""Scalar (per-row) arithmetic expressions for projections and aggregates.

TPC-H aggregates are built from column arithmetic —
``sum(l_extendedprice * (1 - l_discount))`` — so the executor needs
device-side expression evaluation.  How a backend evaluates an expression
tree is itself a library-differentiating behaviour: eager STL libraries
launch one ``transform`` per operator node (materialising every
intermediate), ArrayFire fuses the whole tree into one JIT kernel, and the
handwritten backend compiles one fused kernel by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

import numpy as np

from repro.errors import ExpressionError
from repro.core.predicate import Predicate

#: op -> (numpy ufunc, per-element flops)
ARITH_OPS = {
    "add": (np.add, 1.0),
    "sub": (np.subtract, 1.0),
    "mul": (np.multiply, 1.0),
    "div": (np.divide, 4.0),
}


class Expr:
    """Base class of scalar expressions."""

    def columns(self) -> FrozenSet[str]:
        """All column names the expression reads."""
        raise NotImplementedError

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Reference (NumPy) evaluation."""
        raise NotImplementedError

    @property
    def node_count(self) -> int:
        """Number of operator nodes (for fused-kernel costing)."""
        return 0

    @property
    def flops(self) -> float:
        """Per-element arithmetic cost of the whole tree."""
        return 0.0

    # Operator sugar (Python precedence matches arithmetic precedence).
    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("add", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("add", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("sub", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("sub", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("mul", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("mul", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("div", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("div", as_expr(other), self)


@dataclass(frozen=True)
class ColRef(Expr):
    """A column reference."""

    name: str

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        try:
            return columns[self.name]
        except KeyError:
            raise ExpressionError(
                f"expression references missing column {self.name!r}"
            )

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Expr):
    """A scalar literal."""

    value: float

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        return np.asarray(self.value)

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic node."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            known = ", ".join(sorted(ARITH_OPS))
            raise ExpressionError(f"unknown arithmetic op {self.op!r}; known: {known}")

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        ufunc, _flops = ARITH_OPS[self.op]
        return ufunc(self.left.evaluate(columns), self.right.evaluate(columns))

    @property
    def node_count(self) -> int:
        return 1 + self.left.node_count + self.right.node_count

    @property
    def flops(self) -> float:
        return ARITH_OPS[self.op][1] + self.left.flops + self.right.flops

    def __repr__(self) -> str:
        symbol = {"add": "+", "sub": "-", "mul": "*", "div": "/"}[self.op]
        return f"({self.left!r} {symbol} {self.right!r})"


#: Civil-calendar anchor of the engine's day-number encoding.
EPOCH_YEAR = 1992

#: Days in the 4-year leap cycle starting at the epoch (1992 is a leap
#: year, so the cycle is 366+365+365+365).
_LEAP_CYCLE_DAYS = 1461


@dataclass(frozen=True)
class ExtractYear(Expr):
    """``EXTRACT(YEAR FROM column)`` over epoch-day date columns.

    Dates are stored as int32 days since 1992-01-01.  Because 1992 opens
    a 4-year leap cycle, ``year = 1992 + (4*days) // 1461`` is exact for
    every day in [1992-01-01, 2099-12-31] — a single multiply and an
    integer divide, which is also how a real kernel would price it.
    """

    child: Expr

    def columns(self) -> FrozenSet[str]:
        return self.child.columns()

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        days = self.child.evaluate(columns)
        return EPOCH_YEAR + np.floor_divide(
            4 * days.astype(np.int64), _LEAP_CYCLE_DAYS
        ).astype(np.float64)

    @property
    def node_count(self) -> int:
        return 1 + self.child.node_count

    @property
    def flops(self) -> float:
        # one multiply + one integer divide (priced like div) + one add
        return 6.0 + self.child.flops

    def __repr__(self) -> str:
        return f"year({self.child!r})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN condition THEN then ELSE otherwise END``.

    The condition is a :class:`~repro.core.predicate.Predicate`; both
    branches are expressions.  Backends evaluate it as a predicated
    select (``np.where`` semantics): both arms are computed and blended
    by the mask, matching how a branch-free GPU kernel would run it.
    """

    condition: Predicate
    then: Expr
    otherwise: Expr

    def columns(self) -> FrozenSet[str]:
        return (
            self.condition.columns()
            | self.then.columns()
            | self.otherwise.columns()
        )

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        mask = self.condition.evaluate(columns)
        return np.where(
            mask, self.then.evaluate(columns), self.otherwise.evaluate(columns)
        ).astype(np.float64)

    @property
    def node_count(self) -> int:
        # the select itself plus every arm node; the predicate's leaves
        # count as one node (backends evaluate it as one flag vector).
        return 2 + self.then.node_count + self.otherwise.node_count

    @property
    def flops(self) -> float:
        cond_flops = sum(
            getattr(leaf, "flops", 1.0) for leaf in _predicate_leaves(self.condition)
        )
        return 1.0 + cond_flops + self.then.flops + self.otherwise.flops

    def __repr__(self) -> str:
        return (
            f"case({self.condition!r} ? {self.then!r} : {self.otherwise!r})"
        )


def _predicate_leaves(predicate: Predicate) -> Tuple[Predicate, ...]:
    """Leaf comparisons of a predicate tree (for costing CASE conditions)."""
    parts = getattr(predicate, "parts", None)
    if parts is not None:
        out: Tuple[Predicate, ...] = ()
        for part in parts:
            out = out + _predicate_leaves(part)
        return out
    part = getattr(predicate, "part", None)
    if part is not None:
        return _predicate_leaves(part)
    return (predicate,)


ExprLike = Union[Expr, int, float, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a column name, number, or Expr into an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return ColRef(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Lit(float(value))
    raise ExpressionError(f"cannot treat {value!r} as a scalar expression")


def col(name: str) -> ColRef:
    """Shorthand column reference constructor."""
    return ColRef(name)


def lit(value: float) -> Lit:
    """Shorthand literal constructor."""
    return Lit(float(value))


def year_of(column: ExprLike) -> ExtractYear:
    """Shorthand ``EXTRACT(YEAR FROM column)`` constructor."""
    return ExtractYear(as_expr(column))


def case_when(condition: Predicate, then: ExprLike,
              otherwise: ExprLike) -> CaseWhen:
    """Shorthand ``CASE WHEN ... THEN ... ELSE ... END`` constructor."""
    return CaseWhen(condition, as_expr(then), as_expr(otherwise))


def flatten(expr: Expr) -> Tuple[Expr, ...]:
    """Post-order traversal of the tree's nodes (used by eager backends)."""
    if isinstance(expr, BinOp):
        return flatten(expr.left) + flatten(expr.right) + (expr,)
    if isinstance(expr, ExtractYear):
        return flatten(expr.child) + (expr,)
    if isinstance(expr, CaseWhen):
        return flatten(expr.then) + flatten(expr.otherwise) + (expr,)
    return (expr,)
