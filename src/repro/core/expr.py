"""Scalar (per-row) arithmetic expressions for projections and aggregates.

TPC-H aggregates are built from column arithmetic —
``sum(l_extendedprice * (1 - l_discount))`` — so the executor needs
device-side expression evaluation.  How a backend evaluates an expression
tree is itself a library-differentiating behaviour: eager STL libraries
launch one ``transform`` per operator node (materialising every
intermediate), ArrayFire fuses the whole tree into one JIT kernel, and the
handwritten backend compiles one fused kernel by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

import numpy as np

from repro.errors import ExpressionError

#: op -> (numpy ufunc, per-element flops)
ARITH_OPS = {
    "add": (np.add, 1.0),
    "sub": (np.subtract, 1.0),
    "mul": (np.multiply, 1.0),
    "div": (np.divide, 4.0),
}


class Expr:
    """Base class of scalar expressions."""

    def columns(self) -> FrozenSet[str]:
        """All column names the expression reads."""
        raise NotImplementedError

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Reference (NumPy) evaluation."""
        raise NotImplementedError

    @property
    def node_count(self) -> int:
        """Number of operator nodes (for fused-kernel costing)."""
        return 0

    @property
    def flops(self) -> float:
        """Per-element arithmetic cost of the whole tree."""
        return 0.0

    # Operator sugar (Python precedence matches arithmetic precedence).
    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("add", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("add", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("sub", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("sub", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("mul", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("mul", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("div", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("div", as_expr(other), self)


@dataclass(frozen=True)
class ColRef(Expr):
    """A column reference."""

    name: str

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        try:
            return columns[self.name]
        except KeyError:
            raise ExpressionError(
                f"expression references missing column {self.name!r}"
            )

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Expr):
    """A scalar literal."""

    value: float

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        return np.asarray(self.value)

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic node."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            known = ", ".join(sorted(ARITH_OPS))
            raise ExpressionError(f"unknown arithmetic op {self.op!r}; known: {known}")

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        ufunc, _flops = ARITH_OPS[self.op]
        return ufunc(self.left.evaluate(columns), self.right.evaluate(columns))

    @property
    def node_count(self) -> int:
        return 1 + self.left.node_count + self.right.node_count

    @property
    def flops(self) -> float:
        return ARITH_OPS[self.op][1] + self.left.flops + self.right.flops

    def __repr__(self) -> str:
        symbol = {"add": "+", "sub": "-", "mul": "*", "div": "/"}[self.op]
        return f"({self.left!r} {symbol} {self.right!r})"


ExprLike = Union[Expr, int, float, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a column name, number, or Expr into an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return ColRef(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Lit(float(value))
    raise ExpressionError(f"cannot treat {value!r} as a scalar expression")


def col(name: str) -> ColRef:
    """Shorthand column reference constructor."""
    return ColRef(name)


def lit(value: float) -> Lit:
    """Shorthand literal constructor."""
    return Lit(float(value))


def flatten(expr: Expr) -> Tuple[Expr, ...]:
    """Post-order traversal of the tree's nodes (used by eager backends)."""
    if isinstance(expr, BinOp):
        return flatten(expr.left) + flatten(expr.right) + (expr,)
    return (expr,)
