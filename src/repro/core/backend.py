"""The operator-backend interface — the heart of the paper's framework.

The paper: *"we develop a framework to show the support of GPU libraries
for database operations that allows a user to plug-in new libraries and
custom-written code."*  An :class:`OperatorBackend` is one such plug-in: it
realizes the column-oriented database operators of Table II on top of one
GPU library (or hand-written kernels, or plain NumPy for the reference
oracle).

Data flows through opaque *handles* (each backend's native device array
type).  ``upload``/``download`` move columns across the PCIe boundary;
every operator takes and returns handles so multi-operator pipelines pay
transfers only at the edges — exactly the regime the paper benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Tuple

import numpy as np

from repro.core.expr import Expr
from repro.core.predicate import Predicate
from repro.errors import UnsupportedOperatorError
from repro.gpu.device import Device

#: A backend-native device array; kept deliberately untyped at this layer.
Handle = Any


class Operator(Enum):
    """The database operators of the paper's Table II."""

    SELECTION = "selection"
    CONJUNCTION = "conjunction"
    DISJUNCTION = "disjunction"
    NESTED_LOOP_JOIN = "nested_loop_join"
    MERGE_JOIN = "merge_join"
    HASH_JOIN = "hash_join"
    GROUPED_AGGREGATION = "grouped_aggregation"
    REDUCTION = "reduction"
    SORT = "sort"
    SORT_BY_KEY = "sort_by_key"
    PREFIX_SUM = "prefix_sum"
    SCATTER = "scatter"
    GATHER = "gather"
    PRODUCT = "product"


class SupportLevel(Enum):
    """Table II legend: ``+`` full, ``~`` partial, ``-`` none."""

    FULL = "+"
    PARTIAL = "~"
    NONE = "-"


@dataclass(frozen=True)
class OperatorSupport:
    """One Table II cell: support level and the library functions used."""

    level: SupportLevel
    functions: str = ""


#: Aggregation kinds accepted by grouped aggregation and reduction.
AGGREGATES = ("sum", "count", "min", "max", "avg")


class OperatorBackend(abc.ABC):
    """Database operators realized over one GPU library."""

    #: Backend identifier used in benchmarks and the support matrix.
    name: str = "abstract"

    def __init__(self, device: Device) -> None:
        self.device = device

    # -- data movement -------------------------------------------------------

    @abc.abstractmethod
    def upload(self, array: np.ndarray, label: str = "column") -> Handle:
        """Copy a host column to the device; returns a handle."""

    @abc.abstractmethod
    def download(self, handle: Handle) -> np.ndarray:
        """Copy a handle's contents back to the host."""

    # -- Table II operators -----------------------------------------------------

    @abc.abstractmethod
    def selection(
        self, columns: Dict[str, Handle], predicate: Predicate
    ) -> Handle:
        """Row-identifier list of rows satisfying ``predicate``.

        ``columns`` must cover ``predicate.columns()``.  Compound
        predicates exercise the backend's conjunction/disjunction
        realization (bitmap combine or id-set intersection).
        """

    @abc.abstractmethod
    def nested_loop_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """Inner equi-join by exhaustive comparison: returns matching
        (left row ids, right row ids)."""

    @abc.abstractmethod
    def merge_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """Inner equi-join via sort + merge: returns matching row ids."""

    def hash_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """Inner equi-join via a hash table.

        Default: unsupported.  The paper's headline finding is that **none**
        of the studied libraries exposes hashing, so only the handwritten
        backend overrides this.
        """
        raise UnsupportedOperatorError(
            self.name, Operator.HASH_JOIN.value,
            "no hashing primitives in this library (paper, Table II)",
        )

    @abc.abstractmethod
    def grouped_aggregation(
        self,
        keys: Handle,
        values: Handle,
        agg: str = "sum",
    ) -> Tuple[Handle, Handle]:
        """SQL GROUP BY: returns (unique keys, aggregate per key), ordered
        by key."""

    @abc.abstractmethod
    def reduction(self, values: Handle, agg: str = "sum") -> float:
        """Fold a column to one scalar."""

    @abc.abstractmethod
    def sort(self, values: Handle, descending: bool = False) -> Handle:
        """Sorted copy of a column."""

    @abc.abstractmethod
    def sort_by_key(
        self, keys: Handle, values: Handle, descending: bool = False
    ) -> Tuple[Handle, Handle]:
        """Key/value sorted copies."""

    @abc.abstractmethod
    def prefix_sum(self, values: Handle) -> Handle:
        """Exclusive prefix sum."""

    @abc.abstractmethod
    def gather(self, source: Handle, indices: Handle) -> Handle:
        """``out[i] = source[indices[i]]`` (column materialization)."""

    @abc.abstractmethod
    def scatter(
        self, source: Handle, indices: Handle, length: int
    ) -> Handle:
        """``out[indices[i]] = source[i]`` into a fresh zeroed column."""

    @abc.abstractmethod
    def product(self, left: Handle, right: Handle) -> Handle:
        """Elementwise multiplication of two columns (Table II *product*,
        e.g. ``l_extendedprice * (1 - l_discount)`` pipelines)."""

    @abc.abstractmethod
    def compute(self, columns: Dict[str, Handle], expr: "Expr") -> Handle:
        """Evaluate a scalar arithmetic expression over device columns.

        Eager libraries launch one kernel per operator node; ArrayFire
        fuses the tree; handwritten kernels are fused by construction.
        """

    @abc.abstractmethod
    def iota(self, n: int) -> Handle:
        """Device-generated row-id column 0..n-1 (int64)."""

    # -- metadata -----------------------------------------------------------------

    @abc.abstractmethod
    def support(self) -> Dict[Operator, OperatorSupport]:
        """This backend's Table II column."""

    # -- helpers shared by implementations -----------------------------------------

    @staticmethod
    def _check_agg(agg: str) -> str:
        if agg not in AGGREGATES:
            raise ValueError(
                f"unknown aggregate {agg!r}; known: {', '.join(AGGREGATES)}"
            )
        return agg

    def __repr__(self) -> str:
        return f"{type(self).__name__}(device={self.device.spec.name!r})"


def join_reference(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Oracle inner equi-join used by tests and the CPU backend.

    Returns (left ids, right ids) sorted by (left id, right id).
    """
    order_r = np.argsort(right_keys, kind="stable")
    sorted_r = right_keys[order_r]
    lo = np.searchsorted(sorted_r, left_keys, side="left")
    hi = np.searchsorted(sorted_r, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_ids = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    if total:
        starts = np.repeat(lo, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        right_ids = order_r[starts + offsets]
    else:
        right_ids = np.empty(0, dtype=np.int64)
    # Canonical order for comparisons.
    order = np.lexsort((right_ids, left_ids))
    return left_ids[order], right_ids[order].astype(np.int64)
