"""Boost.Compute plug-in backend (Table II's Boost.Compute column).

Identical operator compositions to the Thrust backend (the libraries are
STL twins), but every kernel goes through the OpenCL program cache — cold
queries pay runtime compilation — and runs at OpenCL-tier efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import Handle
from repro.core.stl_backend import StlStyleBackend
from repro.gpu.device import Device
from repro.libs import boost_compute


class _BoostLibAdapter:
    """Adapts the naming differences between the two STL-style modules
    (``sequence`` vs ``iota``); everything else passes straight through."""

    def __getattr__(self, name: str):
        return getattr(boost_compute, name)


class BoostComputeBackend(StlStyleBackend):
    """Database operators realized over the Boost.Compute emulation."""

    name = "boost.compute"

    def __init__(self, device: Device) -> None:
        runtime = boost_compute.BoostComputeRuntime(device)
        super().__init__(device, runtime, _BoostLibAdapter())
        self._runtime = runtime

    @property
    def program_cache(self) -> boost_compute.ProgramCache:
        """The backend's OpenCL program cache (for the cold/warm ablation)."""
        return self._runtime.program_cache

    def _vector(self, array: np.ndarray, label: str) -> Handle:
        return self._runtime.vector(array, label=label)

    def _empty(self, n: int, dtype: np.dtype) -> Handle:
        return self._runtime.empty(n, dtype)

    def _iota_vector(self, n: int) -> Handle:
        rowids = self._runtime.empty(n, np.int64)
        boost_compute.iota(rowids)
        return rowids
