"""cuDF-class extension backend — **beyond the paper**.

The paper's survey predates broad RAPIDS adoption, but its introduction
already names cuDF as the library behind BlazingDB, and its conclusion is
a challenge: the studied libraries lack hashing.  libcudf answers it — it
ships hash joins and hash-based group-bys as first-class operators.  This
backend models a cuDF-class library: the handwritten backend's algorithm
inventory (including hash join and hash aggregation) at *library* rather
than hand-tuned efficiency, with a DataFrame runtime's heavier dispatch.

The extension benchmark (``bench_ext_cudf.py``) uses it to quantify how
much of the paper's "unused tuning potential" a newer library recovers
out of the box.
"""

from __future__ import annotations

from typing import Dict

from repro.core.backend import Operator, OperatorSupport, SupportLevel
from repro.core.handwritten_backend import HandwrittenBackend, HandwrittenRuntime
from repro.gpu.device import Device
from repro.gpu.kernel import EfficiencyProfile

#: libcudf kernels are professionally tuned CUDA but remain generic
#: (type-dispatched, null-mask aware): a notch under workload-specialised
#: handwritten kernels, a notch over Thrust templates on these operators;
#: the DataFrame layer (column refcounting, dispatch) taxes every launch.
CUDF_PROFILE = EfficiencyProfile(
    name="cudf",
    compute_efficiency=0.84,
    memory_efficiency=0.87,
    launch_multiplier=1.4,
)

#: cuDF spellings for the Table II rows (for the extended support matrix).
_CUDF_FUNCTIONS = {
    Operator.SELECTION: "apply_boolean_mask()",
    Operator.CONJUNCTION: "binary_operation(AND)",
    Operator.DISJUNCTION: "binary_operation(OR)",
    Operator.NESTED_LOOP_JOIN: "cross_join() + filter",
    Operator.MERGE_JOIN: "sort_merge_join()",
    Operator.HASH_JOIN: "inner_join()  <- the gap-closer",
    Operator.GROUPED_AGGREGATION: "groupby().agg()",
    Operator.REDUCTION: "reduce()",
    Operator.SORT: "sort_values()",
    Operator.SORT_BY_KEY: "sort_values(by=key)",
    Operator.PREFIX_SUM: "cumsum()",
    Operator.SCATTER: "scatter()",
    Operator.GATHER: "gather()",
    Operator.PRODUCT: "binary_operation(MUL)",
}


class CudfLikeRuntime(HandwrittenRuntime):
    """Runtime pricing work at cuDF-library efficiency."""

    library_name = "cudf"

    def __init__(self, device: Device) -> None:
        super().__init__(device)
        self.profile = CUDF_PROFILE


class CudfLikeBackend(HandwrittenBackend):
    """All Table II operators, including hashing, at library efficiency.

    Inherits the handwritten backend's algorithm structures (single-pass
    fused selections, hash join build/probe, hash aggregation) — which is
    faithful: libcudf implements exactly these algorithm classes — and
    reprices them through :data:`CUDF_PROFILE`.
    """

    name = "cudf"

    def __init__(self, device: Device) -> None:
        super().__init__(device)
        self.runtime = CudfLikeRuntime(device)

    def support(self) -> Dict[Operator, OperatorSupport]:
        return {
            operator: OperatorSupport(SupportLevel.FULL, spelling)
            for operator, spelling in _CUDF_FUNCTIONS.items()
        }
