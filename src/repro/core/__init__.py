"""The paper's primary contribution: the pluggable operator framework.

Contents:

* :class:`~repro.core.framework.GpuOperatorFramework` — plug-in registry;
* :class:`~repro.core.backend.OperatorBackend` — the operator interface
  (Table II's operator set);
* the five built-in backends (Thrust, Boost.Compute, ArrayFire,
  handwritten CUDA, CPU reference);
* the predicate AST for selections;
* the Table II support-matrix generator.
"""

from repro.core.arrayfire_backend import ArrayFireBackend
from repro.core.backend import (
    AGGREGATES,
    Operator,
    OperatorBackend,
    OperatorSupport,
    SupportLevel,
    join_reference,
)
from repro.core.boost_backend import BoostComputeBackend
from repro.core.compiled_backend import FUSION_MODES, CompiledBackend
from repro.core.cpu_backend import CpuReferenceBackend
from repro.core.cudf_backend import CudfLikeBackend
from repro.core.framework import (
    EXTENSION_BACKENDS,
    GPU_BACKENDS,
    STUDIED_LIBRARIES,
    GpuOperatorFramework,
    default_framework,
)
from repro.core.handwritten_backend import HandwrittenBackend
from repro.core.hash_extension import (
    ArrayFireHashBackend,
    BoostComputeHashBackend,
    HashJoinExtensionMixin,
    ThrustHashBackend,
)
from repro.core.predicate import (
    And,
    Between,
    Compare,
    CompareCols,
    InSet,
    Not,
    Or,
    Predicate,
    col_between,
    col_cmp,
    col_eq,
    col_ge,
    col_gt,
    col_in,
    col_le,
    col_lt,
    col_ne,
    conjunction,
    disjunction,
)
from repro.core.stl_backend import StlStyleBackend
from repro.core.support import (
    PAPER_TABLE_II,
    TABLE_II_LIBRARIES,
    TABLE_II_ROWS,
    build_support_matrix,
    compare_with_paper,
    render_table_ii,
)
from repro.core.thrust_backend import ThrustBackend

__all__ = [
    "GpuOperatorFramework",
    "default_framework",
    "STUDIED_LIBRARIES",
    "GPU_BACKENDS",
    "EXTENSION_BACKENDS",
    "OperatorBackend",
    "Operator",
    "OperatorSupport",
    "SupportLevel",
    "AGGREGATES",
    "join_reference",
    "ThrustBackend",
    "BoostComputeBackend",
    "ArrayFireBackend",
    "HandwrittenBackend",
    "CompiledBackend",
    "FUSION_MODES",
    "CpuReferenceBackend",
    "CudfLikeBackend",
    "ThrustHashBackend",
    "BoostComputeHashBackend",
    "ArrayFireHashBackend",
    "HashJoinExtensionMixin",
    "StlStyleBackend",
    "Predicate",
    "Compare",
    "CompareCols",
    "Between",
    "InSet",
    "And",
    "Or",
    "Not",
    "col_in",
    "col_lt",
    "col_le",
    "col_gt",
    "col_ge",
    "col_eq",
    "col_ne",
    "col_between",
    "col_cmp",
    "conjunction",
    "disjunction",
    "PAPER_TABLE_II",
    "TABLE_II_ROWS",
    "TABLE_II_LIBRARIES",
    "build_support_matrix",
    "compare_with_paper",
    "render_table_ii",
]
