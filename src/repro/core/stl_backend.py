"""Shared realization of database operators over STL-style GPU libraries.

Thrust and Boost.Compute expose near-identical STL-like algorithm suites
(the paper's Table II maps both onto the *same* function chains), so one
implementation parameterised by the library module serves both backends.
The composition per operator follows Table II exactly:

* selection — ``transform()`` (predicate → flags) & ``exclusive_scan()``
  (flags → positions) & compaction (``scatter_if`` with a counting
  iterator; Table II prints the chain as transform/scan/gather);
* conjunction/disjunction — per-leaf ``transform()`` flags combined with
  ``bit_and<T>()`` / ``bit_or<T>()``;
* nested-loops join — ``for_each_n()`` with a user functor that scans the
  inner relation;
* grouped aggregation — ``sort_by_key()`` then ``reduce_by_key()``;
* reduction — ``reduce()``; sort family — ``sort()``/``sort_by_key()``;
* prefix sum — ``exclusive_scan()``; scatter & gather — direct calls;
* product — ``transform()`` with ``multiplies<T>()``.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict, Tuple

import numpy as np

from repro.core.backend import (
    Handle,
    Operator,
    OperatorBackend,
    OperatorSupport,
    SupportLevel,
    join_reference,
)
from repro.core.expr import (
    ARITH_OPS,
    BinOp,
    CaseWhen,
    ColRef,
    Expr,
    ExtractYear,
    Lit,
)
from repro.core.predicate import (
    And,
    Between,
    Compare,
    CompareCols,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.gpu.device import Device
from repro.libs.base import LibraryRuntime
from repro.libs.thrust.functional import (
    Functor,
    bit_and,
    bit_or,
    maximum,
    minimum,
    multiplies,
)

#: Shared-memory tile width for the nested-loops join functor: each thread
#: block stages TILE outer keys while streaming the inner relation, so the
#: inner relation crosses DRAM once per outer tile.
NLJ_TILE = 256


def _predicate_functor(predicate: Predicate) -> Functor:
    """Lower a leaf predicate to a flag-producing functor (int32 0/1)."""
    if isinstance(predicate, Compare):
        reference = predicate

        def apply(x: np.ndarray) -> np.ndarray:
            return reference.evaluate({reference.column: x}).astype(np.int32)

        return Functor(f"flags{predicate!r}", apply, arity=1,
                       flops=predicate.flops + 0.5)
    if isinstance(predicate, Between):
        reference_between = predicate

        def apply_between(x: np.ndarray) -> np.ndarray:
            return reference_between.evaluate(
                {reference_between.column: x}
            ).astype(np.int32)

        return Functor(
            f"flags{predicate!r}", apply_between, arity=1,
            flops=predicate.flops + 0.5,
        )
    if isinstance(predicate, InSet):
        reference_in = predicate

        def apply_in(x: np.ndarray) -> np.ndarray:
            return reference_in.evaluate(
                {reference_in.column: x}
            ).astype(np.int32)

        # One binary search per element into the device-resident sorted
        # value set (the set rides in constant memory, so no extra read).
        return Functor(
            f"flags{predicate!r}", apply_in, arity=1,
            flops=predicate.flops + 0.5,
        )
    raise TypeError(f"not a leaf predicate: {predicate!r}")


class StlStyleBackend(OperatorBackend):
    """Operators composed from an STL-style library module.

    Subclasses provide the runtime and the library module; the module must
    expose the shared algorithm names (transform, exclusive_scan,
    scatter_if, reduce, reduce_by_key, sort, sort_by_key, copy, gather,
    scatter, lower_bound, upper_bound, fill).
    """

    #: Table II prints "+" for the STL libraries' NLJ (for_each_n).
    _NLJ_SUPPORT = OperatorSupport(SupportLevel.FULL, "for_each_n()")

    def __init__(self, device: Device, runtime: LibraryRuntime,
                 lib: ModuleType) -> None:
        super().__init__(device)
        self.runtime = runtime
        self._lib = lib

    # -- construction hooks ----------------------------------------------------

    def _vector(self, array: np.ndarray, label: str) -> Handle:
        """Device vector from host data (charges H2D)."""
        raise NotImplementedError

    def _empty(self, n: int, dtype: np.dtype) -> Handle:
        """Uninitialised device vector."""
        raise NotImplementedError

    def _wrap(self, array: np.ndarray, label: str) -> Handle:
        """Wrap a device-side result without a transfer."""
        return self.runtime._materialize(np.ascontiguousarray(array), label)

    # -- data movement -------------------------------------------------------------

    def upload(self, array: np.ndarray, label: str = "column") -> Handle:
        return self._vector(np.ascontiguousarray(array), label)

    def download(self, handle: Handle) -> np.ndarray:
        return handle.to_host()

    # -- selection ---------------------------------------------------------------------

    def selection(
        self, columns: Dict[str, Handle], predicate: Predicate
    ) -> Handle:
        flags = self._flags(columns, predicate)
        positions = self._lib.exclusive_scan(flags)
        # The host needs the match count to size the output: read back the
        # last scan element and the last flag (two 4-byte D2H transfers).
        total = int(positions.peek()[-1] + flags.peek()[-1]) if len(flags) else 0
        self.device.transfer_to_host(8, "selection_count")
        output = self._empty(total, np.int64)
        if len(flags):
            self._lib.scatter_if(positions, flags, output)
        return output

    def _flags(self, columns: Dict[str, Handle], predicate: Predicate) -> Handle:
        """Flag vector (int32 0/1) for an arbitrary predicate tree."""
        if isinstance(predicate, (Compare, Between, InSet)):
            column = columns[next(iter(predicate.columns()))]
            return self._lib.transform(column, _predicate_functor(predicate))
        if isinstance(predicate, CompareCols):
            comparator = predicate

            def apply_cols(x: np.ndarray, y: np.ndarray) -> np.ndarray:
                return comparator.evaluate(
                    {comparator.left: x, comparator.right: y}
                ).astype(np.int32)

            functor = Functor(
                f"flags{predicate!r}", apply_cols, arity=2,
                flops=predicate.flops + 0.5,
            )
            return self._lib.transform(
                columns[predicate.left], functor, columns[predicate.right]
            )
        if isinstance(predicate, And):
            flags = [self._flags(columns, part) for part in predicate.parts]
            combined = flags[0]
            for part_flags in flags[1:]:
                combined = self._lib.transform(combined, bit_and(), part_flags)
            return combined
        if isinstance(predicate, Or):
            flags = [self._flags(columns, part) for part in predicate.parts]
            combined = flags[0]
            for part_flags in flags[1:]:
                combined = self._lib.transform(combined, bit_or(), part_flags)
            return combined
        if isinstance(predicate, Not):
            inner = self._flags(columns, predicate.part)
            invert = Functor(
                "flip_flags", lambda x: (1 - x).astype(np.int32),
                arity=1, flops=1.0,
            )
            return self._lib.transform(inner, invert)
        raise TypeError(f"unsupported predicate node {predicate!r}")

    # -- joins -------------------------------------------------------------------------

    def nested_loop_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """``for_each_n`` over the outer relation; the user functor scans
        the inner relation from a shared-memory tile."""
        left = left_keys.peek()
        right = right_keys.peek()
        left_ids, right_ids = join_reference(left, right)
        n, m = len(left), len(right)
        inner_bytes = float(right_keys.itemsize)
        # One kernel: every outer element compares against all m inner keys
        # in a per-thread loop (~8 instructions per iteration: load, compare,
        # branch, counter); the inner relation is re-read from DRAM once per
        # outer tile.
        self.runtime._charge(
            "for_each_n<nlj_probe>",
            n,
            flops=8.0 * m,
            read=left_keys.itemsize + (m * inner_bytes) / NLJ_TILE,
            written=8.0 * (len(left_ids) / max(n, 1)),
        )
        # Match count readback, then a second pass materialises pairs.
        self.device.transfer_to_host(8, "nlj_count")
        self.runtime._charge(
            "for_each_n<nlj_materialize>",
            n,
            flops=8.0 * m,
            read=left_keys.itemsize + (m * inner_bytes) / NLJ_TILE,
            written=16.0 * (len(left_ids) / max(n, 1)),
        )
        return (
            self._wrap(left_ids, "nlj_left_ids"),
            self._wrap(right_ids, "nlj_right_ids"),
        )

    def merge_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        """Sort-merge composed from library primitives.

        Table II marks merge join "–" (no direct function); this is the
        closest composition — sort both sides with row-id payloads, then
        vectorized ``lower_bound``/``upper_bound`` and a pair-expansion
        kernel — and it is what the join benchmark labels
        "merge join (composed)".
        """
        left = left_keys.peek()
        right = right_keys.peek()
        n, m = len(left), len(right)
        # Sort both sides, carrying original row ids as payloads.
        left_sorted = self._lib.copy(left_keys)
        left_rowids = self._iota_vector(n)
        self._lib.sort_by_key(left_sorted, left_rowids)
        right_sorted = self._lib.copy(right_keys)
        right_rowids = self._iota_vector(m)
        self._lib.sort_by_key(right_sorted, right_rowids)
        lo = self._lib.lower_bound(right_sorted, left_sorted)
        hi = self._lib.upper_bound(right_sorted, left_sorted)
        counts = self._lib.transform(
            hi, Functor("minus", np.subtract, arity=2, flops=1.0), lo
        )
        offsets = self._lib.exclusive_scan(counts)
        total = (
            int(offsets.peek()[-1] + counts.peek()[-1]) if len(counts) else 0
        )
        self.device.transfer_to_host(8, "merge_join_count")
        # Expansion kernel: one thread per output pair gathers both row ids.
        left_ids, right_ids = self._expand_matches(
            left_sorted.peek(), left_rowids.peek(),
            right_rowids.peek(), lo.peek(), hi.peek(),
        )
        self.runtime._charge(
            "merge_join_expand",
            total,
            flops=2.0,
            read=4.0 + 4.0 * 8.0,  # offsets plus uncoalesced row-id gathers
            written=16.0,
        )
        return (
            self._wrap(left_ids, "mj_left_ids"),
            self._wrap(right_ids, "mj_right_ids"),
        )

    @staticmethod
    def _expand_matches(
        left_sorted: np.ndarray,
        left_rowids: np.ndarray,
        right_rowids: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        counts = (hi - lo).astype(np.int64)
        total = int(counts.sum())
        left_ids = np.repeat(left_rowids.astype(np.int64), counts)
        if total:
            starts = np.repeat(lo.astype(np.int64), counts)
            offset_base = np.repeat(np.cumsum(counts) - counts, counts)
            positions = starts + (np.arange(total, dtype=np.int64) - offset_base)
            right_ids = right_rowids.astype(np.int64)[positions]
        else:
            right_ids = np.empty(0, dtype=np.int64)
        order = np.lexsort((right_ids, left_ids))
        return left_ids[order], right_ids[order]

    def _iota_vector(self, n: int) -> Handle:
        """Row-id vector 0..n-1 (one generation kernel)."""
        raise NotImplementedError

    # -- aggregation -------------------------------------------------------------------

    def grouped_aggregation(
        self,
        keys: Handle,
        values: Handle,
        agg: str = "sum",
    ) -> Tuple[Handle, Handle]:
        self._check_agg(agg)
        if len(keys) != len(values):
            raise ValueError(
                f"grouped_aggregation: {len(keys)} keys vs {len(values)} values"
            )
        if len(keys) == 0:
            return (
                self._wrap(np.empty(0, keys.dtype), "group_keys"),
                self._wrap(np.empty(0, np.float64), "group_values"),
            )
        sorted_keys = self._lib.copy(keys)
        sorted_values = self._lib.copy(values)
        self._lib.sort_by_key(sorted_keys, sorted_values)
        if agg == "sum":
            out_keys, out_values = self._lib.reduce_by_key(
                sorted_keys, sorted_values
            )
        elif agg == "count":
            ones = self._ones_like(sorted_keys)
            out_keys, out_values = self._lib.reduce_by_key(sorted_keys, ones)
        elif agg == "min":
            out_keys, out_values = self._lib.reduce_by_key(
                sorted_keys, sorted_values, minimum()
            )
        elif agg == "max":
            out_keys, out_values = self._lib.reduce_by_key(
                sorted_keys, sorted_values, maximum()
            )
        else:  # avg = sum / count, composed from three library calls
            out_keys, sums = self._lib.reduce_by_key(sorted_keys, sorted_values)
            ones = self._ones_like(sorted_keys)
            _keys2, counts = self._lib.reduce_by_key(sorted_keys, ones)
            divide = Functor(
                "divide_f64",
                lambda s, c: s.astype(np.float64) / c,
                arity=2,
                flops=4.0,
            )
            out_values = self._lib.transform(sums, divide, counts)
        return out_keys, out_values

    def _ones_like(self, handle: Handle) -> Handle:
        ones = self._empty(len(handle), np.int64)
        self._lib.fill(ones, 1)
        return ones

    def reduction(self, values: Handle, agg: str = "sum") -> float:
        self._check_agg(agg)
        if agg == "count":
            # The row count is host-side metadata; no kernel needed.
            return float(len(values))
        if len(values) == 0:
            if agg == "sum":
                return 0.0
            raise ValueError(f"reduction {agg!r} of an empty column")
        if agg == "sum":
            return float(self._lib.reduce(values))
        if agg == "avg":
            return float(self._lib.reduce(values)) / len(values)
        # Third argument is positional: Thrust spells it ``functor``,
        # Boost.Compute spells it ``op``.
        if agg == "min":
            first = float(values.peek()[0])
            return float(self._lib.reduce(values, first, minimum()))
        first = float(values.peek()[0])
        return float(self._lib.reduce(values, first, maximum()))

    # -- sorts / primitives -----------------------------------------------------------

    def sort(self, values: Handle, descending: bool = False) -> Handle:
        result = self._lib.copy(values)
        self._lib.sort(result, descending=descending)
        return result

    def sort_by_key(
        self, keys: Handle, values: Handle, descending: bool = False
    ) -> Tuple[Handle, Handle]:
        out_keys = self._lib.copy(keys)
        out_values = self._lib.copy(values)
        self._lib.sort_by_key(out_keys, out_values, descending=descending)
        return out_keys, out_values

    def prefix_sum(self, values: Handle) -> Handle:
        return self._lib.exclusive_scan(values)

    def gather(self, source: Handle, indices: Handle) -> Handle:
        return self._lib.gather(indices, source)

    def scatter(self, source: Handle, indices: Handle, length: int) -> Handle:
        destination = self._empty(length, source.dtype)
        self._lib.fill(destination, 0)
        self._lib.scatter(source, indices, destination)
        return destination

    def product(self, left: Handle, right: Handle) -> Handle:
        return self._lib.transform(left, multiplies(), right)

    def compute(self, columns: Dict[str, Handle], expr: Expr) -> Handle:
        """Eager evaluation: one ``transform`` per operator node, every
        intermediate materialised — the chaining overhead the paper
        attributes to library composition."""
        result = self._compute_node(columns, expr)
        if not isinstance(result, float):
            return result
        raise ValueError(f"expression {expr!r} references no column")

    def _compute_node(self, columns: Dict[str, Handle], expr: Expr):
        if isinstance(expr, ColRef):
            return columns[expr.name]
        if isinstance(expr, Lit):
            return float(expr.value)
        if isinstance(expr, BinOp):
            ufunc, flops = ARITH_OPS[expr.op]
            left = self._compute_node(columns, expr.left)
            right = self._compute_node(columns, expr.right)
            if isinstance(left, float) and isinstance(right, float):
                return float(ufunc(left, right))
            if isinstance(right, float):
                constant_r = right
                bound = Functor(
                    f"{expr.op}_const", lambda x: ufunc(x, constant_r),
                    arity=1, flops=flops,
                )
                return self._lib.transform(left, bound)
            if isinstance(left, float):
                constant_l = left
                bound = Functor(
                    f"const_{expr.op}", lambda x: ufunc(constant_l, x),
                    arity=1, flops=flops,
                )
                return self._lib.transform(right, bound)
            binary = Functor(expr.op, ufunc, arity=2, flops=flops)
            return self._lib.transform(left, binary, right)
        if isinstance(expr, ExtractYear):
            child = self._compute_node(columns, expr.child)
            if isinstance(child, float):
                return 1992.0 + float(np.floor_divide(4 * int(child), 1461))
            year = Functor(
                "extract_year",
                lambda x: (
                    1992 + np.floor_divide(4 * x.astype(np.int64), 1461)
                ).astype(np.float64),
                arity=1, flops=6.0,
            )
            return self._lib.transform(child, year)
        if isinstance(expr, CaseWhen):
            # Branch-free eager composition: flags, then blend the two
            # arms with multiply/add transforms (one launch per node —
            # the chaining the paper attributes to STL composition).
            flags = self._flags(columns, expr.condition)
            then_term = self._case_arm(columns, expr.then, flags, invert=False)
            other_term = self._case_arm(
                columns, expr.otherwise, flags, invert=True
            )
            blend = Functor("case_blend", np.add, arity=2, flops=1.0)
            return self._lib.transform(then_term, blend, other_term)
        raise TypeError(f"unsupported expression node {expr!r}")

    def _case_arm(self, columns: Dict[str, Handle], arm: Expr,
                  flags: Handle, invert: bool):
        """One CASE arm masked by the (possibly inverted) flag vector."""
        value = self._compute_node(columns, arm)
        if isinstance(value, float):
            constant = value

            def apply_const(f: np.ndarray) -> np.ndarray:
                keep = (1 - f) if invert else f
                return (constant * keep).astype(np.float64)

            name = "case_else_const" if invert else "case_then_const"
            return self._lib.transform(
                flags, Functor(name, apply_const, arity=1, flops=2.0)
            )

        def apply(v: np.ndarray, f: np.ndarray) -> np.ndarray:
            keep = (1 - f) if invert else f
            return (v * keep).astype(np.float64)

        name = "case_else_mask" if invert else "case_then_mask"
        return self._lib.transform(
            value, Functor(name, apply, arity=2, flops=2.0), flags
        )

    def iota(self, n: int) -> Handle:
        return self._iota_vector(n)

    # -- metadata -----------------------------------------------------------------------

    def support(self) -> Dict[Operator, OperatorSupport]:
        chain = "transform() & exclusive_scan() & gather()"
        return {
            Operator.SELECTION: OperatorSupport(SupportLevel.PARTIAL, chain),
            Operator.CONJUNCTION: OperatorSupport(
                SupportLevel.FULL, "bit_and<T>()"
            ),
            Operator.DISJUNCTION: OperatorSupport(
                SupportLevel.FULL, "bit_or<T>()"
            ),
            Operator.NESTED_LOOP_JOIN: self._NLJ_SUPPORT,
            Operator.MERGE_JOIN: OperatorSupport(SupportLevel.NONE),
            Operator.HASH_JOIN: OperatorSupport(SupportLevel.NONE),
            Operator.GROUPED_AGGREGATION: OperatorSupport(
                SupportLevel.FULL, "reduce_by_key()"
            ),
            Operator.REDUCTION: OperatorSupport(SupportLevel.FULL, "reduce()"),
            Operator.SORT: OperatorSupport(SupportLevel.FULL, "sort()"),
            Operator.SORT_BY_KEY: OperatorSupport(
                SupportLevel.FULL, "sort_by_key()"
            ),
            Operator.PREFIX_SUM: OperatorSupport(
                SupportLevel.FULL, "exclusive_scan()"
            ),
            Operator.SCATTER: OperatorSupport(SupportLevel.FULL, "scatter()"),
            Operator.GATHER: OperatorSupport(SupportLevel.FULL, "gather()"),
            Operator.PRODUCT: OperatorSupport(
                SupportLevel.FULL, "transform() & multiplies<T>()"
            ),
        }
