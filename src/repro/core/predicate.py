"""Predicate AST for selections.

Backends lower this small language onto their library's constructs
(Table II): ArrayFire fuses comparisons into JIT trees evaluated by a
single ``where``; Thrust/Boost.Compute evaluate each comparison with
``transform`` and combine flag vectors with ``bit_and``/``bit_or``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExpressionError

#: Comparison operator spellings and their NumPy implementations.
_COMPARE_OPS = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


class Predicate:
    """Base class of the predicate AST."""

    def columns(self) -> FrozenSet[str]:
        """Names of all columns the predicate touches."""
        raise NotImplementedError

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Reference evaluation: boolean mask over the given columns."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """A single comparison ``column <op> value``."""

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARE_OPS:
            known = ", ".join(sorted(_COMPARE_OPS))
            raise ExpressionError(
                f"unknown comparison op {self.op!r}; known: {known}"
            )

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = _column(columns, self.column)
        return _COMPARE_OPS[self.op](data, self.value)

    @property
    def flops(self) -> float:
        """Per-element cost of the comparison."""
        return 1.0

    def __repr__(self) -> str:
        symbol = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
                  "eq": "==", "ne": "!="}[self.op]
        return f"({self.column} {symbol} {self.value})"


@dataclass(frozen=True)
class CompareCols(Predicate):
    """Column-to-column comparison ``left <op> right`` (e.g. TPC-H Q4's
    ``l_commitdate < l_receiptdate``)."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in _COMPARE_OPS:
            known = ", ".join(sorted(_COMPARE_OPS))
            raise ExpressionError(
                f"unknown comparison op {self.op!r}; known: {known}"
            )

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.left, self.right})

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        return _COMPARE_OPS[self.op](
            _column(columns, self.left), _column(columns, self.right)
        )

    @property
    def flops(self) -> float:
        """Per-element cost of the comparison."""
        return 1.0

    def __repr__(self) -> str:
        symbol = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
                  "eq": "==", "ne": "!="}[self.op]
        return f"({self.left} {symbol} {self.right})"


@dataclass(frozen=True)
class Between(Predicate):
    """Closed-range predicate ``low <= column <= high`` (SQL BETWEEN)."""

    column: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ExpressionError(
                f"between: high ({self.high}) < low ({self.low})"
            )

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = _column(columns, self.column)
        return (data >= self.low) & (data <= self.high)

    @property
    def flops(self) -> float:
        """Two comparisons and a combine."""
        return 3.0

    def __repr__(self) -> str:
        return f"({self.low} <= {self.column} <= {self.high})"


@dataclass(frozen=True)
class InSet(Predicate):
    """Membership test ``column IN (v0, v1, ...)`` (SQL IN-list).

    String IN-lists reach this node already lowered to dictionary codes,
    and resolved uncorrelated IN subqueries are spliced in as literal
    value tuples, so every backend only ever sees numeric membership.
    """

    column: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ExpressionError(f"IN-list for {self.column!r} is empty")

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = _column(columns, self.column)
        return np.isin(data, np.asarray(self.values))

    @property
    def flops(self) -> float:
        """Binary-search probe into the sorted value set."""
        return 1.0 + float(np.log2(max(len(self.values), 2)))

    def __repr__(self) -> str:
        if len(self.values) <= 4:
            shown = ", ".join(repr(v) for v in self.values)
            return f"({self.column} IN ({shown}))"
        return f"({self.column} IN ({len(self.values)} values))"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two or more predicates."""

    parts: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ExpressionError("And needs at least two parts")

    def columns(self) -> FrozenSet[str]:
        return frozenset().union(*(p.columns() for p in self.parts))

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        result = self.parts[0].evaluate(columns)
        for part in self.parts[1:]:
            result = result & part.evaluate(columns)
        return result

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two or more predicates."""

    parts: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ExpressionError("Or needs at least two parts")

    def columns(self) -> FrozenSet[str]:
        return frozenset().union(*(p.columns() for p in self.parts))

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        result = self.parts[0].evaluate(columns)
        for part in self.parts[1:]:
            result = result | part.evaluate(columns)
        return result

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    part: Predicate

    def columns(self) -> FrozenSet[str]:
        return self.part.columns()

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        return ~self.part.evaluate(columns)

    def __repr__(self) -> str:
        return f"(NOT {self.part!r})"


# -- convenience constructors (read like SQL) ---------------------------------

def col_lt(column: str, value: float) -> Compare:
    """``column < value``."""
    return Compare(column, "lt", value)


def col_le(column: str, value: float) -> Compare:
    """``column <= value``."""
    return Compare(column, "le", value)


def col_gt(column: str, value: float) -> Compare:
    """``column > value``."""
    return Compare(column, "gt", value)


def col_ge(column: str, value: float) -> Compare:
    """``column >= value``."""
    return Compare(column, "ge", value)


def col_eq(column: str, value: float) -> Compare:
    """``column == value``."""
    return Compare(column, "eq", value)


def col_ne(column: str, value: float) -> Compare:
    """``column != value``."""
    return Compare(column, "ne", value)


def col_between(column: str, low: float, high: float) -> Between:
    """``low <= column <= high``."""
    return Between(column, low, high)


def col_in(column: str, values: Sequence[float]) -> InSet:
    """``column IN (values...)`` with a deduplicated, sorted value list."""
    return InSet(column, tuple(sorted(set(float(v) for v in values))))


def col_cmp(left: str, op: str, right: str) -> CompareCols:
    """Column-to-column comparison, e.g. ``col_cmp("a", "lt", "b")``."""
    return CompareCols(left, op, right)


def conjunction(parts: Sequence[Predicate]) -> Predicate:
    """AND together a non-empty predicate list (single part passes through)."""
    if not parts:
        raise ExpressionError("conjunction of zero predicates")
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def disjunction(parts: Sequence[Predicate]) -> Predicate:
    """OR together a non-empty predicate list (single part passes through)."""
    if not parts:
        raise ExpressionError("disjunction of zero predicates")
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def _column(columns: Dict[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return columns[name]
    except KeyError:
        raise ExpressionError(
            f"predicate references missing column {name!r} "
            f"(have: {', '.join(columns)})"
        )


PredicateLike = Union[Predicate]
