"""Hash-join extension backends — **beyond the paper**, opt-in.

The paper's Table II shows hash join unsupported in every studied library,
and the base backends keep that negative result: ``thrust``,
``boost.compute`` and ``arrayfire`` raise
:class:`~repro.errors.UnsupportedOperatorError` on ``hash_join``.  These
wrappers answer the paper's closing "what if": each ``<library>+hash``
backend is the unmodified library emulation **plus** the build/probe hash
join of :mod:`repro.relational.hashjoin`, priced at that library's own
efficiency tier (as if the library had shipped a hashing primitive of its
usual code-generation quality).

Selecting them is an explicit choice (``framework.create("thrust+hash")``),
so every default benchmark still reproduces the paper's gap while the
extension quantifies how much of the "unused tuning potential" a single
missing primitive would have recovered.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.arrayfire_backend import ArrayFireBackend
from repro.core.backend import (
    Handle,
    Operator,
    OperatorSupport,
    SupportLevel,
)
from repro.core.boost_backend import BoostComputeBackend
from repro.core.thrust_backend import ThrustBackend
from repro.relational.hashjoin import SimulatedHashJoin

#: Table II cell text for the extension's hash join.
_EXTENSION_CELL = "extension: simulated build/probe kernels"


class HashJoinExtensionMixin:
    """Adds a simulated hash join to a library backend.

    The mixin reuses the host backend's runtime profile so the new kernels
    are priced at the same efficiency tier as the library's own operators.
    Subclasses override the peek/wrap hooks when their handle type is not a
    plain :class:`~repro.libs.base.DeviceArray`.
    """

    def _hash_joiner(self) -> SimulatedHashJoin:
        joiner = getattr(self, "_hash_joiner_instance", None)
        if joiner is None:
            joiner = SimulatedHashJoin(
                self.device, profile=self.runtime.profile, name=self.name
            )
            self._hash_joiner_instance = joiner
        return joiner

    # -- handle hooks ------------------------------------------------------

    def _extension_peek(self, handle: Handle) -> np.ndarray:
        """Host mirror of a key column (no transfer charged)."""
        return handle.peek()

    def _extension_wrap(self, data: np.ndarray, label: str) -> Handle:
        """Wrap a device-produced result in the host backend's handle."""
        return self._wrap(data, label)

    # -- the added operator ------------------------------------------------

    def hash_join(
        self, left_keys: Handle, right_keys: Handle
    ) -> Tuple[Handle, Handle]:
        result = self._hash_joiner().join(
            self._extension_peek(left_keys), self._extension_peek(right_keys)
        )
        return (
            self._extension_wrap(result.left_ids, f"{self.name}::hj_left"),
            self._extension_wrap(result.right_ids, f"{self.name}::hj_right"),
        )

    def support(self) -> Dict[Operator, OperatorSupport]:
        table = dict(super().support())
        table[Operator.HASH_JOIN] = OperatorSupport(
            SupportLevel.FULL, _EXTENSION_CELL
        )
        return table


class ThrustHashBackend(HashJoinExtensionMixin, ThrustBackend):
    """Thrust emulation plus the hash join Thrust never shipped."""

    name = "thrust+hash"


class BoostComputeHashBackend(HashJoinExtensionMixin, BoostComputeBackend):
    """Boost.Compute emulation plus an OpenCL-tier hash join."""

    name = "boost.compute+hash"


class ArrayFireHashBackend(HashJoinExtensionMixin, ArrayFireBackend):
    """ArrayFire emulation plus a JIT-tier hash join."""

    name = "arrayfire+hash"

    def _extension_peek(self, handle: Handle) -> np.ndarray:
        # ArrayFire handles are lazy Arrays; force them and read storage.
        return handle.storage().peek()

    def _extension_wrap(self, data: np.ndarray, label: str) -> Handle:
        return self.runtime.from_result(data, label)


#: Factory table used by the framework registration.
HASH_EXTENSION_BACKENDS = {
    backend.name: backend
    for backend in (
        ThrustHashBackend,
        BoostComputeHashBackend,
        ArrayFireHashBackend,
    )
}
