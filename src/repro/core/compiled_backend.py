"""Compiled fused-pipeline backend — whole-pipeline query compilation.

The paper finds ArrayFire's JIT fuses only element-wise chains, leaving
the bulk of a query's DRAM traffic unfused; Eiger and the tile-based
model of Shanbhag et al. show the real win is *whole-pipeline*
compilation: scan → filter → probe → partial-aggregate executed as one
generated kernel over tiles, touching DRAM once.  This backend simulates
that engine.

It inherits every eager operator from :class:`HandwrittenBackend` (the
tuned baseline — a compiling engine's generated code is at least as good
as expert kernels for the operators it does *not* fuse) and adds:

* ``supports_fused_pipelines`` — routes execution through the pipeline
  IR (:mod:`repro.query.pipeline`) and its runner
  (:mod:`repro.query.compiled`);
* a **program cache** — each distinct pipeline signature pays JIT
  codegen once (a serialising :meth:`~repro.gpu.device.Device.compile_program`
  charge, like Boost.Compute's OpenCL builds), then launches for free;
* :meth:`launch_fused` — one single-DRAM-pass kernel charge for an
  entire pipeline segment (``FUSED[...]`` events in Chrome traces);
* a ``fusion`` mode: ``"auto"`` consults the optimizer's
  fusion-boundary cost model per segment, ``"on"``/``"off"`` force it.
"""

from __future__ import annotations

from typing import Dict

from repro.gpu.device import Device
from repro.core.handwritten_backend import HandwrittenBackend, HandwrittenRuntime

#: Fusion modes: per-segment cost model, always fuse, never fuse.
FUSION_MODES = ("auto", "on", "off")


class CompiledRuntime(HandwrittenRuntime):
    """Generated-kernel runtime: tuned efficiency, own event namespace."""

    library_name = "compiled"


class CompiledBackend(HandwrittenBackend):
    """Whole-pipeline JIT compilation over the handwritten operator set."""

    name = "compiled"
    runtime_class = CompiledRuntime
    supports_fused_pipelines = True

    #: JIT codegen cost per pipeline: fixed front-end share plus a
    #: per-fused-operator share (specialising the tile loop).  Far
    #: cheaper than Boost.Compute's 20 ms OpenCL builds — Hyper-style
    #: engines compile small specialised kernels.
    COMPILE_BASE_SECONDS = 2.0e-3
    COMPILE_PER_OP_SECONDS = 2.5e-4
    #: Executions a compiled program is assumed to serve (steady-state
    #: operation, cf. the multi-query serving layer); the "auto" cost
    #: model charges each decision this amortised share of a cold build.
    COMPILE_AMORTIZATION = 1000.0

    def __init__(self, device: Device, fusion: str = "auto") -> None:
        if fusion not in FUSION_MODES:
            raise ValueError(
                f"unknown fusion mode {fusion!r}; known: {FUSION_MODES}"
            )
        super().__init__(device)
        self.fusion = fusion
        #: Pipeline signature -> compile cost paid (the program cache).
        self._programs: Dict[str, float] = {}

    # -- program cache ------------------------------------------------------------

    def compile_cost(self, op_count: int) -> float:
        """Cold codegen seconds for a segment fusing ``op_count`` ops."""
        return (
            self.COMPILE_BASE_SECONDS
            + self.COMPILE_PER_OP_SECONDS * max(op_count, 1)
        )

    def amortized_compile_seconds(self, signature: str, op_count: int) -> float:
        """Compile share the fusion cost model should account for: the
        cold build spread over the assumed reuse count, 0 on a hit."""
        if signature in self._programs:
            return 0.0
        return self.compile_cost(op_count) / self.COMPILE_AMORTIZATION

    def ensure_program(self, signature: str, op_count: int) -> float:
        """Compile the fused program for ``signature`` unless cached.

        A cold build charges a serialising JIT-codegen interval on the
        device (drains engines, like every runtime compilation in the
        simulator) and returns its cost; a warm hit charges nothing.
        """
        if signature in self._programs:
            return 0.0
        cost = self.compile_cost(op_count)
        self.device.compile_program(f"compiled::codegen[{op_count} ops]", cost)
        self._programs[signature] = cost
        return cost

    @property
    def cached_programs(self) -> int:
        return len(self._programs)

    # -- fused launches -----------------------------------------------------------

    def launch_fused(
        self,
        name: str,
        elements: int,
        *,
        flops: float,
        read: float,
        written: float,
        fixed_flops: float = 0.0,
        fixed_bytes: float = 0.0,
    ) -> float:
        """One fused kernel for a whole pipeline segment.

        Priced as a *single* DRAM pass (``passes=1``): every input byte
        is read once, every output byte written once, with all operator
        arithmetic riding along — the structural advantage over the
        eager chain's one-pass-per-operator execution.
        """
        return self.runtime._charge(
            f"FUSED[{name}]",
            elements,
            flops=flops,
            read=read,
            written=written,
            fixed_flops=fixed_flops,
            fixed_bytes=fixed_bytes,
            passes=1,
        )
