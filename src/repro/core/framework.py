"""The plug-in framework facade.

The paper: *"we develop a framework [...] that allows a user to plug-in
new libraries and custom-written code."*  :class:`GpuOperatorFramework`
is that entry point: a registry of backend factories keyed by name.  The
three studied libraries, the handwritten kernels, and the CPU oracle are
pre-registered; users add their own with :meth:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.core.arrayfire_backend import ArrayFireBackend
from repro.core.backend import OperatorBackend
from repro.core.boost_backend import BoostComputeBackend
from repro.core.compiled_backend import CompiledBackend
from repro.core.cpu_backend import CpuReferenceBackend
from repro.core.cudf_backend import CudfLikeBackend
from repro.core.handwritten_backend import HandwrittenBackend
from repro.core.hash_extension import HASH_EXTENSION_BACKENDS
from repro.core.thrust_backend import ThrustBackend
from repro.errors import ReproError
from repro.gpu.device import Device

BackendFactory = Callable[[Device], OperatorBackend]


def _cpu_simd_factory(device: Device) -> OperatorBackend:
    """Build the host SIMD backend (lazy import: repro.cpu depends on
    repro.core, so a module-level import here would be a cycle).

    The framework hands every factory a fresh simulated *GPU* when the
    caller does not supply a device; pricing host kernels on a GPU
    roofline with paid PCIe legs would be nonsense, so anything that is
    not already a :class:`~repro.cpu.host.HostDevice` is replaced by
    one.  Pass a ``HostDevice`` explicitly to choose the host spec.
    """
    from repro.cpu.host import HostDevice

    from repro.cpu.backend import CpuSimdBackend

    if not isinstance(device, HostDevice):
        device = HostDevice()
    return CpuSimdBackend(device)


class GpuOperatorFramework:
    """Registry and factory for operator backends."""

    def __init__(self, register_defaults: bool = True) -> None:
        self._factories: Dict[str, BackendFactory] = {}
        if register_defaults:
            self.register("thrust", ThrustBackend)
            self.register("boost.compute", BoostComputeBackend)
            self.register("arrayfire", ArrayFireBackend)
            self.register("handwritten", HandwrittenBackend)
            # Whole-pipeline JIT compilation over the tuned operator set
            # (ROADMAP item 2; Eiger-style fused segments).
            self.register("compiled", CompiledBackend)
            self.register("cpu-reference", CpuReferenceBackend)
            # Extensions beyond the paper: a cuDF-class library with
            # hashing, and each studied library plus the hash join it
            # should have offered (opt-in; defaults preserve the paper's
            # negative result).
            self.register("cudf", CudfLikeBackend)
            # The host as a first-class device (ROADMAP item 3): the
            # tuned kernels priced on a SIMD/DRAM roofline with free
            # transfers.  See repro.cpu and repro.hetero.
            self.register("cpu-simd", _cpu_simd_factory)
            for name, factory in HASH_EXTENSION_BACKENDS.items():
                self.register(name, factory)

    def register(self, name: str, factory: BackendFactory) -> None:
        """Plug in a backend factory under ``name``.

        Re-registering an existing name raises; use :meth:`unregister`
        first if replacement is intended.
        """
        if name in self._factories:
            raise ReproError(f"backend {name!r} is already registered")
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        """Remove a backend registration."""
        if name not in self._factories:
            raise ReproError(f"backend {name!r} is not registered")
        del self._factories[name]

    def create(self, name: str, device: Optional[Device] = None) -> OperatorBackend:
        """Instantiate a registered backend bound to ``device`` (a fresh
        default device if omitted)."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise ReproError(f"unknown backend {name!r}; registered: {known}")
        return factory(device if device is not None else Device())

    def create_all(
        self,
        names: Optional[List[str]] = None,
        device_factory: Callable[[], Device] = Device,
    ) -> List[OperatorBackend]:
        """Instantiate several backends, each on its *own* fresh device
        (so their simulated clocks are independent — how the paper's
        benchmarks isolate libraries)."""
        targets = names if names is not None else sorted(self._factories)
        return [self.create(name, device_factory()) for name in targets]

    @property
    def backend_names(self) -> List[str]:
        """Registered backend names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        return len(self._factories)


#: The library names the paper selects for its in-depth study.
STUDIED_LIBRARIES = ("arrayfire", "boost.compute", "thrust")

#: All GPU-costed backends (studied libraries + the tuned baseline).
GPU_BACKENDS = STUDIED_LIBRARIES + ("handwritten",)

#: Backends beyond the paper's scope (see repro/core/cudf_backend.py and
#: repro/core/hash_extension.py).
EXTENSION_BACKENDS = ("cudf",) + tuple(sorted(HASH_EXTENSION_BACKENDS))


def default_framework() -> GpuOperatorFramework:
    """A framework with all built-in backends registered."""
    return GpuOperatorFramework(register_defaults=True)
