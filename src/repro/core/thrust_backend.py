"""Thrust plug-in backend (Table II's Thrust column)."""

from __future__ import annotations

import numpy as np

from repro.core.backend import Handle
from repro.core.stl_backend import StlStyleBackend
from repro.gpu.device import Device
from repro.libs import thrust


class ThrustBackend(StlStyleBackend):
    """Database operators realized over the Thrust emulation."""

    name = "thrust"

    def __init__(self, device: Device) -> None:
        runtime = thrust.ThrustRuntime(device)
        super().__init__(device, runtime, thrust)
        self._runtime = runtime

    def _vector(self, array: np.ndarray, label: str) -> Handle:
        return self._runtime.device_vector(array, label=label)

    def _empty(self, n: int, dtype: np.dtype) -> Handle:
        return self._runtime.empty(n, dtype)

    def _iota_vector(self, n: int) -> Handle:
        rowids = self._runtime.empty(n, np.int64)
        thrust.sequence(rowids)
        return rowids
