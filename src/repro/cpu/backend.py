"""`cpu-simd` backend: handwritten-kernel semantics priced on the host.

The operator *semantics* of the tuned handwritten backend are exactly
the NumPy-oracle semantics (that is what makes every backend
differentially testable), so the host backend inherits them wholesale
and changes only the *pricing*: kernels run at
:data:`~repro.cpu.host.HOST_SIMD_PROFILE` efficiency against a
:class:`~repro.cpu.host.HostDevice` roofline, and uploads/downloads cost
nothing because host memory is where the data already lives.  Bit
identity with the oracle is therefore inherited, not re-proved.
"""

from __future__ import annotations

from typing import Optional

from repro.core.handwritten_backend import HandwrittenBackend, HandwrittenRuntime
from repro.cpu.host import HOST_SIMD_PROFILE, HostDevice
from repro.gpu.device import Device


class CpuSimdRuntime(HandwrittenRuntime):
    """Runtime for vectorised host kernels (HOST_SIMD_PROFILE)."""

    library_name = "cpu-simd"

    def __init__(self, device: Device) -> None:
        # Skip HandwrittenRuntime.__init__ (it pins TUNED_PROFILE) and
        # bind the host efficiency profile directly.
        super(HandwrittenRuntime, self).__init__(device, HOST_SIMD_PROFILE)


class CpuSimdBackend(HandwrittenBackend):
    """Host SIMD operators: same kernels, host roofline, no PCIe."""

    name = "cpu-simd"

    runtime_class = CpuSimdRuntime

    def __init__(self, device: Optional[Device] = None) -> None:
        super().__init__(device if device is not None else HostDevice())
