"""Host CPU as a first-class execution device.

`repro.cpu` models the host the way `repro.gpu` models the device: a
roofline-priced :class:`~repro.cpu.host.HostDevice` (cores x SIMD lanes
for compute, STREAM-class DRAM bandwidth for memory, fork/join dispatch
latency for launches) with **zero-cost transfers**, plus the
`cpu-simd` operator backend that runs the tuned handwritten kernels on
it.  The heterogeneous placement optimizer (`repro.hetero`) prices
pipeline segments on both rooflines and picks sides.
"""

from repro.cpu.backend import CpuSimdBackend, CpuSimdRuntime
from repro.cpu.host import (
    AVX2,
    AVX512,
    HOST_SIMD_PROFILE,
    MOBILE_4C_SSE,
    SCALAR,
    SIMD_TIERS,
    SSE4,
    XEON_16C_AVX2,
    HostDevice,
    HostSpec,
    SimdTier,
)

__all__ = [
    "AVX2",
    "AVX512",
    "CpuSimdBackend",
    "CpuSimdRuntime",
    "HOST_SIMD_PROFILE",
    "HostDevice",
    "HostSpec",
    "MOBILE_4C_SSE",
    "SCALAR",
    "SIMD_TIERS",
    "SSE4",
    "SimdTier",
    "XEON_16C_AVX2",
]
