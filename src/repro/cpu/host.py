"""Host CPU device model: SIMD tiers, host specs, and :class:`HostDevice`.

Shanbhag et al. ("A Study of the Fundamental Performance Characteristics
of GPUs and CPUs for Database Analytics") show that for memory-bound
database operators a modern CPU is, to first order, *its memory system*:
a SIMD scan saturates host DRAM bandwidth just like a tuned CUDA kernel
saturates device DRAM, only at ~6-8x less bandwidth — and with **no PCIe
legs**, because the data already lives in host memory.

This module prices host execution with the exact roofline the simulated
GPUs use (:func:`repro.gpu.kernel.kernel_duration`):

* a :class:`SimdTier` gives the vector width (32-bit lanes per core) —
  trueno-db's GPU -> SIMD -> scalar ladder, made explicit;
* a :class:`HostSpec` derives a :class:`~repro.gpu.device.DeviceSpec`
  whose "SMs" are cores and whose "cores per SM" are SIMD lanes, so
  ``peak_flops = cores * lanes * clock * 2`` (FMA) falls out of the same
  formula vendors use for GPUs;
* :class:`HostDevice` is a :class:`~repro.gpu.device.Device` whose
  H2D/D2H transfers are free no-ops — host "uploads" are pointer
  handoffs, which is precisely the term that makes small or
  low-selectivity work win on the CPU.

The per-dispatch latency deliberately sits *at or above* the GPU's 5 us
kernel-launch latency: forking and joining an OpenMP-style parallel
region across 16 threads costs single-digit microseconds too, so the
CPU/GPU crossover in the placement model comes from bandwidth and
transfer terms, not from a launch-latency artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import Device, DeviceSpec
from repro.gpu.kernel import EfficiencyProfile
from repro.gpu.transfer import SHARED_MEMORY_LINK


@dataclass(frozen=True)
class SimdTier:
    """One rung of the host vector ladder (lanes = 32-bit lanes/core)."""

    name: str
    lanes: int

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"SIMD lanes must be >= 1: {self.lanes}")


#: The ladder trueno-db degrades along: AVX-512 -> AVX2 -> SSE -> scalar.
SCALAR = SimdTier(name="scalar", lanes=1)
SSE4 = SimdTier(name="sse4", lanes=4)
AVX2 = SimdTier(name="avx2", lanes=8)
AVX512 = SimdTier(name="avx512", lanes=16)

#: SIMD tiers by name (widest first), for CLI/config lookup.
SIMD_TIERS = {tier.name: tier for tier in (AVX512, AVX2, SSE4, SCALAR)}


@dataclass(frozen=True)
class HostSpec:
    """Static description of a host CPU as an execution device.

    Mirrors :class:`~repro.gpu.device.DeviceSpec` field-for-field via
    :meth:`to_device_spec`, so the same kernel-duration roofline prices
    both targets and their costs are directly comparable.
    """

    name: str
    cores: int
    core_clock_hz: float
    simd: SimdTier
    dram_bandwidth: float  # bytes/second (sustained, STREAM-class)
    memory_bytes: int
    #: Seconds to fork/join one parallel-for across all cores: the host
    #: analogue of a kernel launch.
    dispatch_latency: float
    pass_tail_latency: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"core count must be positive: {self.cores}")
        if self.core_clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("clock and bandwidth must be positive")
        if self.memory_bytes <= 0:
            raise ValueError(f"host memory must be positive: {self.memory_bytes}")

    @property
    def peak_flops(self) -> float:
        """Single-precision peak in FLOP/s (FMA counted as 2 ops)."""
        return self.cores * self.simd.lanes * self.core_clock_hz * 2.0

    def to_device_spec(self) -> DeviceSpec:
        """The equivalent :class:`~repro.gpu.device.DeviceSpec`.

        Cores map to "SMs", SIMD lanes to "cores per SM", and the link is
        the shared-memory tier — although :class:`HostDevice` short-
        circuits transfers entirely, so the link only matters if a plain
        :class:`~repro.gpu.device.Device` is built from this spec.
        """
        return DeviceSpec(
            name=self.name,
            sm_count=self.cores,
            cores_per_sm=self.simd.lanes,
            core_clock_hz=self.core_clock_hz,
            dram_bandwidth=self.dram_bandwidth,
            memory_bytes=self.memory_bytes,
            kernel_launch_latency=self.dispatch_latency,
            pass_tail_latency=self.pass_tail_latency,
            link=SHARED_MEMORY_LINK,
        )


# ---------------------------------------------------------------------------
# Host presets.
#
# XEON_16C_AVX2 models the 2019/2020-era two-socket-class server CPU the
# CPU-vs-GPU studies benchmark against GTX/V100 GPUs: 16 cores at 2.4 GHz
# with AVX2 gives 614 GFLOP/s peak, and ~80 GB/s sustained DRAM bandwidth
# (6-channel DDR4 derated to STREAM-triad reality) — about 6x under the
# GTX 1080 Ti's 484 GB/s, matching the bandwidth ratios those papers
# report.  The 6 us dispatch latency is a measured OpenMP fork/join cost
# at that thread count.
# ---------------------------------------------------------------------------

XEON_16C_AVX2 = HostSpec(
    name="xeon-16c-avx2",
    cores=16,
    core_clock_hz=2.4e9,
    simd=AVX2,
    dram_bandwidth=80.0e9,
    memory_bytes=64 * 1024**3,
    dispatch_latency=6.0e-6,
    pass_tail_latency=2.0e-6,
)

#: A narrow laptop-class host: fewer cores, SSE-only, one DDR4 channel.
MOBILE_4C_SSE = HostSpec(
    name="mobile-4c-sse",
    cores=4,
    core_clock_hz=2.0e9,
    simd=SSE4,
    dram_bandwidth=18.0e9,
    memory_bytes=16 * 1024**3,
    dispatch_latency=8.0e-6,
    pass_tail_latency=3.0e-6,
)

#: Efficiency of compiler-vectorised host loops against the spec peaks.
#: Sustained SIMD kernels reach a large fraction of STREAM bandwidth but
#: lose a bit more than tuned CUDA to TLB walks and prefetch misses.
HOST_SIMD_PROFILE = EfficiencyProfile(
    name="cpu-simd",
    compute_efficiency=0.85,
    memory_efficiency=0.80,
    launch_multiplier=1.0,
)


class HostDevice(Device):
    """A :class:`~repro.gpu.device.Device` that *is* the host.

    Kernels are priced on the host spec's roofline (bandwidth, SIMD
    peak, dispatch latency) through the inherited machinery, so the
    profiler/Chrome-trace, memory manager, and stream plumbing all work
    unchanged — but both transfer directions are free no-ops: host
    memory is where the data already lives, so there are no H2D/D2H
    legs to price and no events to record.  This zero is the whole
    point of heterogeneous placement — it is what a boundary crossing
    saves.
    """

    def __init__(
        self,
        spec: HostSpec = XEON_16C_AVX2,
        *,
        profile_events: bool = True,
        allocator: str = "null",
    ) -> None:
        super().__init__(
            spec.to_device_spec(),
            profile_events=profile_events,
            allocator=allocator,
        )
        #: The host description the device spec was derived from.
        self.host_spec = spec

    def transfer_to_device(self, nbytes, label="h2d", stream=None) -> float:
        """No-op: a host "upload" is a pointer handoff (zero seconds).

        Injected transfer faults do not apply either — they model the
        host/device interconnect, which this device does not have.
        """
        return 0.0

    def transfer_to_host(self, nbytes, label="d2h", stream=None) -> float:
        """No-op: the data is already in host memory (zero seconds)."""
        return 0.0
