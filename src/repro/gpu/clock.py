"""Simulated time source for the GPU device model.

All costs in the simulator are expressed in seconds and accumulated on a
:class:`SimulatedClock`.  The clock is strictly monotonic: time can only be
advanced, never rewound.  Benchmarks read the clock before and after a
workload to obtain the *simulated* elapsed time, which is the quantity the
paper's figures report (wall-clock time on a physical GPU).
"""

from __future__ import annotations


class SimulatedClock:
    """A monotonic, manually advanced clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now * 1e3

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now * 1e6

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Raises ``ValueError`` for negative durations; zero is permitted so
        that free events (e.g. cache hits) can still be recorded at a
        well-defined timestamp.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it lies in the future.

        Used by the stream scheduler: asynchronous work items resolve to
        absolute completion times on per-engine timelines, and the global
        clock tracks the *latest* completion seen so far.  Timestamps in
        the past are ignored (the clock never rewinds), keeping the clock
        monotonic while streams interleave work behind it.
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Seconds elapsed between ``t0`` and now."""
        return self._now - t0

    def reset(self) -> None:
        """Reset the clock to zero (used between benchmark repetitions)."""
        self._now = 0.0

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.9f}s)"


class Stopwatch:
    """Convenience context manager measuring simulated elapsed time.

    Example::

        with Stopwatch(device.clock) as sw:
            run_query(...)
        print(sw.elapsed)
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = self._clock.elapsed_since(self._start)

    @property
    def elapsed_ms(self) -> float:
        """Elapsed simulated time in milliseconds."""
        return self.elapsed * 1e3
