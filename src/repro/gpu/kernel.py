"""Kernel-launch cost model.

A kernel's simulated duration follows the classic roofline shape::

    duration = launch_latency
             + max(compute_time, memory_time)
             + tail_latency_per_pass

    compute_time = total_flops   / (peak_flops     * compute_efficiency)
    memory_time  = total_bytes   / (dram_bandwidth * memory_efficiency)

The two efficiency factors are where the *library tier* enters: a
hand-tuned CUDA kernel reaches a larger fraction of peak bandwidth than a
generic OpenCL kernel generated from a high-level functor.  Each library
emulation carries its own :class:`EfficiencyProfile` (see
``repro/libs/*/``); the mechanism each constant models is documented at its
definition site.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class KernelCost:
    """Work description for a single kernel launch.

    Attributes:
        name: kernel identifier (shows up in the profiler trace).
        elements: number of logical work items.
        flops_per_element: floating point / integer ops per work item.
        bytes_read_per_element: device DRAM bytes read per work item.
        bytes_written_per_element: device DRAM bytes written per work item.
        fixed_flops / fixed_bytes: size-independent work (e.g. a final
            block-reduction pass over a small partials array).
        passes: number of sequential device-wide passes the kernel makes
            (radix-sort digits, scan up/down sweeps); each pass incurs one
            tail latency because the SMs drain between passes.
    """

    name: str
    elements: int
    flops_per_element: float = 1.0
    bytes_read_per_element: float = 0.0
    bytes_written_per_element: float = 0.0
    fixed_flops: float = 0.0
    fixed_bytes: float = 0.0
    passes: int = 1

    def __post_init__(self) -> None:
        if self.elements < 0:
            raise ValueError(f"kernel elements cannot be negative: {self.elements}")
        if self.passes < 1:
            raise ValueError(f"kernel passes must be >= 1: {self.passes}")

    @property
    def total_flops(self) -> float:
        """Total arithmetic work for the launch."""
        return self.elements * self.flops_per_element + self.fixed_flops

    @property
    def total_bytes(self) -> float:
        """Total DRAM traffic for the launch."""
        per_element = self.bytes_read_per_element + self.bytes_written_per_element
        return self.elements * per_element + self.fixed_bytes

    def scaled(self, factor: float) -> "KernelCost":
        """Return a copy with all per-element work scaled by ``factor``."""
        return replace(
            self,
            flops_per_element=self.flops_per_element * factor,
            bytes_read_per_element=self.bytes_read_per_element * factor,
            bytes_written_per_element=self.bytes_written_per_element * factor,
        )


@dataclass(frozen=True)
class EfficiencyProfile:
    """Fraction of device peak a library's generated kernels achieve.

    ``launch_multiplier`` scales the device's base launch latency: runtime
    systems that go through extra dispatch layers (OpenCL command queues,
    JIT runtimes) pay more per launch than a raw CUDA launch.
    """

    name: str
    compute_efficiency: float = 0.75
    memory_efficiency: float = 0.80
    launch_multiplier: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("compute_efficiency", "memory_efficiency"):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1]: {value}")
        if self.launch_multiplier <= 0.0:
            raise ValueError(
                f"launch_multiplier must be positive: {self.launch_multiplier}"
            )


#: Baseline profile for hand-tuned vendor kernels (cuBLAS-class code).
TUNED_PROFILE = EfficiencyProfile(
    name="tuned",
    # Hand-written CUDA kernels with vectorised loads routinely reach ~90%
    # of STREAM bandwidth on memory-bound database operators.
    compute_efficiency=0.90,
    memory_efficiency=0.92,
    launch_multiplier=1.0,
)


def kernel_duration(
    cost: KernelCost,
    spec: "DeviceSpec",
    profile: EfficiencyProfile,
) -> float:
    """Simulated duration in seconds for one kernel launch.

    Empty launches (zero elements and no fixed work) still pay the launch
    latency — real libraries do launch kernels on empty inputs.
    """
    launch = spec.kernel_launch_latency * profile.launch_multiplier
    compute_time = cost.total_flops / (
        spec.peak_flops * profile.compute_efficiency
    )
    memory_time = cost.total_bytes / (
        spec.dram_bandwidth * profile.memory_efficiency
    )
    body = max(compute_time, memory_time)
    # Each extra device-wide pass drains and refills the SMs once.
    tail = (cost.passes - 1) * spec.pass_tail_latency
    return launch + body + tail
