"""Device memory manager for the simulated GPU.

Real GPU libraries differ substantially in how many intermediate buffers
their operator compositions allocate (the paper: chained library calls lead
to "unwanted intermediate data movements").  Tracking allocations lets the
benchmark harness report peak device memory per operator realization, and a
strict free/ownership discipline catches leaks in the library emulations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeviceMemoryError, InvalidBufferError

#: Allocation granularity in bytes.  CUDA's allocator rounds small requests
#: up; 256 B matches the documented texture/alignment granularity and keeps
#: accounting realistic for many tiny buffers.
ALLOCATION_ALIGNMENT = 256

#: Modelled host-side cost of a real ``cudaMalloc``: the driver walks its
#: heap, may device-synchronize, and maps pages.  Widely measured at tens
#: of microseconds (and worse under fragmentation); we charge the
#: optimistic end so the pool's win is conservative.
CUDA_MALLOC_LATENCY = 10.0e-6

#: Modelled host-side cost of ``cudaFree`` (also device-synchronizing).
CUDA_FREE_LATENCY = 2.0e-6

#: Cost of satisfying an allocation from a pool freelist: pure host
#: bookkeeping (RMM / PyTorch caching-allocator fast path), no driver call
#: and no implicit synchronization.
POOL_HIT_LATENCY = 0.3e-6

#: A pressure callback receives the number of bytes the allocator is
#: short and returns an (advisory) estimate of the bytes it released.
PressureCallback = Callable[[int], int]


def align_size(nbytes: int, alignment: int = ALLOCATION_ALIGNMENT) -> int:
    """Round ``nbytes`` up to the allocator granularity (minimum one unit)."""
    if nbytes < 0:
        raise ValueError(f"allocation size cannot be negative: {nbytes}")
    if nbytes == 0:
        return alignment
    return ((nbytes + alignment - 1) // alignment) * alignment


@dataclass
class DeviceBuffer:
    """Handle to a live device allocation."""

    buffer_id: int
    nbytes: int
    aligned_nbytes: int
    label: str
    freed: bool = field(default=False)

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return (
            f"DeviceBuffer(id={self.buffer_id}, nbytes={self.nbytes}, "
            f"label={self.label!r}, {state})"
        )


class MemoryManager:
    """Tracks device allocations against a fixed capacity.

    The manager models capacity and accounting, not placement: the simulator
    has no address space, only byte budgets.  ``peak_bytes`` gives the
    high-water mark used by the benchmark reports.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"device capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._peak = 0
        self._live: Dict[int, DeviceBuffer] = {}
        self._ids = itertools.count(1)
        self._alloc_count = 0
        self._free_count = 0
        #: Fault-injection cap on usable capacity (None = full capacity).
        self._soft_limit: Optional[int] = None
        self._pressure_callbacks: List[PressureCallback] = []
        self._in_pressure = False

    @property
    def used_bytes(self) -> int:
        """Currently allocated bytes (after alignment)."""
        return self._used

    @property
    def effective_capacity(self) -> int:
        """Usable capacity: the device size, or the injected soft limit."""
        if self._soft_limit is None:
            return self.capacity_bytes
        return min(self.capacity_bytes, self._soft_limit)

    @property
    def free_bytes(self) -> int:
        """Bytes available for new allocations."""
        return self.effective_capacity - self._used

    def set_soft_limit(self, limit: Optional[int]) -> None:
        """Cap usable capacity below the device size (fault injection:
        ``Device.inject_faults(oom_at_bytes=...)``).  ``None`` removes the
        cap.  Already-live allocations above the cap stay live; only new
        allocations see the reduced capacity."""
        if limit is not None and limit <= 0:
            raise ValueError(f"soft limit must be positive: {limit}")
        self._soft_limit = limit

    # -- allocation pressure ------------------------------------------------

    def register_pressure_callback(self, callback: PressureCallback) -> None:
        """Register a reclaimer consulted before an allocation fails.

        Callbacks run in registration order and receive the byte deficit;
        they free memory (pool freelists, resident-column caches) and
        return an estimate of what they released.  Rounds repeat while any
        callback reports progress — so an eviction that lands blocks in a
        pool freelist is trimmed back to the device on the next round.
        """
        self._pressure_callbacks.append(callback)

    def unregister_pressure_callback(self, callback: PressureCallback) -> None:
        """Remove a previously registered pressure callback (idempotent)."""
        try:
            self._pressure_callbacks.remove(callback)
        except ValueError:
            pass

    def _relieve_pressure(self, aligned: int) -> None:
        """Run pressure callbacks until the deficit clears or nothing moves."""
        if self._in_pressure or not self._pressure_callbacks:
            return
        self._in_pressure = True
        try:
            progress = True
            while progress and aligned > self.free_bytes:
                progress = False
                for callback in list(self._pressure_callbacks):
                    deficit = aligned - self.free_bytes
                    if deficit <= 0:
                        return
                    if callback(deficit) > 0:
                        progress = True
        finally:
            self._in_pressure = False

    @property
    def peak_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def live_buffer_count(self) -> int:
        """Number of currently live buffers."""
        return len(self._live)

    @property
    def stats(self) -> Tuple[int, int]:
        """(total allocations, total frees) over the manager's lifetime."""
        return (self._alloc_count, self._free_count)

    def allocate(self, nbytes: int, label: str = "buffer") -> DeviceBuffer:
        """Allocate ``nbytes`` (rounded up to alignment) or raise OOM.

        When the request does not fit, registered pressure callbacks get a
        chance to reclaim memory (pool trims, cache evictions) before the
        :class:`DeviceMemoryError` is raised.
        """
        aligned = align_size(nbytes)
        if aligned > self.free_bytes:
            self._relieve_pressure(aligned)
        if aligned > self.free_bytes:
            raise DeviceMemoryError(requested=aligned, available=self.free_bytes)
        buffer = DeviceBuffer(
            buffer_id=next(self._ids),
            nbytes=nbytes,
            aligned_nbytes=aligned,
            label=label,
        )
        self._live[buffer.buffer_id] = buffer
        self._used += aligned
        self._peak = max(self._peak, self._used)
        self._alloc_count += 1
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Release a live buffer; freeing twice or freeing a foreign buffer
        raises :class:`InvalidBufferError`."""
        if buffer.freed:
            raise InvalidBufferError(f"double free of {buffer!r}")
        stored = self._live.pop(buffer.buffer_id, None)
        if stored is not buffer:
            raise InvalidBufferError(f"buffer {buffer!r} not owned by this device")
        buffer.freed = True
        self._used -= buffer.aligned_nbytes
        self._free_count += 1

    def check_buffer(self, buffer: DeviceBuffer) -> None:
        """Validate that ``buffer`` is live on this device."""
        if buffer.freed:
            raise InvalidBufferError(f"use after free of {buffer!r}")
        if self._live.get(buffer.buffer_id) is not buffer:
            raise InvalidBufferError(f"buffer {buffer!r} not owned by this device")

    def leaked_buffers(self) -> Tuple[DeviceBuffer, ...]:
        """Buffers that are still live (for end-of-run leak checks)."""
        return tuple(self._live.values())

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._peak = self._used

    def __repr__(self) -> str:
        return (
            f"MemoryManager(used={self._used}/{self.capacity_bytes} bytes, "
            f"live={len(self._live)})"
        )


def pool_class_size(nbytes: int, alignment: int = ALLOCATION_ALIGNMENT) -> int:
    """Size class (bytes) a request is served from: the next power of two
    at or above the aligned size, with the alignment unit as the floor.

    Power-of-two binning is the classic caching-allocator compromise
    (PyTorch's CUDA allocator, CNMeM): at most 2x internal fragmentation
    in exchange for high freelist reuse across slightly-varying sizes.
    """
    aligned = align_size(nbytes, alignment)
    cls = alignment
    while cls < aligned:
        cls <<= 1
    return cls


@dataclass(frozen=True)
class PoolStats:
    """Point-in-time snapshot of a :class:`PoolAllocator`'s counters."""

    hits: int
    misses: int
    frees: int
    trims: int
    trimmed_bytes: int
    cached_bytes: int
    cached_blocks: int
    in_use_bytes: int
    in_use_blocks: int
    high_water_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of allocations served from a freelist."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def fragmentation(self) -> float:
        """Fraction of pool-held device bytes sitting idle in freelists."""
        total = self.cached_bytes + self.in_use_bytes
        return self.cached_bytes / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"pool: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), "
            f"{self.cached_bytes} B cached in {self.cached_blocks} blocks, "
            f"{self.in_use_bytes} B in use, "
            f"fragmentation {self.fragmentation:.0%}, "
            f"high water {self.high_water_bytes} B"
        )


class PoolAllocator:
    """RMM-style pooling sub-allocator over a :class:`MemoryManager`.

    Freed blocks are parked on per-size-class freelists *without*
    returning their bytes to the manager; a later allocation of the same
    class reuses the block (a *hit*: no ``cudaMalloc``, no implicit
    synchronization).  Misses fall through to the manager.  Under
    allocation pressure the pool trims freelists back to the manager —
    it registers itself as the manager's first pressure callback — so
    cached memory is never the reason an allocation fails.
    """

    def __init__(self, manager: MemoryManager) -> None:
        self.manager = manager
        self._freelists: Dict[int, List[DeviceBuffer]] = {}
        #: buffer_id -> size class, for every block handed out by the pool.
        self._handed_out: Dict[int, int] = {}
        #: buffer ids currently parked on a freelist (double-free guard).
        self._cached_ids: Dict[int, int] = {}
        self._cached_bytes = 0
        self.hits = 0
        self.misses = 0
        self.frees = 0
        self.trims = 0
        self.trimmed_bytes = 0
        manager.register_pressure_callback(self._pressure_trim)

    # -- introspection ------------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        """Device bytes parked on freelists (reserved but reusable)."""
        return self._cached_bytes

    @property
    def cached_blocks(self) -> int:
        """Number of blocks parked on freelists."""
        return len(self._cached_ids)

    @property
    def in_use_bytes(self) -> int:
        """Device bytes in blocks currently handed out to callers."""
        return sum(self._handed_out.values())

    @property
    def in_use_blocks(self) -> int:
        """Number of blocks currently handed out to callers."""
        return len(self._handed_out)

    def stats(self) -> PoolStats:
        """A frozen snapshot of the pool's counters."""
        return PoolStats(
            hits=self.hits,
            misses=self.misses,
            frees=self.frees,
            trims=self.trims,
            trimmed_bytes=self.trimmed_bytes,
            cached_bytes=self._cached_bytes,
            cached_blocks=len(self._cached_ids),
            in_use_bytes=self.in_use_bytes,
            in_use_blocks=len(self._handed_out),
            high_water_bytes=self.manager.peak_bytes,
        )

    # -- allocate / free ----------------------------------------------------

    def allocate(self, nbytes: int, label: str = "buffer") -> Tuple[DeviceBuffer, bool]:
        """Serve ``nbytes`` from a freelist or the manager.

        Returns ``(buffer, hit)`` where ``hit`` tells the device which
        cost to charge.  The buffer's ``aligned_nbytes`` is the size
        class, so manager accounting stays exact under reuse.
        """
        cls = pool_class_size(nbytes)
        freelist = self._freelists.get(cls)
        if freelist:
            buffer = freelist.pop()
            del self._cached_ids[buffer.buffer_id]
            self._cached_bytes -= cls
            buffer.nbytes = nbytes
            buffer.label = label
            self._handed_out[buffer.buffer_id] = cls
            self.hits += 1
            return buffer, True
        try:
            buffer = self.manager.allocate(cls, label)
        except DeviceMemoryError as exc:
            exc.pool_stats = self.stats()
            raise
        buffer.nbytes = nbytes
        self._handed_out[buffer.buffer_id] = cls
        self.misses += 1
        return buffer, False

    def free(self, buffer: DeviceBuffer) -> None:
        """Return a pool-served block to its freelist (not to the manager)."""
        if buffer.buffer_id in self._cached_ids:
            raise InvalidBufferError(f"double free into pool of {buffer!r}")
        cls = self._handed_out.pop(buffer.buffer_id, None)
        if cls is None:
            raise InvalidBufferError(f"buffer {buffer!r} not handed out by this pool")
        self.manager.check_buffer(buffer)
        self._freelists.setdefault(cls, []).append(buffer)
        self._cached_ids[buffer.buffer_id] = cls
        self._cached_bytes += cls
        self.frees += 1

    # -- trimming -----------------------------------------------------------

    def trim(self, nbytes: Optional[int] = None) -> int:
        """Release cached blocks back to the manager (``af::deviceGC``).

        Frees largest classes first until at least ``nbytes`` are back
        with the manager (all cached blocks when ``nbytes`` is None);
        returns the bytes released.
        """
        released = 0
        self.trims += 1
        for cls in sorted(self._freelists, reverse=True):
            freelist = self._freelists[cls]
            while freelist and (nbytes is None or released < nbytes):
                block = freelist.pop()
                del self._cached_ids[block.buffer_id]
                self._cached_bytes -= cls
                self.manager.free(block)
                released += cls
            if nbytes is not None and released >= nbytes:
                break
        self.trimmed_bytes += released
        return released

    def _pressure_trim(self, needed: int) -> int:
        return self.trim(needed)

    def close(self) -> None:
        """Trim everything and detach from the manager's pressure list."""
        self.trim()
        self.manager.unregister_pressure_callback(self._pressure_trim)

    def __repr__(self) -> str:
        return (
            f"PoolAllocator(cached={self._cached_bytes}B/"
            f"{len(self._cached_ids)} blocks, "
            f"in_use={self.in_use_bytes}B/{len(self._handed_out)} blocks)"
        )


class ScopedAllocation:
    """Context manager that frees a buffer on exit.

    Library emulations use this for the temporary scratch buffers their
    multi-kernel algorithms need (e.g. radix-sort histograms)::

        with ScopedAllocation(device.memory, nbytes, "radix_histogram"):
            ...
    """

    def __init__(self, manager: MemoryManager, nbytes: int, label: str) -> None:
        self._manager = manager
        self._nbytes = nbytes
        self._label = label
        self.buffer: Optional[DeviceBuffer] = None

    def __enter__(self) -> DeviceBuffer:
        self.buffer = self._manager.allocate(self._nbytes, self._label)
        return self.buffer

    def __exit__(self, *exc_info: object) -> None:
        if self.buffer is not None and not self.buffer.freed:
            self._manager.free(self.buffer)
