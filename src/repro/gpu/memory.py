"""Device memory manager for the simulated GPU.

Real GPU libraries differ substantially in how many intermediate buffers
their operator compositions allocate (the paper: chained library calls lead
to "unwanted intermediate data movements").  Tracking allocations lets the
benchmark harness report peak device memory per operator realization, and a
strict free/ownership discipline catches leaks in the library emulations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import DeviceMemoryError, InvalidBufferError

#: Allocation granularity in bytes.  CUDA's allocator rounds small requests
#: up; 256 B matches the documented texture/alignment granularity and keeps
#: accounting realistic for many tiny buffers.
ALLOCATION_ALIGNMENT = 256


def align_size(nbytes: int, alignment: int = ALLOCATION_ALIGNMENT) -> int:
    """Round ``nbytes`` up to the allocator granularity (minimum one unit)."""
    if nbytes < 0:
        raise ValueError(f"allocation size cannot be negative: {nbytes}")
    if nbytes == 0:
        return alignment
    return ((nbytes + alignment - 1) // alignment) * alignment


@dataclass
class DeviceBuffer:
    """Handle to a live device allocation."""

    buffer_id: int
    nbytes: int
    aligned_nbytes: int
    label: str
    freed: bool = field(default=False)

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return (
            f"DeviceBuffer(id={self.buffer_id}, nbytes={self.nbytes}, "
            f"label={self.label!r}, {state})"
        )


class MemoryManager:
    """Tracks device allocations against a fixed capacity.

    The manager models capacity and accounting, not placement: the simulator
    has no address space, only byte budgets.  ``peak_bytes`` gives the
    high-water mark used by the benchmark reports.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"device capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._peak = 0
        self._live: Dict[int, DeviceBuffer] = {}
        self._ids = itertools.count(1)
        self._alloc_count = 0
        self._free_count = 0

    @property
    def used_bytes(self) -> int:
        """Currently allocated bytes (after alignment)."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes available for new allocations."""
        return self.capacity_bytes - self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def live_buffer_count(self) -> int:
        """Number of currently live buffers."""
        return len(self._live)

    @property
    def stats(self) -> Tuple[int, int]:
        """(total allocations, total frees) over the manager's lifetime."""
        return (self._alloc_count, self._free_count)

    def allocate(self, nbytes: int, label: str = "buffer") -> DeviceBuffer:
        """Allocate ``nbytes`` (rounded up to alignment) or raise OOM."""
        aligned = align_size(nbytes)
        if aligned > self.free_bytes:
            raise DeviceMemoryError(requested=aligned, available=self.free_bytes)
        buffer = DeviceBuffer(
            buffer_id=next(self._ids),
            nbytes=nbytes,
            aligned_nbytes=aligned,
            label=label,
        )
        self._live[buffer.buffer_id] = buffer
        self._used += aligned
        self._peak = max(self._peak, self._used)
        self._alloc_count += 1
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Release a live buffer; freeing twice or freeing a foreign buffer
        raises :class:`InvalidBufferError`."""
        if buffer.freed:
            raise InvalidBufferError(f"double free of {buffer!r}")
        stored = self._live.pop(buffer.buffer_id, None)
        if stored is not buffer:
            raise InvalidBufferError(f"buffer {buffer!r} not owned by this device")
        buffer.freed = True
        self._used -= buffer.aligned_nbytes
        self._free_count += 1

    def check_buffer(self, buffer: DeviceBuffer) -> None:
        """Validate that ``buffer`` is live on this device."""
        if buffer.freed:
            raise InvalidBufferError(f"use after free of {buffer!r}")
        if self._live.get(buffer.buffer_id) is not buffer:
            raise InvalidBufferError(f"buffer {buffer!r} not owned by this device")

    def leaked_buffers(self) -> Tuple[DeviceBuffer, ...]:
        """Buffers that are still live (for end-of-run leak checks)."""
        return tuple(self._live.values())

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._peak = self._used

    def __repr__(self) -> str:
        return (
            f"MemoryManager(used={self._used}/{self.capacity_bytes} bytes, "
            f"live={len(self._live)})"
        )


class ScopedAllocation:
    """Context manager that frees a buffer on exit.

    Library emulations use this for the temporary scratch buffers their
    multi-kernel algorithms need (e.g. radix-sort histograms)::

        with ScopedAllocation(device.memory, nbytes, "radix_histogram"):
            ...
    """

    def __init__(self, manager: MemoryManager, nbytes: int, label: str) -> None:
        self._manager = manager
        self._nbytes = nbytes
        self._label = label
        self.buffer: Optional[DeviceBuffer] = None

    def __enter__(self) -> DeviceBuffer:
        self.buffer = self._manager.allocate(self._nbytes, self._label)
        return self.buffer

    def __exit__(self, *exc_info: object) -> None:
        if self.buffer is not None and not self.buffer.freed:
            self._manager.free(self.buffer)
