"""Simulated GPU device: spec presets and the :class:`Device` facade.

The device ties together the simulated clock, memory manager, profiler, and
the kernel/transfer cost models.  Library emulations never advance the clock
directly — they describe work (a :class:`~repro.gpu.kernel.KernelCost`, a
transfer size, a compile request) and the device prices it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.gpu import profiler as prof
from repro.gpu.clock import SimulatedClock
from repro.gpu.kernel import EfficiencyProfile, KernelCost, kernel_duration
from repro.gpu.memory import DeviceBuffer, MemoryManager
from repro.gpu.stream import (
    DEFAULT_STREAM_ID,
    ENGINE_COMPUTE,
    ENGINE_D2H,
    ENGINE_H2D,
    ENGINES,
    EngineTimeline,
    Stream,
    StreamEvent,
    StreamStats,
    engine_stats,
)
from repro.gpu.transfer import PCIE3_X16, PCIE4_X16, SHARED_MEMORY_LINK, LinkSpec


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    ``peak_flops`` is derived as ``sm_count * cores_per_sm * clock * 2``
    (fused multiply-add counts as two operations), matching how vendors
    quote single-precision peaks.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    core_clock_hz: float
    dram_bandwidth: float  # bytes/second
    memory_bytes: int
    kernel_launch_latency: float  # seconds per launch (driver + dispatch)
    pass_tail_latency: float  # seconds to drain/refill SMs between passes
    link: LinkSpec = field(default=PCIE3_X16)

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM and core counts must be positive")
        if self.core_clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("clock and bandwidth must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("device memory must be positive")

    @property
    def peak_flops(self) -> float:
        """Single-precision peak in FLOP/s (FMA counted as 2 ops)."""
        return self.sm_count * self.cores_per_sm * self.core_clock_hz * 2.0


# ---------------------------------------------------------------------------
# Device presets.
#
# GTX_1080TI matches the 2019/2020-era discrete GPU class the paper's group
# used for their GPU DBMS work (CoGaDB papers report GTX-class devices).
# The launch latency of ~5 us is the widely reported CUDA null-kernel cost.
# ---------------------------------------------------------------------------

GTX_1080TI = DeviceSpec(
    name="gtx-1080ti",
    sm_count=28,
    cores_per_sm=128,
    core_clock_hz=1.58e9,
    dram_bandwidth=484.0e9,
    memory_bytes=11 * 1024**3,
    kernel_launch_latency=5.0e-6,
    pass_tail_latency=2.0e-6,
    link=PCIE3_X16,
)

TESLA_V100 = DeviceSpec(
    name="tesla-v100",
    sm_count=80,
    cores_per_sm=64,
    core_clock_hz=1.53e9,
    dram_bandwidth=900.0e9,
    memory_bytes=16 * 1024**3,
    kernel_launch_latency=4.0e-6,
    pass_tail_latency=1.5e-6,
    link=PCIE4_X16,
)

#: A small integrated GPU: useful for testing OOM paths with realistic sizes.
INTEGRATED_GPU = DeviceSpec(
    name="integrated",
    sm_count=6,
    cores_per_sm=64,
    core_clock_hz=1.1e9,
    dram_bandwidth=34.0e9,
    memory_bytes=2 * 1024**3,
    kernel_launch_latency=8.0e-6,
    pass_tail_latency=3.0e-6,
    link=SHARED_MEMORY_LINK,
)

PRESETS: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (GTX_1080TI, TESLA_V100, INTEGRATED_GPU)
}


def get_spec(name: str) -> DeviceSpec:
    """Look up a device preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown device preset {name!r}; known presets: {known}")


class Device:
    """A simulated GPU instance.

    All pricing goes through the four ``launch`` / ``transfer_*`` /
    ``compile`` methods so that every simulated nanosecond is matched by a
    profiler event.  Each method accepts an optional ``stream``: work on a
    :class:`~repro.gpu.stream.Stream` is scheduled asynchronously on the
    per-engine timelines (kernels on the compute engine, one copy engine
    per direction) and overlaps with work on other streams.  Without a
    stream — and with no :meth:`stream_scope` active — work runs on the
    legacy default stream: it drains every engine first and runs
    exclusively, which reproduces the original serial timeline exactly.
    """

    def __init__(
        self,
        spec: DeviceSpec = GTX_1080TI,
        *,
        profile_events: bool = True,
    ) -> None:
        self.spec = spec
        self.clock = SimulatedClock()
        self.memory = MemoryManager(spec.memory_bytes)
        self.profiler = prof.Profiler(enabled=profile_events)
        #: Bumped on every reset; streams/events from older epochs are stale.
        self.epoch = 0
        self._engines: Dict[str, EngineTimeline] = {
            name: EngineTimeline(name) for name in ENGINES
        }
        self._streams: List[Stream] = []
        self._next_stream_id = 1
        #: Completion time of the latest legacy default-stream item; async
        #: work never starts before it (CUDA stream-0 semantics).
        self._barrier = 0.0
        self._current_stream: Optional[Stream] = None

    # -- streams -----------------------------------------------------------

    def create_stream(self, name: Optional[str] = None) -> Stream:
        """Create an asynchronous work queue (``cudaStreamCreate``)."""
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        stream = Stream(self, stream_id, name or f"stream-{stream_id}")
        self._streams.append(stream)
        return stream

    @property
    def current_stream(self) -> Optional[Stream]:
        """The stream installed by the innermost :meth:`stream_scope`."""
        return self._current_stream

    @contextmanager
    def stream_scope(self, stream: Optional[Stream]) -> Iterator[Optional[Stream]]:
        """Route all work priced inside the scope onto ``stream``.

        An explicit ``stream=`` argument on a pricing call still wins;
        ``stream_scope(None)`` forces the legacy default stream inside an
        outer scope.  Scopes nest.
        """
        previous = self._current_stream
        self._current_stream = stream
        try:
            yield stream
        finally:
            self._current_stream = previous

    def synchronize(self) -> float:
        """Drain all engines and streams (``cudaDeviceSynchronize``).

        Advances the global clock to the latest completion time across
        every engine and stream cursor; returns the new clock time.  The
        sync point also becomes the submission floor: the host waited
        here, so work submitted afterwards — on any stream — cannot be
        scheduled before it.  Back-to-back identical runs therefore
        report identical durations.
        """
        latest = self._barrier
        for engine in self._engines.values():
            latest = max(latest, engine.busy_until)
        for stream in self._streams:
            latest = max(latest, stream.cursor)
        self._barrier = latest
        return self.clock.advance_to(latest)

    def _raise_submit_floor(self, timestamp: float) -> None:
        """Raise the submission floor to ``timestamp`` (monotonic).

        Called when the host blocks (stream/device synchronisation): work
        submitted after the host resumed cannot be scheduled before the
        point it resumed at.  Implemented via the default-stream barrier,
        which both legacy and async scheduling already respect.
        """
        if timestamp > self._barrier:
            self._barrier = timestamp

    def engine_timeline(self, name: str) -> EngineTimeline:
        """The occupancy timeline of one engine (tests, reports)."""
        return self._engines[name]

    def engine_summary(self) -> StreamStats:
        """Engine busy-time summary against the current clock makespan."""
        return engine_stats(list(self._engines.values()), self.clock.now)

    def record_event(self, stream: Optional[Stream] = None) -> StreamEvent:
        """Record an event on ``stream`` (default: the legacy stream,
        whose events capture the completion of all default-stream work)."""
        if stream is not None:
            return stream.record_event()
        return StreamEvent(
            name="default-stream-event",
            stream_id=DEFAULT_STREAM_ID,
            timestamp=max(self.clock.now, self._barrier),
            epoch=self.epoch,
        )

    def _resolve_stream(self, stream: Optional[Stream]) -> Optional[Stream]:
        """Explicit stream argument, else the scope stream, else legacy."""
        return stream if stream is not None else self._current_stream

    def _schedule(
        self, engine_name: str, duration: float, stream: Optional[Stream]
    ) -> Tuple[float, float, int]:
        """Resolve one work item's (start, end, stream id).

        Legacy default-stream items drain every engine, run exclusively,
        and raise the barrier; stream items start at the latest of the
        stream's FIFO cursor, the barrier, and the engine's free time.
        The global clock advances to the item's end (monotonic max).
        """
        engine = self._engines[engine_name]
        if stream is None:
            earliest = self.clock.now
            if self._barrier > earliest:
                earliest = self._barrier
            for other in self._engines.values():
                if other.busy_until > earliest:
                    earliest = other.busy_until
            start, end = engine.schedule(earliest, duration)
            self._barrier = end
            self.clock.advance_to(end)
            return start, end, DEFAULT_STREAM_ID
        stream._check_epoch()
        earliest = max(stream.cursor, self._barrier)
        start, end = engine.schedule(earliest, duration)
        stream._advance(end)
        self.clock.advance_to(end)
        return start, end, stream.stream_id

    # -- kernels ----------------------------------------------------------

    def launch(
        self,
        cost: KernelCost,
        profile: EfficiencyProfile,
        stream: Optional[Stream] = None,
    ) -> float:
        """Price and execute one kernel launch; returns its duration."""
        duration = kernel_duration(cost, self.spec, profile)
        start, _end, stream_id = self._schedule(
            ENGINE_COMPUTE, duration, self._resolve_stream(stream)
        )
        self.profiler.record(
            prof.KERNEL,
            cost.name,
            start,
            duration,
            elements=cost.elements,
            flops=cost.total_flops,
            bytes=cost.total_bytes,
            library=profile.name,
            stream=stream_id,
            engine=ENGINE_COMPUTE,
        )
        return duration

    # -- transfers --------------------------------------------------------

    def transfer_to_device(
        self,
        nbytes: int,
        label: str = "h2d",
        stream: Optional[Stream] = None,
    ) -> float:
        """Host → device copy of ``nbytes`` (async when on a stream)."""
        duration = self.spec.link.transfer_time(nbytes)
        start, _end, stream_id = self._schedule(
            ENGINE_H2D, duration, self._resolve_stream(stream)
        )
        self.profiler.record(
            prof.TRANSFER_H2D, label, start, duration,
            nbytes=nbytes, stream=stream_id, engine=ENGINE_H2D,
        )
        return duration

    def transfer_to_host(
        self,
        nbytes: int,
        label: str = "d2h",
        stream: Optional[Stream] = None,
    ) -> float:
        """Device → host copy of ``nbytes`` (async when on a stream)."""
        duration = self.spec.link.transfer_time(nbytes)
        start, _end, stream_id = self._schedule(
            ENGINE_D2H, duration, self._resolve_stream(stream)
        )
        self.profiler.record(
            prof.TRANSFER_D2H, label, start, duration,
            nbytes=nbytes, stream=stream_id, engine=ENGINE_D2H,
        )
        return duration

    # -- runtime compilation (OpenCL program build / ArrayFire JIT) -------

    def compile_program(self, name: str, cost_seconds: float) -> float:
        """Charge a runtime compilation (OpenCL build, JIT codegen).

        Compilation is host/driver work: it blocks the submitting thread,
        so it always serialises against everything regardless of any
        active stream scope (it drains the engines and raises the
        default-stream barrier).
        """
        if cost_seconds < 0.0:
            raise ValueError(f"compile cost cannot be negative: {cost_seconds}")
        start = self.clock.now
        if self._barrier > start:
            start = self._barrier
        for engine in self._engines.values():
            if engine.busy_until > start:
                start = engine.busy_until
        end = start + cost_seconds
        self._barrier = end
        self.clock.advance_to(end)
        self.profiler.record(prof.COMPILE, name, start, cost_seconds)
        return cost_seconds

    # -- memory -----------------------------------------------------------

    def allocate(self, nbytes: int, label: str = "buffer") -> DeviceBuffer:
        """Allocate device memory and record the event (allocation itself is
        priced at zero time: CUDA allocations are host-side and the paper's
        benchmarks pre-allocate)."""
        buffer = self.memory.allocate(nbytes, label)
        self.profiler.record(
            prof.ALLOC, label, self.clock.now, 0.0, nbytes=nbytes
        )
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Free device memory and record the event."""
        self.memory.free(buffer)
        self.profiler.record(
            prof.FREE, buffer.label, self.clock.now, 0.0, nbytes=buffer.nbytes
        )

    def alloc_for_array(self, array: np.ndarray, label: str) -> DeviceBuffer:
        """Allocate a buffer sized for ``array``."""
        return self.allocate(int(array.nbytes), label)

    # -- bookkeeping -------------------------------------------------------

    def reset(self) -> None:
        """Reset clock, trace, engines, streams, and peak counters
        (buffers stay allocated).

        Bumps the device epoch: existing :class:`Stream` objects restart
        from cursor zero on next use, and events recorded before the
        reset can no longer be waited on.
        """
        self.clock.reset()
        self.profiler.clear()
        self.memory.reset_peak()
        self.epoch += 1
        self._barrier = 0.0
        for engine in self._engines.values():
            engine.reset()
        for stream in self._streams:
            stream._check_epoch()

    def __repr__(self) -> str:
        return (
            f"Device(spec={self.spec.name!r}, t={self.clock.now_ms:.3f}ms, "
            f"mem={self.memory.used_bytes}/{self.spec.memory_bytes})"
        )
