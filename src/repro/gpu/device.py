"""Simulated GPU device: spec presets and the :class:`Device` facade.

The device ties together the simulated clock, memory manager, profiler, and
the kernel/transfer cost models.  Library emulations never advance the clock
directly — they describe work (a :class:`~repro.gpu.kernel.KernelCost`, a
transfer size, a compile request) and the device prices it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import DeviceMemoryError, TransferError
from repro.gpu import profiler as prof
from repro.gpu.clock import SimulatedClock
from repro.gpu.kernel import EfficiencyProfile, KernelCost, kernel_duration
from repro.gpu.memory import (
    CUDA_FREE_LATENCY,
    CUDA_MALLOC_LATENCY,
    POOL_HIT_LATENCY,
    DeviceBuffer,
    MemoryManager,
    PoolAllocator,
    align_size,
)
from repro.gpu.stream import (
    DEFAULT_STREAM_ID,
    ENGINE_COMPUTE,
    ENGINE_D2H,
    ENGINE_H2D,
    ENGINES,
    EngineTimeline,
    Stream,
    StreamEvent,
    StreamStats,
    engine_stats,
)
from repro.gpu.transfer import (
    NVME_SSD,
    PCIE3_X16,
    PCIE4_X16,
    SHARED_MEMORY_LINK,
    LinkSpec,
)


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    ``peak_flops`` is derived as ``sm_count * cores_per_sm * clock * 2``
    (fused multiply-add counts as two operations), matching how vendors
    quote single-precision peaks.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    core_clock_hz: float
    dram_bandwidth: float  # bytes/second
    memory_bytes: int
    kernel_launch_latency: float  # seconds per launch (driver + dispatch)
    pass_tail_latency: float  # seconds to drain/refill SMs between passes
    link: LinkSpec = field(default=PCIE3_X16)

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM and core counts must be positive")
        if self.core_clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("clock and bandwidth must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("device memory must be positive")

    @property
    def peak_flops(self) -> float:
        """Single-precision peak in FLOP/s (FMA counted as 2 ops)."""
        return self.sm_count * self.cores_per_sm * self.core_clock_hz * 2.0


# ---------------------------------------------------------------------------
# Device presets.
#
# GTX_1080TI matches the 2019/2020-era discrete GPU class the paper's group
# used for their GPU DBMS work (CoGaDB papers report GTX-class devices).
# The launch latency of ~5 us is the widely reported CUDA null-kernel cost.
# ---------------------------------------------------------------------------

GTX_1080TI = DeviceSpec(
    name="gtx-1080ti",
    sm_count=28,
    cores_per_sm=128,
    core_clock_hz=1.58e9,
    dram_bandwidth=484.0e9,
    memory_bytes=11 * 1024**3,
    kernel_launch_latency=5.0e-6,
    pass_tail_latency=2.0e-6,
    link=PCIE3_X16,
)

TESLA_V100 = DeviceSpec(
    name="tesla-v100",
    sm_count=80,
    cores_per_sm=64,
    core_clock_hz=1.53e9,
    dram_bandwidth=900.0e9,
    memory_bytes=16 * 1024**3,
    kernel_launch_latency=4.0e-6,
    pass_tail_latency=1.5e-6,
    link=PCIE4_X16,
)

#: A small integrated GPU: useful for testing OOM paths with realistic sizes.
INTEGRATED_GPU = DeviceSpec(
    name="integrated",
    sm_count=6,
    cores_per_sm=64,
    core_clock_hz=1.1e9,
    dram_bandwidth=34.0e9,
    memory_bytes=2 * 1024**3,
    kernel_launch_latency=8.0e-6,
    pass_tail_latency=3.0e-6,
    link=SHARED_MEMORY_LINK,
)

PRESETS: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (GTX_1080TI, TESLA_V100, INTEGRATED_GPU)
}


def get_spec(name: str) -> DeviceSpec:
    """Look up a device preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown device preset {name!r}; known presets: {known}")


#: Allocation pricing modes (``Device(allocator=...)``):
#:
#: * ``"null"``  — legacy: allocations/frees are free and asynchronous, as
#:   if every buffer were pre-allocated (how the paper's benchmarks run).
#: * ``"malloc"`` — every allocation is a real ``cudaMalloc``: it charges
#:   host time *and* drains the engines (the driver's implicit sync), and
#:   every free is a ``cudaFree``.
#: * ``"pool"``  — a :class:`~repro.gpu.memory.PoolAllocator` sits in
#:   front of the memory manager: freelist hits cost only host
#:   bookkeeping; misses pay the full ``cudaMalloc`` path.
ALLOCATOR_KINDS = ("null", "malloc", "pool")


@dataclass
class FaultPlan:
    """Deterministic fault-injection state (``Device.inject_faults``).

    Countdown semantics: ``oom_after`` / ``transfer_fault_after`` fire on
    the N-th *subsequent* call (0 = the very next one), then clear — so a
    retry after the fault succeeds, which is exactly what the recovery
    paths need to be testable.  ``oom_at_bytes`` is persistent: it caps
    usable capacity until :meth:`Device.clear_faults`.
    """

    oom_after: Optional[int] = None
    oom_at_bytes: Optional[int] = None
    transfer_fault_after: Optional[int] = None
    transfer_direction: str = "any"  # "h2d" | "d2h" | "any"


class Device:
    """A simulated GPU instance.

    All pricing goes through the four ``launch`` / ``transfer_*`` /
    ``compile`` methods so that every simulated nanosecond is matched by a
    profiler event.  Each method accepts an optional ``stream``: work on a
    :class:`~repro.gpu.stream.Stream` is scheduled asynchronously on the
    per-engine timelines (kernels on the compute engine, one copy engine
    per direction) and overlaps with work on other streams.  Without a
    stream — and with no :meth:`stream_scope` active — work runs on the
    legacy default stream: it drains every engine first and runs
    exclusively, which reproduces the original serial timeline exactly.
    """

    def __init__(
        self,
        spec: DeviceSpec = GTX_1080TI,
        *,
        profile_events: bool = True,
        allocator: str = "null",
    ) -> None:
        if allocator not in ALLOCATOR_KINDS:
            known = ", ".join(ALLOCATOR_KINDS)
            raise ValueError(f"unknown allocator {allocator!r}; known: {known}")
        self.spec = spec
        self.clock = SimulatedClock()
        self.memory = MemoryManager(spec.memory_bytes)
        self.allocator_kind = allocator
        #: Pooling sub-allocator (``allocator="pool"`` only), else None.
        self.pool: Optional[PoolAllocator] = (
            PoolAllocator(self.memory) if allocator == "pool" else None
        )
        self._faults = FaultPlan()
        self._transfer_count = 0
        self.profiler = prof.Profiler(enabled=profile_events)
        #: Bumped on every reset; streams/events from older epochs are stale.
        self.epoch = 0
        self._engines: Dict[str, EngineTimeline] = {
            name: EngineTimeline(name) for name in ENGINES
        }
        self._streams: List[Stream] = []
        self._next_stream_id = 1
        #: Completion time of the latest legacy default-stream item; async
        #: work never starts before it (CUDA stream-0 semantics).
        self._barrier = 0.0
        self._current_stream: Optional[Stream] = None

    # -- streams -----------------------------------------------------------

    def create_stream(self, name: Optional[str] = None) -> Stream:
        """Create an asynchronous work queue (``cudaStreamCreate``)."""
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        stream = Stream(self, stream_id, name or f"stream-{stream_id}")
        self._streams.append(stream)
        return stream

    @property
    def current_stream(self) -> Optional[Stream]:
        """The stream installed by the innermost :meth:`stream_scope`."""
        return self._current_stream

    @contextmanager
    def stream_scope(self, stream: Optional[Stream]) -> Iterator[Optional[Stream]]:
        """Route all work priced inside the scope onto ``stream``.

        An explicit ``stream=`` argument on a pricing call still wins;
        ``stream_scope(None)`` forces the legacy default stream inside an
        outer scope.  Scopes nest.
        """
        previous = self._current_stream
        self._current_stream = stream
        try:
            yield stream
        finally:
            self._current_stream = previous

    def synchronize(self) -> float:
        """Drain all engines and streams (``cudaDeviceSynchronize``).

        Advances the global clock to the latest completion time across
        every engine and stream cursor; returns the new clock time.  The
        sync point also becomes the submission floor: the host waited
        here, so work submitted afterwards — on any stream — cannot be
        scheduled before it.  Back-to-back identical runs therefore
        report identical durations.
        """
        latest = self._barrier
        for engine in self._engines.values():
            latest = max(latest, engine.busy_until)
        for stream in self._streams:
            latest = max(latest, stream.cursor)
        self._barrier = latest
        return self.clock.advance_to(latest)

    def _raise_submit_floor(self, timestamp: float) -> None:
        """Raise the submission floor to ``timestamp`` (monotonic).

        Called when the host blocks (stream/device synchronisation): work
        submitted after the host resumed cannot be scheduled before the
        point it resumed at.  Implemented via the default-stream barrier,
        which both legacy and async scheduling already respect.
        """
        if timestamp > self._barrier:
            self._barrier = timestamp

    def engine_timeline(self, name: str) -> EngineTimeline:
        """The occupancy timeline of one engine (tests, reports)."""
        return self._engines[name]

    def engine_summary(self) -> StreamStats:
        """Engine busy-time summary against the current clock makespan."""
        return engine_stats(list(self._engines.values()), self.clock.now)

    def record_event(self, stream: Optional[Stream] = None) -> StreamEvent:
        """Record an event on ``stream`` (default: the legacy stream,
        whose events capture the completion of all default-stream work)."""
        if stream is not None:
            return stream.record_event()
        return StreamEvent(
            name="default-stream-event",
            stream_id=DEFAULT_STREAM_ID,
            timestamp=max(self.clock.now, self._barrier),
            epoch=self.epoch,
        )

    def _resolve_stream(self, stream: Optional[Stream]) -> Optional[Stream]:
        """Explicit stream argument, else the scope stream, else legacy."""
        return stream if stream is not None else self._current_stream

    def _schedule(
        self, engine_name: str, duration: float, stream: Optional[Stream]
    ) -> Tuple[float, float, int]:
        """Resolve one work item's (start, end, stream id).

        Legacy default-stream items drain every engine, run exclusively,
        and raise the barrier; stream items start at the latest of the
        stream's FIFO cursor, the barrier, and the engine's free time.
        The global clock advances to the item's end (monotonic max).
        """
        engine = self._engines[engine_name]
        if stream is None:
            earliest = self.clock.now
            if self._barrier > earliest:
                earliest = self._barrier
            for other in self._engines.values():
                if other.busy_until > earliest:
                    earliest = other.busy_until
            start, end = engine.schedule(earliest, duration)
            self._barrier = end
            self.clock.advance_to(end)
            return start, end, DEFAULT_STREAM_ID
        stream._check_epoch()
        earliest = max(stream.cursor, self._barrier)
        start, end = engine.schedule(earliest, duration)
        stream._advance(end)
        self.clock.advance_to(end)
        return start, end, stream.stream_id

    # -- kernels ----------------------------------------------------------

    def launch(
        self,
        cost: KernelCost,
        profile: EfficiencyProfile,
        stream: Optional[Stream] = None,
    ) -> float:
        """Price and execute one kernel launch; returns its duration."""
        duration = kernel_duration(cost, self.spec, profile)
        start, _end, stream_id = self._schedule(
            ENGINE_COMPUTE, duration, self._resolve_stream(stream)
        )
        self.profiler.record(
            prof.KERNEL,
            cost.name,
            start,
            duration,
            elements=cost.elements,
            flops=cost.total_flops,
            bytes=cost.total_bytes,
            library=profile.name,
            stream=stream_id,
            engine=ENGINE_COMPUTE,
        )
        return duration

    # -- transfers --------------------------------------------------------

    def _check_transfer_fault(self, direction: str, label: str) -> None:
        """Fire a pending injected transfer fault if its countdown hits 0."""
        index = self._transfer_count
        self._transfer_count += 1
        plan = self._faults
        if plan.transfer_fault_after is None:
            return
        if plan.transfer_direction not in ("any", direction):
            return
        if plan.transfer_fault_after > 0:
            plan.transfer_fault_after -= 1
            return
        plan.transfer_fault_after = None
        raise TransferError(direction=direction, index=index, label=label)

    def transfer_to_device(
        self,
        nbytes: int,
        label: str = "h2d",
        stream: Optional[Stream] = None,
    ) -> float:
        """Host → device copy of ``nbytes`` (async when on a stream)."""
        self._check_transfer_fault("h2d", label)
        duration = self.spec.link.transfer_time(nbytes)
        start, _end, stream_id = self._schedule(
            ENGINE_H2D, duration, self._resolve_stream(stream)
        )
        self.profiler.record(
            prof.TRANSFER_H2D, label, start, duration,
            nbytes=nbytes, stream=stream_id, engine=ENGINE_H2D,
        )
        return duration

    def transfer_to_host(
        self,
        nbytes: int,
        label: str = "d2h",
        stream: Optional[Stream] = None,
    ) -> float:
        """Device → host copy of ``nbytes`` (async when on a stream)."""
        self._check_transfer_fault("d2h", label)
        duration = self.spec.link.transfer_time(nbytes)
        start, _end, stream_id = self._schedule(
            ENGINE_D2H, duration, self._resolve_stream(stream)
        )
        self.profiler.record(
            prof.TRANSFER_D2H, label, start, duration,
            nbytes=nbytes, stream=stream_id, engine=ENGINE_D2H,
        )
        return duration

    def host_io(
        self,
        nbytes: int,
        label: str = "nvme",
        link: Optional[LinkSpec] = None,
    ) -> float:
        """Charge a host <-> storage I/O (the tiered store's NVMe leg).

        Unlike :meth:`transfer_to_device`/:meth:`transfer_to_host`, this
        models a blocking host-side read/write against a storage link: it
        occupies no copy engine (so it cannot overlap stream work, like
        an O_DIRECT syscall), is priced on ``link`` rather than the PCIe
        link, and is *not* subject to injected transfer faults — the
        fault plan targets the host/device interconnect.
        """
        if link is None:
            link = NVME_SSD
        duration = link.transfer_time(nbytes)
        start = self._host_block(duration, drain_engines=False)
        self.profiler.record(
            prof.HOST_IO, label, start, duration,
            nbytes=nbytes, link=link.name,
        )
        return duration

    # -- runtime compilation (OpenCL program build / ArrayFire JIT) -------

    def compile_program(self, name: str, cost_seconds: float) -> float:
        """Charge a runtime compilation (OpenCL build, JIT codegen).

        Compilation is host/driver work: it blocks the submitting thread,
        so it always serialises against everything regardless of any
        active stream scope (it drains the engines and raises the
        default-stream barrier).
        """
        if cost_seconds < 0.0:
            raise ValueError(f"compile cost cannot be negative: {cost_seconds}")
        start = self.clock.now
        if self._barrier > start:
            start = self._barrier
        for engine in self._engines.values():
            if engine.busy_until > start:
                start = engine.busy_until
        end = start + cost_seconds
        self._barrier = end
        self.clock.advance_to(end)
        self.profiler.record(prof.COMPILE, name, start, cost_seconds)
        return cost_seconds

    # -- fault injection ---------------------------------------------------

    def inject_faults(
        self,
        *,
        oom_at_alloc: Optional[int] = None,
        oom_at_bytes: Optional[int] = None,
        transfer_fault_at: Optional[int] = None,
        transfer_direction: str = "any",
    ) -> None:
        """Arm deterministic failures so every error path is testable.

        * ``oom_at_alloc=N`` — the N-th subsequent allocation (0 = the
          next one) raises :class:`DeviceMemoryError`, then the fault
          clears (a retry allocates normally).
        * ``oom_at_bytes=B`` — usable capacity is capped at ``B`` bytes
          until :meth:`clear_faults`; allocations over the cap fail after
          pressure callbacks (pool trim, cache eviction) have run.
        * ``transfer_fault_at=N`` — the N-th subsequent transfer matching
          ``transfer_direction`` (``"h2d"``/``"d2h"``/``"any"``) raises
          :class:`~repro.errors.TransferError`, then the fault clears.
        """
        if oom_at_alloc is not None and oom_at_alloc < 0:
            raise ValueError(f"oom_at_alloc cannot be negative: {oom_at_alloc}")
        if transfer_fault_at is not None and transfer_fault_at < 0:
            raise ValueError(
                f"transfer_fault_at cannot be negative: {transfer_fault_at}"
            )
        if transfer_direction not in ("any", "h2d", "d2h"):
            raise ValueError(
                f"transfer_direction must be any/h2d/d2h: {transfer_direction!r}"
            )
        if oom_at_alloc is not None:
            self._faults.oom_after = oom_at_alloc
        if oom_at_bytes is not None:
            self._faults.oom_at_bytes = oom_at_bytes
            self.memory.set_soft_limit(oom_at_bytes)
        if transfer_fault_at is not None:
            self._faults.transfer_fault_after = transfer_fault_at
            self._faults.transfer_direction = transfer_direction

    def clear_faults(self) -> None:
        """Disarm all injected faults (including the byte-capacity cap)."""
        self._faults = FaultPlan()
        self.memory.set_soft_limit(None)

    def _check_alloc_fault(self, nbytes: int) -> None:
        plan = self._faults
        if plan.oom_after is None:
            return
        if plan.oom_after > 0:
            plan.oom_after -= 1
            return
        plan.oom_after = None
        raise DeviceMemoryError(
            requested=align_size(nbytes),
            available=self.memory.free_bytes,
            pool_stats=self.pool.stats() if self.pool is not None else None,
            injected=True,
        )

    # -- memory -----------------------------------------------------------

    def _host_block(self, duration: float, drain_engines: bool) -> float:
        """Charge blocking host/driver time (cudaMalloc, cudaFree).

        Returns the start time.  ``drain_engines`` models the driver's
        implicit device synchronization: the call waits for every engine,
        exactly why a mid-pipeline ``cudaMalloc`` kills stream overlap.
        """
        start = self.clock.now
        if self._barrier > start:
            start = self._barrier
        if drain_engines:
            for engine in self._engines.values():
                if engine.busy_until > start:
                    start = engine.busy_until
        end = start + duration
        self._barrier = end
        self.clock.advance_to(end)
        return start

    def allocate(self, nbytes: int, label: str = "buffer") -> DeviceBuffer:
        """Allocate device memory, charge the allocator's modelled cost,
        and record the event.

        With the legacy ``"null"`` allocator the charge is zero (the
        paper's benchmarks pre-allocate); ``"malloc"`` charges a full
        ``cudaMalloc`` (host latency + engine drain) per call; ``"pool"``
        charges the cheap freelist path on hits and ``cudaMalloc`` only
        on misses.
        """
        self._check_alloc_fault(nbytes)
        if self.pool is not None:
            buffer, hit = self.pool.allocate(nbytes, label)
            duration = POOL_HIT_LATENCY if hit else CUDA_MALLOC_LATENCY
            start = self._host_block(duration, drain_engines=not hit)
            self.profiler.record(
                prof.ALLOC, label, start, duration,
                nbytes=nbytes, pool="hit" if hit else "miss",
            )
            return buffer
        buffer = self.memory.allocate(nbytes, label)
        if self.allocator_kind == "malloc":
            start = self._host_block(CUDA_MALLOC_LATENCY, drain_engines=True)
            self.profiler.record(
                prof.ALLOC, label, start, CUDA_MALLOC_LATENCY, nbytes=nbytes
            )
        else:
            self.profiler.record(
                prof.ALLOC, label, self.clock.now, 0.0, nbytes=nbytes
            )
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Free device memory (to the pool's freelist when pooled) and
        record the event."""
        if self.pool is not None:
            self.pool.free(buffer)
            start = self._host_block(POOL_HIT_LATENCY, drain_engines=False)
            self.profiler.record(
                prof.FREE, buffer.label, start, POOL_HIT_LATENCY,
                nbytes=buffer.nbytes, pool="hit",
            )
            return
        self.memory.free(buffer)
        if self.allocator_kind == "malloc":
            start = self._host_block(CUDA_FREE_LATENCY, drain_engines=True)
            self.profiler.record(
                prof.FREE, buffer.label, start, CUDA_FREE_LATENCY,
                nbytes=buffer.nbytes,
            )
        else:
            self.profiler.record(
                prof.FREE, buffer.label, self.clock.now, 0.0, nbytes=buffer.nbytes
            )

    def alloc_for_array(self, array: np.ndarray, label: str) -> DeviceBuffer:
        """Allocate a buffer sized for ``array``."""
        return self.allocate(int(array.nbytes), label)

    def trim_pool(self) -> int:
        """Release the pool's cached freelist blocks back to the memory
        manager (no-op without a pool); returns the bytes released."""
        if self.pool is None:
            return 0
        return self.pool.trim()

    # -- bookkeeping -------------------------------------------------------

    def reset(self) -> None:
        """Reset clock, trace, engines, streams, and peak counters
        (buffers stay allocated).

        Bumps the device epoch: existing :class:`Stream` objects restart
        from cursor zero on next use, and events recorded before the
        reset can no longer be waited on.
        """
        self.clock.reset()
        self.profiler.clear()
        self.memory.reset_peak()
        self.epoch += 1
        self._barrier = 0.0
        for engine in self._engines.values():
            engine.reset()
        for stream in self._streams:
            stream._check_epoch()

    def __repr__(self) -> str:
        return (
            f"Device(spec={self.spec.name!r}, t={self.clock.now_ms:.3f}ms, "
            f"mem={self.memory.used_bytes}/{self.spec.memory_bytes})"
        )
