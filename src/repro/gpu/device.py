"""Simulated GPU device: spec presets and the :class:`Device` facade.

The device ties together the simulated clock, memory manager, profiler, and
the kernel/transfer cost models.  Library emulations never advance the clock
directly — they describe work (a :class:`~repro.gpu.kernel.KernelCost`, a
transfer size, a compile request) and the device prices it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.gpu import profiler as prof
from repro.gpu.clock import SimulatedClock
from repro.gpu.kernel import EfficiencyProfile, KernelCost, kernel_duration
from repro.gpu.memory import DeviceBuffer, MemoryManager
from repro.gpu.transfer import PCIE3_X16, PCIE4_X16, SHARED_MEMORY_LINK, LinkSpec


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    ``peak_flops`` is derived as ``sm_count * cores_per_sm * clock * 2``
    (fused multiply-add counts as two operations), matching how vendors
    quote single-precision peaks.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    core_clock_hz: float
    dram_bandwidth: float  # bytes/second
    memory_bytes: int
    kernel_launch_latency: float  # seconds per launch (driver + dispatch)
    pass_tail_latency: float  # seconds to drain/refill SMs between passes
    link: LinkSpec = field(default=PCIE3_X16)

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM and core counts must be positive")
        if self.core_clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("clock and bandwidth must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("device memory must be positive")

    @property
    def peak_flops(self) -> float:
        """Single-precision peak in FLOP/s (FMA counted as 2 ops)."""
        return self.sm_count * self.cores_per_sm * self.core_clock_hz * 2.0


# ---------------------------------------------------------------------------
# Device presets.
#
# GTX_1080TI matches the 2019/2020-era discrete GPU class the paper's group
# used for their GPU DBMS work (CoGaDB papers report GTX-class devices).
# The launch latency of ~5 us is the widely reported CUDA null-kernel cost.
# ---------------------------------------------------------------------------

GTX_1080TI = DeviceSpec(
    name="gtx-1080ti",
    sm_count=28,
    cores_per_sm=128,
    core_clock_hz=1.58e9,
    dram_bandwidth=484.0e9,
    memory_bytes=11 * 1024**3,
    kernel_launch_latency=5.0e-6,
    pass_tail_latency=2.0e-6,
    link=PCIE3_X16,
)

TESLA_V100 = DeviceSpec(
    name="tesla-v100",
    sm_count=80,
    cores_per_sm=64,
    core_clock_hz=1.53e9,
    dram_bandwidth=900.0e9,
    memory_bytes=16 * 1024**3,
    kernel_launch_latency=4.0e-6,
    pass_tail_latency=1.5e-6,
    link=PCIE4_X16,
)

#: A small integrated GPU: useful for testing OOM paths with realistic sizes.
INTEGRATED_GPU = DeviceSpec(
    name="integrated",
    sm_count=6,
    cores_per_sm=64,
    core_clock_hz=1.1e9,
    dram_bandwidth=34.0e9,
    memory_bytes=2 * 1024**3,
    kernel_launch_latency=8.0e-6,
    pass_tail_latency=3.0e-6,
    link=SHARED_MEMORY_LINK,
)

PRESETS: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (GTX_1080TI, TESLA_V100, INTEGRATED_GPU)
}


def get_spec(name: str) -> DeviceSpec:
    """Look up a device preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown device preset {name!r}; known presets: {known}")


class Device:
    """A simulated GPU instance.

    All pricing goes through the four ``launch`` / ``transfer_*`` /
    ``compile`` methods so that every simulated nanosecond is matched by a
    profiler event.
    """

    def __init__(
        self,
        spec: DeviceSpec = GTX_1080TI,
        *,
        profile_events: bool = True,
    ) -> None:
        self.spec = spec
        self.clock = SimulatedClock()
        self.memory = MemoryManager(spec.memory_bytes)
        self.profiler = prof.Profiler(enabled=profile_events)

    # -- kernels ----------------------------------------------------------

    def launch(self, cost: KernelCost, profile: EfficiencyProfile) -> float:
        """Price and execute one kernel launch; returns its duration."""
        duration = kernel_duration(cost, self.spec, profile)
        start = self.clock.now
        self.clock.advance(duration)
        self.profiler.record(
            prof.KERNEL,
            cost.name,
            start,
            duration,
            elements=cost.elements,
            flops=cost.total_flops,
            bytes=cost.total_bytes,
            library=profile.name,
        )
        return duration

    # -- transfers --------------------------------------------------------

    def transfer_to_device(self, nbytes: int, label: str = "h2d") -> float:
        """Host → device copy of ``nbytes``."""
        duration = self.spec.link.transfer_time(nbytes)
        start = self.clock.now
        self.clock.advance(duration)
        self.profiler.record(
            prof.TRANSFER_H2D, label, start, duration, nbytes=nbytes
        )
        return duration

    def transfer_to_host(self, nbytes: int, label: str = "d2h") -> float:
        """Device → host copy of ``nbytes``."""
        duration = self.spec.link.transfer_time(nbytes)
        start = self.clock.now
        self.clock.advance(duration)
        self.profiler.record(
            prof.TRANSFER_D2H, label, start, duration, nbytes=nbytes
        )
        return duration

    # -- runtime compilation (OpenCL program build / ArrayFire JIT) -------

    def compile_program(self, name: str, cost_seconds: float) -> float:
        """Charge a runtime compilation (OpenCL build, JIT codegen)."""
        if cost_seconds < 0.0:
            raise ValueError(f"compile cost cannot be negative: {cost_seconds}")
        start = self.clock.now
        self.clock.advance(cost_seconds)
        self.profiler.record(prof.COMPILE, name, start, cost_seconds)
        return cost_seconds

    # -- memory -----------------------------------------------------------

    def allocate(self, nbytes: int, label: str = "buffer") -> DeviceBuffer:
        """Allocate device memory and record the event (allocation itself is
        priced at zero time: CUDA allocations are host-side and the paper's
        benchmarks pre-allocate)."""
        buffer = self.memory.allocate(nbytes, label)
        self.profiler.record(
            prof.ALLOC, label, self.clock.now, 0.0, nbytes=nbytes
        )
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Free device memory and record the event."""
        self.memory.free(buffer)
        self.profiler.record(
            prof.FREE, buffer.label, self.clock.now, 0.0, nbytes=buffer.nbytes
        )

    def alloc_for_array(self, array: np.ndarray, label: str) -> DeviceBuffer:
        """Allocate a buffer sized for ``array``."""
        return self.allocate(int(array.nbytes), label)

    # -- bookkeeping -------------------------------------------------------

    def reset(self) -> None:
        """Reset clock, trace, and peak counters (buffers stay allocated)."""
        self.clock.reset()
        self.profiler.clear()
        self.memory.reset_peak()

    def __repr__(self) -> str:
        return (
            f"Device(spec={self.spec.name!r}, t={self.clock.now_ms:.3f}ms, "
            f"mem={self.memory.used_bytes}/{self.spec.memory_bytes})"
        )
