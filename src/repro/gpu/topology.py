"""Simulated multi-GPU topology: device groups and peer interconnects.

A :class:`DeviceGroup` holds N independent :class:`~repro.gpu.device.Device`
instances — each with its own clock, memory manager, streams, pool
allocator, and fault-injection surface — and connects every ordered device
pair with a :class:`LinkChannel`, the occupancy timeline of that pair's
interconnect.  Peer copies (``copy_d2d``) are priced exactly like the
existing h2d/d2h transfers (latency + bandwidth on a
:class:`~repro.gpu.transfer.LinkSpec`) and contend for three resources at
once: the source's D2H copy engine, the destination's H2D copy engine, and
the pair's channel.  Contention is charged on the devices' virtual clocks
— a copy starts no earlier than the latest of all three resources' free
times plus both devices' submission floors.

Two interconnect classes model the deployments the multi-GPU literature
distinguishes:

* **NVLink peer-to-peer** — the DMA engines talk directly over the NVLink
  fabric; one leg at NVLink bandwidth occupies both engines and the
  channel for its whole duration.
* **PCIe host bridge** — no P2P: the copy bounces through host memory as
  a D2H leg on the source link followed by an H2D leg on the destination
  link, serialized (the second leg cannot begin before the first ends).
  The channel is occupied for the full bounce span, so concurrent copies
  between the same pair still serialize.

Clocks across the group stay independent — that is what makes partition
parallelism free to simulate — so the group provides :meth:`align`
(advance every clock to the group maximum, establishing a common t0) and
:meth:`synchronize` (drain every device, then align) for measuring the
makespan of distributed work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.gpu import profiler as prof
from repro.gpu.device import GTX_1080TI, Device, DeviceSpec
from repro.gpu.stream import ENGINE_D2H, ENGINE_H2D
from repro.gpu.transfer import DATACENTER_NET, NVLINK2, PCIE3_X16, LinkSpec


@dataclass(frozen=True)
class InterconnectSpec:
    """How the devices of a group talk to each other.

    ``link`` prices one leg of a peer copy; ``peer_to_peer`` selects the
    single-leg DMA path (NVLink-class fabrics) versus the two-leg host
    bounce (PCIe without P2P enabled, the common commodity topology).
    """

    name: str
    link: LinkSpec
    peer_to_peer: bool

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("interconnect needs a name")


#: NVLink 2.0 fabric with peer-to-peer DMA enabled: direct device-to-device
#: copies at NVLink bandwidth, no host involvement.
NVLINK_P2P = InterconnectSpec(name="nvlink-p2p", link=NVLINK2, peer_to_peer=True)

#: Commodity PCIe topology without P2P: every peer copy bounces through
#: host memory (d2h on the source's link, then h2d on the destination's).
#: ``link`` only prices channel accounting labels here — the actual legs
#: use each endpoint device's own ``spec.link``.
PCIE_HOST_BRIDGE = InterconnectSpec(
    name="pcie-host-bridge", link=PCIE3_X16, peer_to_peer=False
)

INTERCONNECTS: Dict[str, InterconnectSpec] = {
    spec.name: spec for spec in (NVLINK_P2P, PCIE_HOST_BRIDGE)
}


class LinkChannel:
    """Occupancy timeline of one ordered device pair's interconnect.

    Like an :class:`~repro.gpu.stream.EngineTimeline`, but owned by the
    group rather than a device, so it must survive either endpoint being
    reset: the channel snapshots both endpoints' epochs and lazily clears
    its busy state when either epoch changes — the same pattern
    :class:`~repro.gpu.stream.Stream` uses.  Without this, resetting one
    device of a group would leave stale channel occupancy that delays the
    sibling's future copies (the shared-state leak the reset-isolation
    regression test pins down).
    """

    def __init__(self, src: Device, dst: Device, name: str) -> None:
        self.src = src
        self.dst = dst
        self.name = name
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.item_count = 0
        self._epochs = (src.epoch, dst.epoch)

    def _check_epoch(self) -> None:
        epochs = (self.src.epoch, self.dst.epoch)
        if epochs != self._epochs:
            # An endpoint was reset after the channel's last use; its
            # timeline restarted from zero, so stale occupancy must not
            # leak into the fresh epoch.
            self._epochs = epochs
            self.busy_until = 0.0
            self.busy_seconds = 0.0
            self.item_count = 0

    def schedule(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Place one copy on the channel (mutual exclusion per pair)."""
        if duration < 0.0:
            raise ValueError(f"copy duration cannot be negative: {duration}")
        self._check_epoch()
        start = max(earliest, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_seconds += duration
        self.item_count += 1
        return start, end

    def __repr__(self) -> str:
        return (
            f"LinkChannel({self.name!r}, busy_until="
            f"{self.busy_until * 1e3:.3f}ms, items={self.item_count})"
        )


DeviceRef = Union[int, Device]


class DeviceGroup:
    """N simulated devices plus the interconnect between them.

    Construct from existing devices, or use :meth:`of_size` to build a
    homogeneous group from one spec.  Devices keep fully independent
    state; the group adds peer copies, clock alignment, and per-pair
    channels.  Indexing (``group[i]``), iteration, and ``len`` expose the
    member devices.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        interconnect: InterconnectSpec = NVLINK_P2P,
    ) -> None:
        if not devices:
            raise ValueError("a device group needs at least one device")
        if len(set(id(d) for d in devices)) != len(devices):
            raise ValueError("a device cannot appear twice in a group")
        self.devices: List[Device] = list(devices)
        self.interconnect = interconnect
        self._channels: Dict[Tuple[int, int], LinkChannel] = {}

    @classmethod
    def of_size(
        cls,
        num_devices: int,
        spec: DeviceSpec = GTX_1080TI,
        *,
        interconnect: InterconnectSpec = NVLINK_P2P,
        allocator: str = "null",
        profile_events: bool = True,
    ) -> "DeviceGroup":
        """A homogeneous group of ``num_devices`` fresh devices."""
        if num_devices < 1:
            raise ValueError(f"device count must be positive: {num_devices}")
        devices = [
            Device(spec, allocator=allocator, profile_events=profile_events)
            for _ in range(num_devices)
        ]
        return cls(devices, interconnect=interconnect)

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> Device:
        return self.devices[index]

    def index_of(self, device: DeviceRef) -> int:
        """Resolve a device reference (index or instance) to its index."""
        if isinstance(device, Device):
            for i, candidate in enumerate(self.devices):
                if candidate is device:
                    return i
            raise ValueError(f"device {device!r} is not a member of this group")
        index = int(device)
        if not 0 <= index < len(self.devices):
            raise IndexError(
                f"device index {index} out of range for group of "
                f"{len(self.devices)}"
            )
        return index

    def channel(self, src: DeviceRef, dst: DeviceRef) -> LinkChannel:
        """The (lazily created) channel for the ordered pair src → dst."""
        s, d = self.index_of(src), self.index_of(dst)
        if s == d:
            raise ValueError(f"no channel from a device to itself: {s}")
        key = (s, d)
        if key not in self._channels:
            self._channels[key] = LinkChannel(
                self.devices[s], self.devices[d], name=f"gpu{s}->gpu{d}"
            )
        return self._channels[key]

    # -- peer copies -------------------------------------------------------

    def copy_d2d(
        self,
        src: DeviceRef,
        dst: DeviceRef,
        nbytes: int,
        label: str = "d2d",
    ) -> float:
        """Price one peer copy of ``nbytes`` from ``src`` to ``dst``.

        Returns the occupied span in simulated seconds (first leg start to
        last leg end).  Both devices' clocks advance to the copy's end and
        both submission floors rise — the host observes the copy complete,
        so later work on either device cannot be scheduled before it.

        Injected transfer faults on the endpoints fire here too: the
        source's ``d2h``-direction countdown covers the send side and the
        destination's ``h2d`` countdown the receive side (``"any"``
        matches both), so per-shard fault tests exercise exchange legs
        exactly like plain transfers.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative: {nbytes}")
        s, d = self.index_of(src), self.index_of(dst)
        src_dev, dst_dev = self.devices[s], self.devices[d]
        channel = self.channel(s, d)
        channel._check_epoch()
        src_dev._check_transfer_fault("d2h", label)
        dst_dev._check_transfer_fault("h2d", label)
        send_engine = src_dev.engine_timeline(ENGINE_D2H)
        recv_engine = dst_dev.engine_timeline(ENGINE_H2D)
        if self.interconnect.peer_to_peer:
            duration = self.interconnect.link.transfer_time(nbytes)
            earliest = max(
                src_dev._barrier,
                dst_dev._barrier,
                send_engine.busy_until,
                recv_engine.busy_until,
            )
            start, end = channel.schedule(earliest, duration)
            send_engine.schedule(start, duration)
            recv_engine.schedule(start, duration)
            src_dev.profiler.record(
                prof.TRANSFER_D2D, label, start, duration,
                nbytes=nbytes, peer=d, role="send", channel=channel.name,
            )
            dst_dev.profiler.record(
                prof.TRANSFER_D2D, label, start, duration,
                nbytes=nbytes, peer=s, role="recv", channel=channel.name,
            )
        else:
            # Host bounce: d2h on the source's own link, then h2d on the
            # destination's, strictly serialized.  The channel is held for
            # the whole span so same-pair copies never pipeline the host
            # staging buffer.
            leg1 = src_dev.spec.link.transfer_time(nbytes)
            leg2 = dst_dev.spec.link.transfer_time(nbytes)
            earliest = max(
                src_dev._barrier, send_engine.busy_until, channel.busy_until
            )
            start, mid = send_engine.schedule(earliest, leg1)
            earliest2 = max(mid, dst_dev._barrier, recv_engine.busy_until)
            start2, end = recv_engine.schedule(earliest2, leg2)
            channel.schedule(start, end - start)
            src_dev.profiler.record(
                prof.TRANSFER_D2D, label, start, leg1,
                nbytes=nbytes, peer=d, role="send", channel=channel.name,
                via="host",
            )
            dst_dev.profiler.record(
                prof.TRANSFER_D2D, label, start2, leg2,
                nbytes=nbytes, peer=s, role="recv", channel=channel.name,
                via="host",
            )
        for dev in (src_dev, dst_dev):
            dev._raise_submit_floor(end)
            dev.clock.advance_to(end)
        return end - start

    def d2d_time(self, nbytes: int) -> float:
        """Modelled seconds for one uncontended peer copy of ``nbytes``
        (the exchange cost model's building block — no state is touched).
        """
        if self.interconnect.peer_to_peer:
            return self.interconnect.link.transfer_time(nbytes)
        # Host bounce: the two legs serialize.
        legs = [d.spec.link for d in self.devices[:2]]
        if len(legs) == 1:  # single-device group: degenerate but defined
            legs.append(legs[0])
        return legs[0].transfer_time(nbytes) + legs[1].transfer_time(nbytes)

    # -- group-wide clock management ---------------------------------------

    def now(self) -> float:
        """The group's frontier: the latest clock across all devices."""
        return max(device.clock.now for device in self.devices)

    def align(self) -> float:
        """Advance every device's clock and submission floor to the group
        maximum, establishing a common t0 for makespan measurements.
        Returns the aligned time."""
        latest = max(
            max(device.clock.now, device._barrier) for device in self.devices
        )
        for device in self.devices:
            device._raise_submit_floor(latest)
            device.clock.advance_to(latest)
        return latest

    def synchronize(self) -> float:
        """Drain every device (``cudaDeviceSynchronize`` on each), then
        align the clocks.  Returns the common post-sync time."""
        for device in self.devices:
            device.synchronize()
        return self.align()

    def reset(self, device: Optional[DeviceRef] = None) -> None:
        """Reset one device (by reference) or, with no argument, every
        device in the group.

        Per-pair channel state clears lazily via the epoch check on next
        use, so resetting one member never disturbs a sibling's clock,
        engines, or in-flight stream cursors.
        """
        if device is None:
            for member in self.devices:
                member.reset()
        else:
            self.devices[self.index_of(device)].reset()

    def __repr__(self) -> str:
        names = ", ".join(device.spec.name for device in self.devices)
        return (
            f"DeviceGroup([{names}], interconnect={self.interconnect.name!r})"
        )


class NetworkFabric:
    """Network-class interconnect one level above :class:`DeviceGroup`.

    Joins N device groups ("nodes") the way a :class:`DeviceGroup` joins
    N devices: every ordered node pair gets a contended channel, and every
    node additionally owns a send NIC and a receive NIC timeline — a node
    fanning shards out to three peers serializes on its own NIC even
    though the three node-pair channels are distinct.  Messages are priced
    on the NETWORK link tier (:data:`~repro.gpu.transfer.DATACENTER_NET`
    by default), the most expensive hop in the hierarchy above NVLink,
    PCIe, and NVMe.

    A message is host-blocking like a synchronous RPC: it occupies no GPU
    engine on either side, but both endpoints' lead devices observe the
    completion (clock + submission floor advance to the message end), and
    a NET profiler event lands on both leads (``role`` says send vs recv).
    Channel and NIC timelines are :class:`LinkChannel` instances keyed to
    the lead devices, so node resets clear stale occupancy through the
    same epoch check the intra-group channels use.
    """

    def __init__(
        self,
        nodes: Sequence[DeviceGroup],
        link: LinkSpec = DATACENTER_NET,
    ) -> None:
        if not nodes:
            raise ValueError("a network fabric needs at least one node")
        if len(set(id(n) for n in nodes)) != len(nodes):
            raise ValueError("a node cannot appear twice in a fabric")
        self.nodes: List[DeviceGroup] = list(nodes)
        self.link = link
        self._channels: Dict[Tuple[int, int], LinkChannel] = {}
        self._nics: Dict[Tuple[int, str], LinkChannel] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> DeviceGroup:
        return self.nodes[index]

    def _index(self, node: int) -> int:
        index = int(node)
        if not 0 <= index < len(self.nodes):
            raise IndexError(
                f"node index {index} out of range for fabric of "
                f"{len(self.nodes)}"
            )
        return index

    def lead(self, node: int) -> Device:
        """The node's lead device — the clock NET messages are charged to."""
        return self.nodes[self._index(node)][0]

    def channel(self, src: int, dst: int) -> LinkChannel:
        """The (lazily created) channel for the ordered pair src → dst."""
        s, d = self._index(src), self._index(dst)
        if s == d:
            raise ValueError(f"no network channel from a node to itself: {s}")
        key = (s, d)
        if key not in self._channels:
            self._channels[key] = LinkChannel(
                self.nodes[s][0], self.nodes[d][0], name=f"node{s}->node{d}"
            )
        return self._channels[key]

    def _nic(self, node: int, direction: str) -> LinkChannel:
        """The node's send ("out") or receive ("in") NIC timeline."""
        n = self._index(node)
        key = (n, direction)
        if key not in self._nics:
            lead = self.nodes[n][0]
            self._nics[key] = LinkChannel(
                lead, lead, name=f"node{n}-nic-{direction}"
            )
        return self._nics[key]

    def transfer(
        self, src: int, dst: int, nbytes: int, label: str = "net"
    ) -> float:
        """Price one message of ``nbytes`` from node ``src`` to ``dst``.

        Returns the occupied span in simulated seconds.  The message
        starts no earlier than either lead's submission floor, the send
        NIC, the receive NIC, or the pair channel; all three timelines
        hold the span, and both leads' clocks advance to its end.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative: {nbytes}")
        s, d = self._index(src), self._index(dst)
        src_lead, dst_lead = self.nodes[s][0], self.nodes[d][0]
        channel = self.channel(s, d)
        channel._check_epoch()
        nic_out = self._nic(s, "out")
        nic_in = self._nic(d, "in")
        nic_out._check_epoch()
        nic_in._check_epoch()
        duration = self.link.transfer_time(nbytes)
        earliest = max(
            src_lead._barrier,
            src_lead.clock.now,
            dst_lead._barrier,
            dst_lead.clock.now,
            nic_out.busy_until,
            nic_in.busy_until,
        )
        start, end = channel.schedule(earliest, duration)
        nic_out.schedule(start, duration)
        nic_in.schedule(start, duration)
        src_lead.profiler.record(
            prof.NET, label, start, duration,
            nbytes=nbytes, peer=d, role="send", channel=channel.name,
        )
        dst_lead.profiler.record(
            prof.NET, label, start, duration,
            nbytes=nbytes, peer=s, role="recv", channel=channel.name,
        )
        for dev in (src_lead, dst_lead):
            dev._raise_submit_floor(end)
            dev.clock.advance_to(end)
        return end - start

    def transfer_time(self, nbytes: int) -> float:
        """Modelled seconds for one uncontended message of ``nbytes``
        (cost-model building block — no state is touched)."""
        return self.link.transfer_time(nbytes)

    def __repr__(self) -> str:
        return (
            f"NetworkFabric({len(self.nodes)} nodes, link={self.link.name!r})"
        )
