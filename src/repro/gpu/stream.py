"""Streams, events, and per-engine timelines for the simulated GPU.

Real CUDA devices expose asynchronous *streams*: FIFO queues of work whose
items execute concurrently with other streams as long as the hardware
engines allow it.  The hardware has a small, fixed set of engines — one
DMA copy engine per direction and the compute (SM) engine — and each
engine executes at most one work item at a time.  ``cudaMemcpyAsync`` on
one stream therefore overlaps with a kernel on another stream, which is
the first-order tuning knob for PCIe-bound database scans.

The simulator mirrors that model:

* an :class:`EngineTimeline` per engine enforces mutual exclusion — a new
  item starts no earlier than the engine's previous item finished;
* a :class:`Stream` keeps FIFO order — each enqueued item starts no
  earlier than the stream's previous item finished;
* :class:`StreamEvent` carries a completion timestamp from
  :meth:`Stream.record_event` to :meth:`Stream.wait_event`, ordering work
  *across* streams.

Scheduling is eager: because simulated durations are known at enqueue
time, each item's start/end is resolved immediately as
``start = max(stream cursor, engine free time, waited events)``.  The
global :class:`~repro.gpu.clock.SimulatedClock` only ever advances to the
maximum end time seen so far, so it stays monotonic while independent
work interleaves *behind* it on the per-engine timelines.

Work submitted without a stream uses the *legacy default stream*
(CUDA's stream 0): it first drains every engine, runs exclusively, and
bars later async work from starting before it finished.  In a program
that never creates a stream this degenerates to the strictly serial
timeline the simulator had before streams existed — bit-for-bit, which
``tests/gpu/test_stream_properties.py`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.device import Device

#: Engine identifiers.  Discrete GPUs have one DMA engine per transfer
#: direction plus the SM array; compiles happen on the host driver.
ENGINE_COMPUTE = "compute"
ENGINE_H2D = "copy_h2d"
ENGINE_D2H = "copy_d2h"

#: All engine names, in trace-row order.
ENGINES = (ENGINE_COMPUTE, ENGINE_H2D, ENGINE_D2H)

#: Stream id of the legacy default stream.
DEFAULT_STREAM_ID = 0


@dataclass
class EngineTimeline:
    """Occupancy timeline of one hardware engine.

    ``busy_until`` is the completion time of the engine's latest item;
    ``busy_seconds`` accumulates total occupied time (for utilisation
    reports in the overlap benchmark).
    """

    name: str
    busy_until: float = 0.0
    busy_seconds: float = 0.0
    item_count: int = 0

    def schedule(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Place one item: starts at ``max(earliest, busy_until)``.

        Returns the resolved ``(start, end)``.  Exclusivity is structural:
        every item starts at or after the previous item's end.
        """
        if duration < 0.0:
            raise ValueError(f"work item duration cannot be negative: {duration}")
        start = max(earliest, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_seconds += duration
        self.item_count += 1
        return start, end

    def reset(self) -> None:
        """Clear the timeline (between benchmark repetitions)."""
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.item_count = 0


@dataclass
class StreamEvent:
    """A marker recorded into a stream (``cudaEventRecord``).

    The timestamp is the simulated time at which all work enqueued on the
    recording stream *before* the record call completes.  Events are
    single-shot: recorded once, waited on any number of times.
    """

    name: str
    stream_id: int
    timestamp: float
    #: Device epoch at record time; a device reset invalidates the event.
    epoch: int = 0


class Stream:
    """An ordered (FIFO) work queue on a simulated device.

    Streams are created through :meth:`~repro.gpu.device.Device.create_stream`
    and passed to ``Device.launch`` / ``Device.transfer_*`` (or installed
    as the scope default with ``Device.stream_scope``).  Work on distinct
    streams overlaps whenever the engines allow it.
    """

    def __init__(self, device: "Device", stream_id: int, name: str) -> None:
        self.device = device
        self.stream_id = stream_id
        self.name = name
        #: Completion time of the latest item enqueued on this stream.
        self._cursor = 0.0
        self._epoch = device.epoch

    @property
    def cursor(self) -> float:
        """Simulated completion time of the stream's latest work item."""
        return self._cursor

    def _check_epoch(self) -> None:
        if self._epoch != self.device.epoch:
            # The device was reset after this stream was created; restart
            # the stream's timeline from zero (CUDA streams survive only
            # within one measurement run of the simulator).
            self._epoch = self.device.epoch
            self._cursor = 0.0

    def _advance(self, end: float) -> None:
        """Move the FIFO cursor to ``end`` (monotonic)."""
        self._cursor = max(self._cursor, end)

    # -- events ------------------------------------------------------------

    def record_event(self, name: str = "event") -> StreamEvent:
        """Record an event capturing the stream's current position."""
        self._check_epoch()
        return StreamEvent(
            name=name,
            stream_id=self.stream_id,
            timestamp=self._cursor,
            epoch=self._epoch,
        )

    def wait_event(self, event: StreamEvent) -> None:
        """Make all *later* work on this stream wait for ``event``."""
        self._check_epoch()
        if event.epoch != self.device.epoch:
            raise ValueError(
                f"event {event.name!r} was recorded before a device reset "
                "and cannot be waited on"
            )
        self._cursor = max(self._cursor, event.timestamp)

    def raise_floor(self, timestamp: float) -> None:
        """Bar work enqueued later on this stream from starting before
        ``timestamp`` (monotonic; past timestamps are no-ops).

        The serving layer uses this to anchor a request's first work item
        at its dispatch time: a query arriving at t must not be priced as
        if it had been submitted at stream creation."""
        self._check_epoch()
        if timestamp > self._cursor:
            self._cursor = timestamp

    # -- synchronisation ---------------------------------------------------

    def synchronize(self) -> float:
        """Block the host until the stream drains: the global clock
        advances to the stream's cursor.  Returns the new clock time.

        The wait also becomes a submission floor: work enqueued after the
        host resumed — on any stream — cannot start before this point.
        """
        self._check_epoch()
        self.device._raise_submit_floor(self._cursor)
        return self.device.clock.advance_to(self._cursor)

    def __repr__(self) -> str:
        return (
            f"Stream(id={self.stream_id}, name={self.name!r}, "
            f"cursor={self._cursor * 1e3:.3f}ms)"
        )


class StreamPool:
    """A fixed set of streams shared by concurrent queries.

    The multi-query serving layer dispatches each admitted request onto
    the pool stream that frees up earliest (ties broken by stream id, so
    scheduling is deterministic).  Per-stream dispatch counts and busy
    time are tracked for the serving metrics: they show how evenly the
    scheduler spreads requests across the device's queues.
    """

    def __init__(self, device: "Device", size: int, name: str = "serve") -> None:
        if size < 1:
            raise ValueError(f"stream pool needs at least one stream: {size}")
        self.streams: List[Stream] = [
            device.create_stream(f"{name}-{i}") for i in range(size)
        ]
        #: Requests dispatched per stream (index-aligned with ``streams``).
        self.dispatch_counts: List[int] = [0] * size
        #: Simulated seconds each stream spent occupied by its requests.
        self.busy_seconds: List[float] = [0.0] * size

    def __len__(self) -> int:
        return len(self.streams)

    def earliest_available(self) -> float:
        """The soonest time any pool stream can accept new work."""
        return min(stream.cursor for stream in self.streams)

    def acquire(self) -> Stream:
        """The stream that frees up earliest (lowest id on ties)."""
        return min(self.streams, key=lambda s: (s.cursor, s.stream_id))

    def account(self, stream: Stream, busy: float) -> None:
        """Charge one dispatched request's occupancy to ``stream``."""
        index = self.streams.index(stream)
        self.dispatch_counts[index] += 1
        self.busy_seconds[index] += max(busy, 0.0)


@dataclass
class StreamStats:
    """Engine occupancy summary for overlap reporting."""

    makespan: float
    busy_by_engine: dict
    items_by_engine: dict
    #: Sum of per-engine busy time over the makespan; values above 1.0
    #: mean engines genuinely ran concurrently.
    overlap_factor: float = field(default=0.0)


def engine_stats(engines: List[EngineTimeline], makespan: float) -> StreamStats:
    """Summarise engine occupancy over a run of length ``makespan``."""
    busy = {engine.name: engine.busy_seconds for engine in engines}
    items = {engine.name: engine.item_count for engine in engines}
    total_busy = sum(busy.values())
    factor = (total_busy / makespan) if makespan > 0.0 else 0.0
    return StreamStats(
        makespan=makespan,
        busy_by_engine=busy,
        items_by_engine=items,
        overlap_factor=factor,
    )
