"""Host/device transfer cost model (PCIe link).

Transfers follow a latency + bandwidth model.  Small transfers are dominated
by the fixed DMA setup latency; large ones approach the effective link
bandwidth.  The paper's workloads upload whole columns once and download
small results, so the H2D leg dominates transfer time — the profiler's
byte accounting makes that visible in the breakdown benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """PCIe (or NVLink) interconnect description."""

    name: str
    bandwidth: float  # effective bytes/second (post-protocol-overhead)
    latency: float  # fixed seconds per transfer (driver + DMA setup)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0.0:
            raise ValueError(f"link bandwidth must be positive: {self.bandwidth}")
        if self.latency < 0.0:
            raise ValueError(f"link latency cannot be negative: {self.latency}")

    def transfer_time(self, nbytes: int) -> float:
        """Simulated seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative: {nbytes}")
        return self.latency + nbytes / self.bandwidth


#: PCIe 3.0 x16: 15.75 GB/s raw, ~12 GB/s achievable with pinned memory.
PCIE3_X16 = LinkSpec(name="pcie3-x16", bandwidth=12.0e9, latency=10.0e-6)

#: NVLink 2.0, one direction of one brick pair: 25 GB/s raw per direction
#: per link, ~45 GB/s achievable over the two links a V100 pair shares.
#: Peer copies skip the host entirely, so the setup latency is the DMA
#: engine's alone (no driver bounce-buffer staging).
NVLINK2 = LinkSpec(name="nvlink2", bandwidth=45.0e9, latency=3.0e-6)

#: PCIe 4.0 x16: ~24 GB/s achievable.
PCIE4_X16 = LinkSpec(name="pcie4-x16", bandwidth=24.0e9, latency=8.0e-6)

#: Integrated GPU sharing host DRAM: no PCIe hop, only a mapping cost.
SHARED_MEMORY_LINK = LinkSpec(name="shared-memory", bandwidth=60.0e9, latency=2.0e-6)

#: Simulated datacentre NVMe SSD (host <-> storage leg of the tiered
#: column store): ~2.8 GB/s sustained sequential throughput and a fixed
#: submission+completion latency of ~80 us per I/O.  Deliberately an
#: order of magnitude slower than the PCIe host link so demotions to the
#: third tier are visibly more expensive than host spills.
NVME_SSD = LinkSpec(name="nvme-ssd", bandwidth=2.8e9, latency=80.0e-6)

#: Simulated datacentre network between cluster nodes (the NETWORK link
#: tier above NVLink/PCIe/NVMe): ~25 GbE effective goodput after TCP and
#: serialization overheads, plus a fixed ~50 us request/response latency
#: (kernel network stack + switch hops).  The most expensive tier in the
#: hierarchy: an order of magnitude slower than host PCIe and with ~5x
#: the setup latency of an NVMe I/O, so shard fetches that cross node
#: boundaries dominate everything else a query does.
DATACENTER_NET = LinkSpec(name="datacenter-net", bandwidth=2.5e9, latency=50.0e-6)
