"""Simulated GPU hardware substrate.

This package replaces the physical GPU the paper ran on.  Library
emulations execute their semantics on the host (NumPy) and describe their
work to a :class:`Device`, which prices kernel launches, transfers, runtime
compilations, and allocations on a simulated clock.  See DESIGN.md
("Hardware substitution") for why this preserves the paper's comparative
results.
"""

from repro.gpu.clock import SimulatedClock, Stopwatch
from repro.gpu.device import (
    ALLOCATOR_KINDS,
    GTX_1080TI,
    INTEGRATED_GPU,
    PRESETS,
    TESLA_V100,
    Device,
    DeviceSpec,
    FaultPlan,
    get_spec,
)
from repro.gpu.kernel import (
    TUNED_PROFILE,
    EfficiencyProfile,
    KernelCost,
    kernel_duration,
)
from repro.gpu.memory import (
    ALLOCATION_ALIGNMENT,
    CUDA_FREE_LATENCY,
    CUDA_MALLOC_LATENCY,
    POOL_HIT_LATENCY,
    DeviceBuffer,
    MemoryManager,
    PoolAllocator,
    PoolStats,
    ScopedAllocation,
    align_size,
    pool_class_size,
)
from repro.gpu.profiler import (
    Event,
    Profiler,
    ProfileSummary,
    chrome_trace_json,
    merge_summaries,
    to_chrome_trace,
    track_metadata,
    write_chrome_trace,
)
from repro.gpu.stream import (
    DEFAULT_STREAM_ID,
    ENGINE_COMPUTE,
    ENGINE_D2H,
    ENGINE_H2D,
    ENGINES,
    EngineTimeline,
    Stream,
    StreamEvent,
    StreamPool,
    StreamStats,
    engine_stats,
)
from repro.gpu.topology import (
    INTERCONNECTS,
    NVLINK_P2P,
    PCIE_HOST_BRIDGE,
    DeviceGroup,
    InterconnectSpec,
    LinkChannel,
    NetworkFabric,
)
from repro.gpu.transfer import (
    DATACENTER_NET,
    NVLINK2,
    NVME_SSD,
    PCIE3_X16,
    PCIE4_X16,
    SHARED_MEMORY_LINK,
    LinkSpec,
)

__all__ = [
    "SimulatedClock",
    "Stopwatch",
    "Device",
    "DeviceSpec",
    "get_spec",
    "PRESETS",
    "GTX_1080TI",
    "TESLA_V100",
    "INTEGRATED_GPU",
    "EfficiencyProfile",
    "KernelCost",
    "kernel_duration",
    "TUNED_PROFILE",
    "ALLOCATOR_KINDS",
    "FaultPlan",
    "DeviceBuffer",
    "MemoryManager",
    "PoolAllocator",
    "PoolStats",
    "ScopedAllocation",
    "align_size",
    "pool_class_size",
    "ALLOCATION_ALIGNMENT",
    "CUDA_MALLOC_LATENCY",
    "CUDA_FREE_LATENCY",
    "POOL_HIT_LATENCY",
    "Event",
    "Profiler",
    "ProfileSummary",
    "chrome_trace_json",
    "merge_summaries",
    "to_chrome_trace",
    "track_metadata",
    "write_chrome_trace",
    "DEFAULT_STREAM_ID",
    "ENGINE_COMPUTE",
    "ENGINE_D2H",
    "ENGINE_H2D",
    "ENGINES",
    "EngineTimeline",
    "Stream",
    "StreamEvent",
    "StreamPool",
    "StreamStats",
    "engine_stats",
    "LinkSpec",
    "DATACENTER_NET",
    "NVLINK2",
    "NVME_SSD",
    "PCIE3_X16",
    "PCIE4_X16",
    "SHARED_MEMORY_LINK",
    "DeviceGroup",
    "InterconnectSpec",
    "LinkChannel",
    "NetworkFabric",
    "INTERCONNECTS",
    "NVLINK_P2P",
    "PCIE_HOST_BRIDGE",
]
