"""Event trace for the simulated GPU device.

The profiler records every costed event — kernel launches, host/device
transfers, program compilations, allocations — with its simulated start time
and duration.  The benchmark harness uses it to produce the per-query time
breakdowns (transfer vs. compile vs. kernel) that the paper discusses when
explaining why chained library calls cause "unwanted intermediate data
movements".
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

# Event kinds used throughout the simulator.
KERNEL = "kernel"
TRANSFER_H2D = "transfer_h2d"
TRANSFER_D2H = "transfer_d2h"
#: Peer (device-to-device) copy leg within a DeviceGroup; recorded on both
#: endpoint devices (``role`` payload says which end this event covers).
TRANSFER_D2D = "transfer_d2d"
COMPILE = "compile"
ALLOC = "alloc"
FREE = "free"
#: Annotation spanning one serving-layer request (arrival → completion).
#: Spans carry no device time of their own — the kernels/transfers they
#: cover are recorded separately — so summaries skip them.
SPAN = "span"
#: Host <-> storage (simulated NVMe) I/O leg of the tiered column store.
#: Host-blocking like an O_DIRECT read/write: it occupies no device
#: engine, so it never overlaps with stream work.
HOST_IO = "host_io"
#: Node-to-node message over the cluster's NETWORK link tier (shard
#: fetches, cross-node exchange legs).  Recorded on both endpoint nodes'
#: lead devices (``role`` payload says send vs recv) and host-blocking
#: like a synchronous RPC: the coordinator waits for the bytes.
NET = "net"

_ALL_KINDS = (
    KERNEL, TRANSFER_H2D, TRANSFER_D2H, TRANSFER_D2D,
    COMPILE, ALLOC, FREE, SPAN, HOST_IO, NET,
)


@dataclass(frozen=True)
class Event:
    """A single costed event on the simulated device."""

    kind: str
    name: str
    start: float
    duration: float
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Simulated time at which the event completed."""
        return self.start + self.duration


@dataclass
class ProfileSummary:
    """Aggregated view over a slice of the event trace."""

    total_time: float
    time_by_kind: Dict[str, float]
    count_by_kind: Dict[str, int]
    kernel_count: int
    kernel_time: float
    transfer_time: float
    compile_time: float
    bytes_h2d: int
    bytes_d2h: int
    #: Host time spent in the allocator (cudaMalloc/cudaFree/pool paths);
    #: zero under the legacy free-allocation model.
    alloc_time: float = 0.0
    #: Allocations served from / missing the device's pool (pooled devices
    #: only; both zero otherwise).
    pool_hits: int = 0
    pool_misses: int = 0
    #: Bytes moved in peer (device-to-device) copy legs recorded on this
    #: device; zero outside multi-device runs.
    bytes_d2d: int = 0
    #: Host time spent on simulated NVMe I/O (tiered-store demotions and
    #: promotions through the third tier); zero without a tiered store.
    io_time: float = 0.0
    #: Bytes moved over the simulated NVMe link.
    bytes_io: int = 0
    #: Host time spent on cluster network messages (NET events recorded
    #: on this device); zero outside multi-node runs.
    net_time: float = 0.0
    #: Bytes moved over the cluster NETWORK link in events recorded here.
    bytes_net: int = 0

    def fraction(self, kind: str) -> float:
        """Fraction of total event time spent in ``kind`` (0 if no time)."""
        if self.total_time <= 0.0:
            return 0.0
        return self.time_by_kind.get(kind, 0.0) / self.total_time


class Profiler:
    """Append-only event trace with mark/slice support.

    ``mark()`` returns a cursor; ``events_since(cursor)`` and
    ``summary(since=cursor)`` then restrict analysis to everything recorded
    after the mark, which is how per-operator and per-query breakdowns are
    extracted from a long-lived device.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[Event] = []

    def record(
        self,
        kind: str,
        name: str,
        start: float,
        duration: float,
        **payload: Any,
    ) -> None:
        """Record one event.  No-op when the profiler is disabled."""
        if not self.enabled:
            return
        if kind not in _ALL_KINDS:
            raise ValueError(f"unknown event kind: {kind!r}")
        self._events.append(Event(kind, name, start, duration, payload))

    def mark(self) -> int:
        """Return a cursor to the current end of the trace."""
        return len(self._events)

    @property
    def events(self) -> Tuple[Event, ...]:
        """The full event trace as an immutable tuple."""
        return tuple(self._events)

    def events_since(self, cursor: int) -> Tuple[Event, ...]:
        """Events recorded after the given ``mark()`` cursor."""
        return tuple(self._events[cursor:])

    def iter_kind(self, kind: str) -> Iterator[Event]:
        """Iterate events of a single kind."""
        return (e for e in self._events if e.kind == kind)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def summary(self, since: int = 0) -> ProfileSummary:
        """Aggregate the trace (or its tail) into a :class:`ProfileSummary`."""
        events = self._events[since:]
        time_by_kind: Dict[str, float] = defaultdict(float)
        count_by_kind: Counter = Counter()
        bytes_h2d = 0
        bytes_d2h = 0
        bytes_d2d = 0
        bytes_io = 0
        bytes_net = 0
        pool_hits = 0
        pool_misses = 0
        for event in events:
            if event.kind == SPAN:
                continue  # annotation over already-recorded device work
            time_by_kind[event.kind] += event.duration
            count_by_kind[event.kind] += 1
            if event.kind == TRANSFER_H2D:
                bytes_h2d += int(event.payload.get("nbytes", 0))
            elif event.kind == TRANSFER_D2H:
                bytes_d2h += int(event.payload.get("nbytes", 0))
            elif event.kind == TRANSFER_D2D:
                bytes_d2d += int(event.payload.get("nbytes", 0))
            elif event.kind == HOST_IO:
                bytes_io += int(event.payload.get("nbytes", 0))
            elif event.kind == NET:
                bytes_net += int(event.payload.get("nbytes", 0))
            elif event.kind == ALLOC:
                pool = event.payload.get("pool")
                if pool == "hit":
                    pool_hits += 1
                elif pool == "miss":
                    pool_misses += 1
        total = sum(time_by_kind.values())
        return ProfileSummary(
            total_time=total,
            time_by_kind=dict(time_by_kind),
            count_by_kind=dict(count_by_kind),
            kernel_count=count_by_kind.get(KERNEL, 0),
            kernel_time=time_by_kind.get(KERNEL, 0.0),
            transfer_time=(
                time_by_kind.get(TRANSFER_H2D, 0.0)
                + time_by_kind.get(TRANSFER_D2H, 0.0)
                + time_by_kind.get(TRANSFER_D2D, 0.0)
            ),
            compile_time=time_by_kind.get(COMPILE, 0.0),
            bytes_h2d=bytes_h2d,
            bytes_d2h=bytes_d2h,
            alloc_time=(
                time_by_kind.get(ALLOC, 0.0) + time_by_kind.get(FREE, 0.0)
            ),
            pool_hits=pool_hits,
            pool_misses=pool_misses,
            bytes_d2d=bytes_d2d,
            io_time=time_by_kind.get(HOST_IO, 0.0),
            bytes_io=bytes_io,
            net_time=time_by_kind.get(NET, 0.0),
            bytes_net=bytes_net,
        )

    def kernel_histogram(self, since: int = 0) -> Dict[str, int]:
        """Launch count per kernel name (for fusion/ablation analysis)."""
        counts: Counter = Counter()
        for event in self._events[since:]:
            if event.kind == KERNEL:
                counts[event.name] += 1
        return dict(counts)

    def top_kernels(
        self, limit: int = 10, since: int = 0
    ) -> List[Tuple[str, float, int]]:
        """The ``limit`` most expensive kernels as (name, time, launches)."""
        time_by_name: Dict[str, float] = defaultdict(float)
        count_by_name: Counter = Counter()
        for event in self._events[since:]:
            if event.kind == KERNEL:
                time_by_name[event.name] += event.duration
                count_by_name[event.name] += 1
        ranked = sorted(time_by_name.items(), key=lambda kv: kv[1], reverse=True)
        return [
            (name, duration, count_by_name[name])
            for name, duration in ranked[:limit]
        ]


#: Chrome-trace track (tid) per hardware engine: kernels, the two copy
#: directions, and host-side compiles render as separate rows so stream
#: overlap is visible as side-by-side bars.
ENGINE_TRACKS = {
    "compute": 1,
    "copy_h2d": 2,
    "copy_d2h": 3,
}

#: Track for events that carry no engine (host/driver compiles).
_COMPILE_TRACK = 4

#: Track for allocator time (cudaMalloc / cudaFree / pool bookkeeping).
#: Only priced allocations land here — the legacy zero-cost alloc/free
#: bookkeeping events are still skipped, so pre-pool traces are unchanged.
_ALLOCATOR_TRACK = 5

#: Track for serving-layer request spans (arrival → completion).  Its
#: metadata row is emitted only when span events are present, so traces
#: from non-serving runs keep their historical byte-exact format.
_REQUEST_TRACK = 6

#: Track for peer (device-to-device) copy legs within a device group.
#: Conditional like the request track: single-device traces are unchanged.
_PEER_TRACK = 7

#: Track for simulated NVMe I/O (tiered-store third tier).  Conditional
#: like the request/peer tracks: traces without a tiered store keep
#: their historical byte-exact format.
_HOST_IO_TRACK = 8

#: Track for cluster network messages (NETWORK link tier between nodes).
#: Conditional like the request/peer/NVMe tracks: single-node traces keep
#: their historical byte-exact format.
_NET_TRACK = 9

#: Fallback tracks for events recorded without engine payloads (traces
#: produced before the stream subsystem, or hand-built events).
_TRACE_TRACKS = {
    KERNEL: 1,
    TRANSFER_H2D: 2,
    TRANSFER_D2H: 3,
    TRANSFER_D2D: _PEER_TRACK,
    COMPILE: _COMPILE_TRACK,
    ALLOC: _ALLOCATOR_TRACK,
    FREE: _ALLOCATOR_TRACK,
    SPAN: _REQUEST_TRACK,
    HOST_IO: _HOST_IO_TRACK,
    NET: _NET_TRACK,
}

#: Human-readable row names emitted as Chrome-trace thread metadata.
_TRACK_NAMES = {
    1: "compute engine",
    2: "copy engine H2D",
    3: "copy engine D2H",
    _COMPILE_TRACK: "driver (compile)",
    _ALLOCATOR_TRACK: "driver (allocator)",
}


def to_chrome_trace(
    events: Sequence[Event], pid: int = 0
) -> List[Dict[str, Any]]:
    """Convert events into Chrome tracing format (``chrome://tracing`` /
    Perfetto): a list of "X" (complete) events in microseconds.

    One row (tid) per hardware engine, so transfer/compute overlap across
    streams shows up as concurrent bars; the stream id rides along in
    ``args``.  Zero-duration bookkeeping events (alloc/free under the
    legacy free-allocation model) are skipped; priced allocator calls
    (cudaMalloc/pool paths) render on their own driver row.
    ``pid`` labels the process row — multi-device traces pass each
    device's group index so devices render as separate process groups.
    Prefer :func:`chrome_trace_json` when writing a file — it prepends
    the row-name metadata and has a stable field ordering.
    """
    trace: List[Dict[str, Any]] = []
    for event in events:
        if event.kind not in _TRACE_TRACKS:
            continue
        if event.kind in (ALLOC, FREE) and event.duration <= 0.0:
            continue  # zero-cost bookkeeping under the legacy allocator
        engine = event.payload.get("engine")
        tid = ENGINE_TRACKS.get(engine, _TRACE_TRACKS[event.kind])
        trace.append({
            "name": event.name,
            "cat": event.kind,
            "ph": "X",
            "ts": event.start * 1e6,
            "dur": event.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(event.payload),
        })
    return trace


def track_metadata(
    events: Sequence[Event], pid: int = 0, process_name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Metadata rows (thread/process names) for one device's events.

    Emits the engine-track thread names (plus the conditional request and
    peer-copy tracks) under ``pid``, and — when ``process_name`` is given
    — a ``process_name`` row so multi-device traces label each device.
    """
    track_names = dict(_TRACK_NAMES)
    if any(event.kind == SPAN for event in events):
        track_names[_REQUEST_TRACK] = "requests"
    if any(event.kind == TRANSFER_D2D for event in events):
        track_names[_PEER_TRACK] = "peer copies (D2D)"
    if any(event.kind == HOST_IO for event in events):
        track_names[_HOST_IO_TRACK] = "host I/O (NVMe)"
    if any(event.kind == NET for event in events):
        track_names[_NET_TRACK] = "network (cluster)"
    metadata: List[Dict[str, Any]] = []
    if process_name is not None:
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process_name},
        })
    metadata.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": track_name},
        }
        for tid, track_name in sorted(track_names.items())
    )
    return metadata


def chrome_trace_json(events: Sequence[Event], indent: int = 1) -> str:
    """Render events as a complete Chrome-trace JSON document.

    The output is deterministic for a given event sequence: metadata rows
    first (one per engine track, in tid order), then the events in
    recording order, with a fixed field order throughout — so traces can
    be diffed and golden-tested.  Load the file at ``chrome://tracing``
    or https://ui.perfetto.dev to inspect the simulated timeline.
    """
    import json

    track_names = dict(_TRACK_NAMES)
    if any(event.kind == SPAN for event in events):
        track_names[_REQUEST_TRACK] = "requests"
    if any(event.kind == TRANSFER_D2D for event in events):
        track_names[_PEER_TRACK] = "peer copies (D2D)"
    if any(event.kind == HOST_IO for event in events):
        track_names[_HOST_IO_TRACK] = "host I/O (NVMe)"
    if any(event.kind == NET for event in events):
        track_names[_NET_TRACK] = "network (cluster)"
    metadata: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track_name},
        }
        for tid, track_name in sorted(track_names.items())
    ]
    document = {
        "traceEvents": metadata + to_chrome_trace(events),
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, indent=indent)


def write_chrome_trace(path: str, events: Sequence[Event]) -> None:
    """Write :func:`chrome_trace_json` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(events))
        handle.write("\n")


def merge_summaries(summaries: List[ProfileSummary]) -> Optional[ProfileSummary]:
    """Combine summaries from repeated runs (used by the bench harness)."""
    if not summaries:
        return None
    time_by_kind: Dict[str, float] = defaultdict(float)
    count_by_kind: Counter = Counter()
    bytes_h2d = 0
    bytes_d2h = 0
    bytes_d2d = 0
    bytes_io = 0
    bytes_net = 0
    pool_hits = 0
    pool_misses = 0
    for s in summaries:
        for kind, duration in s.time_by_kind.items():
            time_by_kind[kind] += duration
        count_by_kind.update(s.count_by_kind)
        bytes_h2d += s.bytes_h2d
        bytes_d2h += s.bytes_d2h
        bytes_d2d += s.bytes_d2d
        bytes_io += s.bytes_io
        bytes_net += s.bytes_net
        pool_hits += s.pool_hits
        pool_misses += s.pool_misses
    total = sum(time_by_kind.values())
    return ProfileSummary(
        total_time=total,
        time_by_kind=dict(time_by_kind),
        count_by_kind=dict(count_by_kind),
        kernel_count=count_by_kind.get(KERNEL, 0),
        kernel_time=time_by_kind.get(KERNEL, 0.0),
        transfer_time=(
            time_by_kind.get(TRANSFER_H2D, 0.0)
            + time_by_kind.get(TRANSFER_D2H, 0.0)
            + time_by_kind.get(TRANSFER_D2D, 0.0)
        ),
        compile_time=time_by_kind.get(COMPILE, 0.0),
        bytes_h2d=bytes_h2d,
        bytes_d2h=bytes_d2h,
        alloc_time=(
            time_by_kind.get(ALLOC, 0.0) + time_by_kind.get(FREE, 0.0)
        ),
        pool_hits=pool_hits,
        pool_misses=pool_misses,
        bytes_d2d=bytes_d2d,
        io_time=time_by_kind.get(HOST_IO, 0.0),
        bytes_io=bytes_io,
        net_time=time_by_kind.get(NET, 0.0),
        bytes_net=bytes_net,
    )
