"""Boost.Compute emulation (OpenCL-tier, runtime kernel compilation).

Mirrors the subset of Boost.Compute the paper's operator realizations use
(Table II): ``transform``, ``exclusive_scan``, ``gather``/``scatter``,
``for_each``, ``reduce``/``reduce_by_key``, ``sort``/``sort_by_key``,
``bit_and``/``bit_or`` functors (shared with the Thrust functional module),
plus the lambda placeholder DSL (``_1``, ``_2``).
"""

from repro.libs.boost_compute.algorithms import (
    accumulate,
    copy,
    copy_if,
    count_if,
    exclusive_scan,
    fill,
    for_each,
    gather,
    inclusive_scan,
    iota,
    lower_bound,
    reduce,
    reduce_by_key,
    scatter,
    scatter_if,
    sort,
    sort_by_key,
    transform,
    unique,
    upper_bound,
)
from repro.libs.boost_compute.context import (
    BOOST_COMPUTE_PROFILE,
    BoostComputeRuntime,
    ProgramCache,
    ProgramCacheStats,
    command_queue,
    vector,
)
from repro.libs.boost_compute.lambda_ import _1, _2, LambdaExpr

__all__ = [
    "BoostComputeRuntime",
    "command_queue",
    "vector",
    "BOOST_COMPUTE_PROFILE",
    "ProgramCache",
    "ProgramCacheStats",
    "LambdaExpr",
    "_1",
    "_2",
    "transform",
    "for_each",
    "reduce",
    "accumulate",
    "count_if",
    "exclusive_scan",
    "inclusive_scan",
    "sort",
    "sort_by_key",
    "reduce_by_key",
    "copy_if",
    "gather",
    "scatter",
    "scatter_if",
    "iota",
    "fill",
    "copy",
    "unique",
    "lower_bound",
    "upper_bound",
]
