"""Boost.Compute algorithm suite.

Identical semantic contracts to the Thrust suite (both follow the STL), but
every algorithm first goes through the OpenCL *program cache*: the first
launch of a given (algorithm, functor, type) combination compiles its
generated kernel source, later launches reuse it.  Steady-state kernels run
with the OpenCL-tier efficiency profile.

Functors may be given as shared :class:`~repro.libs.thrust.functional.Functor`
objects or as Boost.Compute-style lambda expressions (``_1 > 5``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import LibraryError
from repro.libs.base import check_same_length
from repro.libs.boost_compute.context import BoostComputeRuntime, vector
from repro.libs.boost_compute.lambda_ import LambdaExpr
from repro.libs.thrust.functional import Functor

FunctorLike = Union[Functor, LambdaExpr]

#: Compile-complexity scores per algorithm family: multi-kernel algorithms
#: (sorts, scans) generate larger OpenCL programs and take longer to build.
_COMPLEXITY = {
    "transform": 1,
    "for_each": 1,
    "reduce": 2,
    "count_if": 2,
    "scan": 3,
    "sort": 6,
    "sort_by_key": 7,
    "reduce_by_key": 5,
    "copy_if": 4,
    "gather": 1,
    "scatter": 1,
    "iota": 1,
    "fill": 1,
    "copy": 1,
    "unique": 3,
    "search": 2,
}


def _runtime(v: vector) -> BoostComputeRuntime:
    runtime = v.runtime
    if not isinstance(runtime, BoostComputeRuntime):
        raise LibraryError(
            f"vector belongs to {type(runtime).__name__}, "
            "expected BoostComputeRuntime"
        )
    return runtime


def _functorize(op: FunctorLike) -> Functor:
    if isinstance(op, LambdaExpr):
        return op.to_functor()
    if isinstance(op, Functor):
        return op
    raise TypeError(f"expected a Functor or lambda expression, got {op!r}")


def _dtype_tag(*vectors: vector) -> str:
    return ",".join(str(v.dtype) for v in vectors)


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------

def transform(
    first: vector,
    op: FunctorLike,
    second: Optional[vector] = None,
) -> vector:
    """``boost::compute::transform`` — unary/binary elementwise map."""
    runtime = _runtime(first)
    functor = _functorize(op)
    if functor.arity == 1:
        if second is not None:
            raise TypeError(f"unary functor {functor.name!r} given two inputs")
        inputs = (first,)
        result = functor(first.data)
    elif functor.arity == 2:
        if second is None:
            raise TypeError(f"binary functor {functor.name!r} given one input")
        check_same_length(first, second, f"transform({functor.name})")
        inputs = (first, second)
        result = functor(first.data, second.data)
    else:
        raise TypeError(f"transform supports arity 1 or 2, got {functor.arity}")
    result = np.ascontiguousarray(result)
    runtime.ensure_program(
        f"transform<{functor.name}|{_dtype_tag(*inputs)}>",
        _COMPLEXITY["transform"],
    )
    runtime._charge(
        f"transform<{functor.name}>",
        len(first),
        flops=functor.flops,
        read=sum(v.itemsize for v in inputs),
        written=result.dtype.itemsize,
    )
    return runtime.from_result(result, "boost::transform_out")


def for_each(v: vector, op: FunctorLike) -> None:
    """``boost::compute::for_each`` — in-place side-effecting map."""
    runtime = _runtime(v)
    functor = _functorize(op)
    v.data[:] = functor(v.data)
    runtime.ensure_program(
        f"for_each<{functor.name}|{v.dtype}>", _COMPLEXITY["for_each"]
    )
    runtime._charge(
        f"for_each<{functor.name}>",
        len(v),
        flops=functor.flops,
        read=v.itemsize,
        written=v.itemsize,
    )


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def reduce(
    v: vector,
    init: float = 0.0,
    op: Optional[FunctorLike] = None,
) -> np.generic:
    """``boost::compute::reduce`` — fold to a scalar (two-pass tree)."""
    runtime = _runtime(v)
    functor = _functorize(op) if op is not None else None
    name = functor.name if functor else "plus"
    if functor is None or functor.name == "plus":
        result = v.data.sum(dtype=_accumulator_dtype(v.dtype)) + init
    elif functor.name == "maximum":
        result = np.maximum.reduce(v.data, initial=init)
    elif functor.name == "minimum":
        result = np.minimum.reduce(v.data, initial=init)
    elif functor.name == "multiplies":
        product = np.multiply.reduce(v.data.astype(_accumulator_dtype(v.dtype)))
        result = product * init if init != 0.0 else product
    else:
        raise LibraryError(f"reduce: unsupported reduction functor {name!r}")
    runtime.ensure_program(f"reduce<{name}|{v.dtype}>", _COMPLEXITY["reduce"])
    runtime._charge(
        f"reduce<{name}>",
        len(v),
        flops=(functor.flops if functor else 1.0),
        read=v.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    scalar = np.asarray(result).ravel()[0]
    runtime._read_scalar(scalar, "boost::reduce_result")
    return scalar


def accumulate(v: vector, init: float = 0.0) -> np.generic:
    """``boost::compute::accumulate`` — alias of plus-reduce (Boost.Compute
    specialises accumulate to reduce for commutative operators)."""
    return reduce(v, init=init)


def count_if(v: vector, predicate: FunctorLike) -> int:
    """``boost::compute::count_if``."""
    runtime = _runtime(v)
    functor = _functorize(predicate)
    mask = functor(v.data)
    count = int(np.count_nonzero(mask))
    runtime.ensure_program(
        f"count_if<{functor.name}|{v.dtype}>", _COMPLEXITY["count_if"]
    )
    runtime._charge(
        f"count_if<{functor.name}>",
        len(v),
        flops=functor.flops + 1.0,
        read=v.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    runtime._read_scalar(np.int64(count), "boost::count_result")
    return count


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

def exclusive_scan(v: vector, init: float = 0.0) -> vector:
    """``boost::compute::exclusive_scan`` — exclusive prefix sum.

    Boost.Compute's scan is the classic three-kernel block-scan
    (scan blocks / scan block sums / add offsets).
    """
    runtime = _runtime(v)
    acc_dtype = _accumulator_dtype(v.dtype)
    if len(v):
        shifted = np.cumsum(v.data, dtype=acc_dtype)
        shifted = np.roll(shifted, 1)
        shifted[0] = 0
        shifted += acc_dtype.type(init)
    else:
        shifted = np.empty(0, dtype=acc_dtype)
    result = np.ascontiguousarray(shifted.astype(v.dtype, copy=False))
    runtime.ensure_program(f"exclusive_scan<{v.dtype}>", _COMPLEXITY["scan"])
    runtime._charge(
        "exclusive_scan",
        len(v),
        flops=2.0,
        read=2.0 * v.itemsize,
        written=2.0 * v.itemsize,
        passes=3,
    )
    return runtime.from_result(result, "boost::scan_out")


def inclusive_scan(v: vector) -> vector:
    """``boost::compute::inclusive_scan``."""
    runtime = _runtime(v)
    acc_dtype = _accumulator_dtype(v.dtype)
    result = np.ascontiguousarray(
        np.cumsum(v.data, dtype=acc_dtype).astype(v.dtype, copy=False)
    )
    runtime.ensure_program(f"inclusive_scan<{v.dtype}>", _COMPLEXITY["scan"])
    runtime._charge(
        "inclusive_scan",
        len(v),
        flops=2.0,
        read=2.0 * v.itemsize,
        written=2.0 * v.itemsize,
        passes=3,
    )
    return runtime.from_result(result, "boost::scan_out")


# ---------------------------------------------------------------------------
# Sorting
# ---------------------------------------------------------------------------

_RADIX_BITS_PER_PASS = 4  # Boost.Compute's radix sort uses 4-bit digits.


def _radix_passes(dtype: np.dtype) -> int:
    return max(1, (dtype.itemsize * 8) // _RADIX_BITS_PER_PASS)


def sort(v: vector, descending: bool = False) -> None:
    """``boost::compute::sort`` — in-place radix sort.

    Boost.Compute's radix sort processes 4 bits per pass (vs. Thrust's 8),
    doubling the number of device-wide passes for the same key width — a
    structural reason it trails Thrust on sort-heavy operators.
    """
    runtime = _runtime(v)
    v.data.sort(kind="stable")
    if descending:
        v.data[:] = v.data[::-1]
    digit_passes = _radix_passes(v.dtype)
    runtime.ensure_program(f"radix_sort<{v.dtype}>", _COMPLEXITY["sort"])
    runtime._charge(
        "sort(radix)",
        len(v),
        flops=4.0 * digit_passes,
        read=2.0 * v.itemsize * digit_passes,
        written=1.0 * v.itemsize * digit_passes,
        passes=2 * digit_passes,
    )


def sort_by_key(keys: vector, values: vector, descending: bool = False) -> None:
    """``boost::compute::sort_by_key`` — in-place key/value radix sort."""
    runtime = _runtime(keys)
    check_same_length(keys, values, "sort_by_key")
    order = np.argsort(keys.data, kind="stable")
    if descending:
        order = order[::-1]
    keys.data[:] = keys.data[order]
    values.data[:] = values.data[order]
    digit_passes = _radix_passes(keys.dtype)
    payload = values.itemsize
    runtime.ensure_program(
        f"radix_sort_by_key<{keys.dtype},{values.dtype}>",
        _COMPLEXITY["sort_by_key"],
    )
    runtime._charge(
        "sort_by_key(radix)",
        len(keys),
        flops=4.0 * digit_passes,
        read=(2.0 * keys.itemsize + payload) * digit_passes,
        written=(1.0 * keys.itemsize + payload) * digit_passes,
        passes=2 * digit_passes,
    )


# ---------------------------------------------------------------------------
# Grouped reduction
# ---------------------------------------------------------------------------

def reduce_by_key(
    keys: vector,
    values: vector,
    op: Optional[FunctorLike] = None,
) -> Tuple[vector, vector]:
    """``boost::compute::reduce_by_key`` — segmented reduction over
    consecutive equal keys (pre-sort for SQL GROUP BY semantics)."""
    runtime = _runtime(keys)
    check_same_length(keys, values, "reduce_by_key")
    functor = _functorize(op) if op is not None else None
    name = functor.name if functor else "plus"
    key_data, value_data = keys.data, values.data
    if len(key_data) == 0:
        runtime._charge("reduce_by_key", 0)
        return (
            runtime.from_result(np.empty(0, dtype=keys.dtype), "boost::rbk_keys"),
            runtime.from_result(
                np.empty(0, dtype=values.dtype), "boost::rbk_values"
            ),
        )
    boundaries = np.empty(len(key_data), dtype=bool)
    boundaries[0] = True
    np.not_equal(key_data[1:], key_data[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    out_keys = np.ascontiguousarray(key_data[starts])
    acc_dtype = _accumulator_dtype(values.dtype)
    if functor is None or functor.name == "plus":
        aggregated = np.add.reduceat(value_data.astype(acc_dtype), starts)
    elif functor.name == "maximum":
        aggregated = np.maximum.reduceat(value_data, starts)
    elif functor.name == "minimum":
        aggregated = np.minimum.reduceat(value_data, starts)
    elif functor.name == "multiplies":
        aggregated = np.multiply.reduceat(value_data.astype(acc_dtype), starts)
    else:
        raise LibraryError(f"reduce_by_key: unsupported functor {name!r}")
    out_values = np.ascontiguousarray(aggregated.astype(values.dtype, copy=False))
    runtime.ensure_program(
        f"reduce_by_key<{name}|{keys.dtype},{values.dtype}>",
        _COMPLEXITY["reduce_by_key"],
    )
    runtime._charge(
        f"reduce_by_key<{name}>",
        len(keys),
        flops=4.0,
        read=keys.itemsize + values.itemsize,
        fixed_bytes=float(out_keys.nbytes + out_values.nbytes),
        passes=3,  # Boost.Compute: flag boundaries, scan, final gather.
    )
    return (
        runtime.from_result(out_keys, "boost::rbk_keys"),
        runtime.from_result(out_values, "boost::rbk_values"),
    )


# ---------------------------------------------------------------------------
# Compaction, gather/scatter
# ---------------------------------------------------------------------------

def copy_if(v: vector, predicate: FunctorLike) -> vector:
    """``boost::compute::copy_if`` — stream compaction (flags/scan/scatter
    internally, like Thrust)."""
    runtime = _runtime(v)
    functor = _functorize(predicate)
    mask = functor(v.data)
    selected = np.ascontiguousarray(v.data[mask])
    n = len(v)
    runtime.ensure_program(
        f"copy_if<{functor.name}|{v.dtype}>", _COMPLEXITY["copy_if"]
    )
    runtime._charge(
        f"copy_if::flags<{functor.name}>",
        n,
        flops=functor.flops,
        read=v.itemsize,
        written=1.0,
    )
    runtime._charge("copy_if::scan", n, flops=2.0, read=2.0, written=8.0, passes=3)
    runtime._charge(
        "copy_if::scatter",
        n,
        flops=1.0,
        read=v.itemsize + 4.0,
        written=float(selected.nbytes) / max(n, 1),
    )
    return runtime.from_result(selected, "boost::copy_if_out")


def gather(index_map: vector, source: vector) -> vector:
    """``boost::compute::gather`` — ``out[i] = source[map[i]]``."""
    runtime = _runtime(index_map)
    indices = index_map.data.astype(np.int64, copy=False)
    if len(indices) and (indices.min() < 0 or indices.max() >= len(source)):
        raise IndexError(f"gather: index out of range [0, {len(source)})")
    result = np.ascontiguousarray(source.data[indices])
    runtime.ensure_program(
        f"gather<{source.dtype}>", _COMPLEXITY["gather"]
    )
    runtime._charge(
        "gather",
        len(index_map),
        flops=1.0,
        # 4x read amplification for uncoalesced source access.
        read=index_map.itemsize + 4.0 * source.itemsize,
        written=source.itemsize,
    )
    return runtime.from_result(result, "boost::gather_out")


def scatter(source: vector, index_map: vector, destination: vector) -> None:
    """``boost::compute::scatter`` — ``destination[map[i]] = source[i]``."""
    runtime = _runtime(source)
    check_same_length(source, index_map, "scatter")
    indices = index_map.data.astype(np.int64, copy=False)
    if len(indices) and (indices.min() < 0 or indices.max() >= len(destination)):
        raise IndexError(f"scatter: index out of range [0, {len(destination)})")
    destination.data[indices] = source.data
    runtime.ensure_program(
        f"scatter<{source.dtype}>", _COMPLEXITY["scatter"]
    )
    runtime._charge(
        "scatter",
        len(source),
        flops=1.0,
        read=source.itemsize + index_map.itemsize,
        written=4.0 * destination.itemsize,
    )


def scatter_if(
    index_map: vector,
    stencil: vector,
    destination: vector,
    source: Optional[vector] = None,
) -> None:
    """``boost::compute::scatter_if`` — conditional scatter.

    ``source=None`` models a ``boost::compute::counting_iterator`` source
    (values generated in registers, no DRAM reads on the source side).
    """
    runtime = _runtime(index_map)
    check_same_length(index_map, stencil, "scatter_if")
    mask = stencil.data.astype(bool)
    indices = index_map.data.astype(np.int64, copy=False)[mask]
    if len(indices) and (indices.min() < 0 or indices.max() >= len(destination)):
        raise IndexError(
            f"scatter_if: index out of range [0, {len(destination)})"
        )
    if source is None:
        destination.data[indices] = np.flatnonzero(mask).astype(
            destination.dtype
        )
        source_read = 0.0
    else:
        check_same_length(source, index_map, "scatter_if")
        destination.data[indices] = source.data[mask]
        source_read = float(source.itemsize)
    selected_fraction = float(mask.sum()) / max(len(mask), 1)
    runtime.ensure_program(
        f"scatter_if<{destination.dtype}>", _COMPLEXITY["scatter"]
    )
    runtime._charge(
        "scatter_if",
        len(index_map),
        flops=1.0,
        read=index_map.itemsize + stencil.itemsize + source_read,
        written=4.0 * destination.itemsize * selected_fraction,
    )


# ---------------------------------------------------------------------------
# Generation / utility
# ---------------------------------------------------------------------------

def iota(v: vector, start: int = 0) -> None:
    """``boost::compute::iota`` — fill with ``start, start+1, ...``."""
    runtime = _runtime(v)
    v.data[:] = np.arange(start, start + len(v), dtype=v.dtype)
    runtime.ensure_program(f"iota<{v.dtype}>", _COMPLEXITY["iota"])
    runtime._charge("iota", len(v), flops=1.0, written=v.itemsize)


def fill(v: vector, value: float) -> None:
    """``boost::compute::fill``."""
    runtime = _runtime(v)
    v.data[:] = value
    runtime.ensure_program(f"fill<{v.dtype}>", _COMPLEXITY["fill"])
    runtime._charge("fill", len(v), flops=0.0, written=v.itemsize)


def copy(v: vector) -> vector:
    """``boost::compute::copy`` into a fresh device vector."""
    runtime = _runtime(v)
    runtime.ensure_program(f"copy<{v.dtype}>", _COMPLEXITY["copy"])
    runtime._charge(
        "copy", len(v), flops=0.0, read=v.itemsize, written=v.itemsize
    )
    return runtime.from_result(v.data.copy(), "boost::copy_out")


def unique(v: vector) -> vector:
    """``boost::compute::unique`` — collapse consecutive duplicates."""
    runtime = _runtime(v)
    data = v.data
    if len(data) == 0:
        result = data.copy()
    else:
        keep = np.empty(len(data), dtype=bool)
        keep[0] = True
        np.not_equal(data[1:], data[:-1], out=keep[1:])
        result = np.ascontiguousarray(data[keep])
    runtime.ensure_program(f"unique<{v.dtype}>", _COMPLEXITY["unique"])
    runtime._charge(
        "unique",
        len(v),
        flops=2.0,
        read=v.itemsize,
        written=float(result.nbytes) / max(len(v), 1),
        passes=2,
    )
    return runtime.from_result(result, "boost::unique_out")


def lower_bound(haystack: vector, needles: vector) -> vector:
    """Vectorized ``boost::compute::lower_bound`` over a sorted haystack."""
    runtime = _runtime(haystack)
    positions = np.searchsorted(haystack.data, needles.data, side="left").astype(
        np.int32
    )
    log_n = float(max(1, int(np.ceil(np.log2(max(len(haystack), 2))))))
    runtime.ensure_program(
        f"lower_bound<{haystack.dtype}>", _COMPLEXITY["search"]
    )
    runtime._charge(
        "lower_bound",
        len(needles),
        flops=log_n,
        read=needles.itemsize + log_n * 4.0 * haystack.itemsize,
        written=4.0,
    )
    return runtime.from_result(positions, "boost::lower_bound_out")


def upper_bound(haystack: vector, needles: vector) -> vector:
    """Vectorized ``boost::compute::upper_bound`` over a sorted haystack."""
    runtime = _runtime(haystack)
    positions = np.searchsorted(haystack.data, needles.data, side="right").astype(
        np.int32
    )
    log_n = float(max(1, int(np.ceil(np.log2(max(len(haystack), 2))))))
    runtime.ensure_program(
        f"upper_bound<{haystack.dtype}>", _COMPLEXITY["search"]
    )
    runtime._charge(
        "upper_bound",
        len(needles),
        flops=log_n,
        read=needles.itemsize + log_n * 4.0 * haystack.itemsize,
        written=4.0,
    )
    return runtime.from_result(positions, "boost::upper_bound_out")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _accumulator_dtype(dtype: np.dtype) -> np.dtype:
    """Widened accumulator type (sums of int32 columns overflow int32)."""
    if np.issubdtype(dtype, np.integer):
        return np.dtype(np.int64)
    return np.dtype(np.float64)
