"""Boost.Compute runtime: OpenCL context, command queue, program cache.

Boost.Compute generates OpenCL C source for every algorithm/functor/type
combination and compiles it *at runtime* through the OpenCL driver.  A
global program cache memoises compiled kernels, so the first use of each
distinct kernel pays a build cost of tens of milliseconds while subsequent
uses are free — the characteristic cold-start penalty the paper's
measurements show for Boost.Compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.gpu.device import Device
from repro.gpu.kernel import EfficiencyProfile
from repro.gpu.stream import Stream
from repro.libs.base import ArrayLike, DeviceArray, LibraryRuntime, as_numpy

#: OpenCL kernels generated from high-level C++ expressions lack the
#: architecture-specific tuning of nvcc-compiled Thrust: measured studies
#: (e.g. the OpenCL-vs-CUDA portability literature the paper cites [3],
#: [21], [22]) put generic OpenCL at ~65-75% of tuned CUDA throughput, and
#: every launch crosses the heavier OpenCL command-queue dispatch path.
BOOST_COMPUTE_PROFILE = EfficiencyProfile(
    name="boost.compute",
    compute_efficiency=0.62,
    memory_efficiency=0.70,
    launch_multiplier=2.5,
)

#: OpenCL program build cost: clBuildProgram on a small single-kernel
#: program takes 20-60 ms depending on source complexity (driver frontend
#: dominates).  ``_COMPILE_BASE`` is the fixed frontend cost;
#: ``_COMPILE_PER_UNIT`` scales with the kernel's complexity score.
_COMPILE_BASE = 0.020
_COMPILE_PER_UNIT = 0.004


@dataclass
class ProgramCacheStats:
    """Hit/miss counters for the program cache (used by the ablation
    benchmark comparing cold vs. warm execution)."""

    hits: int = 0
    misses: int = 0
    compile_time: float = 0.0
    programs: Dict[str, float] = field(default_factory=dict)


class ProgramCache:
    """Memoises compiled OpenCL programs by source signature."""

    def __init__(self, device: Device) -> None:
        self._device = device
        self._compiled: Dict[str, float] = {}
        self.stats = ProgramCacheStats()

    def ensure(self, signature: str, complexity: int = 1) -> float:
        """Ensure ``signature`` is compiled; returns the charge (0 on hit)."""
        if complexity < 1:
            raise ValueError(f"program complexity must be >= 1: {complexity}")
        if signature in self._compiled:
            self.stats.hits += 1
            return 0.0
        cost = _COMPILE_BASE + _COMPILE_PER_UNIT * complexity
        self._device.compile_program(f"opencl::{signature}", cost)
        self._compiled[signature] = cost
        self.stats.misses += 1
        self.stats.compile_time += cost
        self.stats.programs[signature] = cost
        return cost

    def invalidate(self) -> None:
        """Drop all compiled programs (simulates a fresh process start)."""
        self._compiled.clear()

    def __contains__(self, signature: str) -> bool:
        return signature in self._compiled

    def __len__(self) -> int:
        return len(self._compiled)


class vector(DeviceArray):
    """``boost::compute::vector<T>`` — device container."""

    def size(self) -> int:
        """Element count, mirroring the C++ accessor."""
        return len(self)


class command_queue:
    """``boost::compute::command_queue`` — an in-order OpenCL queue.

    OpenCL has no "legacy default stream": every operation is explicitly
    enqueued on a command queue, and independent queues may run
    concurrently.  Here each queue wraps one simulated
    :class:`~repro.gpu.stream.Stream`; use :meth:`scope` (or pass
    ``queue=`` to :meth:`BoostComputeRuntime.vector`) to price work on it
    and :meth:`finish` (``clFinish``) to drain it.
    """

    def __init__(self, runtime: "BoostComputeRuntime", name: Optional[str] = None) -> None:
        self.runtime = runtime
        self.stream: Stream = runtime.device.create_stream(name or "cl-queue")

    def scope(self):
        """Context manager routing enclosed work onto this queue."""
        return self.runtime.device.stream_scope(self.stream)

    def finish(self) -> float:
        """``clFinish`` — block until all enqueued work completes; returns
        the new simulated clock time."""
        return self.stream.synchronize()

    def enqueue_barrier(self) -> "object":
        """``clEnqueueBarrierWithWaitList`` with no wait list: returns an
        event marking everything enqueued so far (a stream event)."""
        return self.stream.record_event("cl-barrier")

    def __repr__(self) -> str:
        return f"command_queue(stream={self.stream.stream_id})"


class BoostComputeRuntime(LibraryRuntime):
    """Execution context: OpenCL context + command queue + program cache."""

    library_name = "boost.compute"
    array_type = vector

    def __init__(self, device: Device) -> None:
        super().__init__(device, BOOST_COMPUTE_PROFILE)
        self.program_cache = ProgramCache(device)

    def command_queue(self, name: Optional[str] = None) -> command_queue:
        """Create an in-order command queue (its own simulated stream)."""
        return command_queue(self, name)

    def vector(
        self,
        values: ArrayLike,
        dtype: Optional[Union[str, np.dtype]] = None,
        label: str = "boost::compute::vector",
        queue: Optional[command_queue] = None,
    ) -> vector:
        """Construct a device vector from host data (charges the H2D copy),
        mirroring ``boost::compute::vector<T> v(host.begin(), host.end(),
        queue)``.  When ``queue`` is given the copy is enqueued on that
        queue's stream and may overlap work on other queues."""
        data = as_numpy(values, np.dtype(dtype) if dtype is not None else None)
        if queue is not None:
            with queue.scope():
                return self._upload(data, label)
        return self._upload(data, label)

    def empty(self, n: int, dtype: Union[str, np.dtype]) -> vector:
        """Uninitialised device vector of ``n`` elements (alloc only)."""
        if n < 0:
            raise ValueError(f"vector size cannot be negative: {n}")
        data = np.empty(n, dtype=np.dtype(dtype))
        return self._materialize(data, "boost::compute::vector")

    def from_result(self, data: np.ndarray, label: str) -> vector:
        """Wrap a device-computed result (no transfer charged)."""
        return self._materialize(data, label)

    def ensure_program(self, signature: str, complexity: int = 1) -> float:
        """Compile-or-hit a kernel program before launching it."""
        return self.program_cache.ensure(signature, complexity)

    def buffer_pool_stats(self):
        """Pool counters when the device runs a pooling allocator, else
        None.  Boost.Compute has no built-in pool — applications wrap
        ``clCreateBuffer`` in their own caching layer — so this simply
        surfaces the device-level pool the session may have installed."""
        return self.pool_stats()
