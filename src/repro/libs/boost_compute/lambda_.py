"""``boost::compute::lambda`` placeholder expressions.

Boost.Compute lets users write kernels inline as placeholder expressions —
``transform(v.begin(), v.end(), out.begin(), _1 * 2 + 1, queue)`` — which
the library turns into OpenCL C source.  This module reproduces that API:
``_1`` and ``_2`` are placeholders; operator overloading builds an
expression tree that compiles down to a :class:`~repro.libs.thrust.functional.Functor`
(shared functor representation) with a source *signature* used as the
program-cache key.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.errors import ExpressionError
from repro.libs.thrust.functional import Functor

Operand = Union["LambdaExpr", int, float, bool]

#: (numpy ufunc, per-element flops, C-ish operator spelling)
_BINARY_OPS = {
    "add": (np.add, 1.0, "+"),
    "sub": (np.subtract, 1.0, "-"),
    "mul": (np.multiply, 1.0, "*"),
    "div": (np.divide, 4.0, "/"),
    "mod": (np.mod, 4.0, "%"),
    "lt": (np.less, 1.0, "<"),
    "le": (np.less_equal, 1.0, "<="),
    "gt": (np.greater, 1.0, ">"),
    "ge": (np.greater_equal, 1.0, ">="),
    "eq": (np.equal, 1.0, "=="),
    "ne": (np.not_equal, 1.0, "!="),
    "and": (np.logical_and, 1.0, "&&"),
    "or": (np.logical_or, 1.0, "||"),
}


class LambdaExpr:
    """Node of a placeholder expression tree."""

    def __init__(
        self,
        source: str,
        arity: int,
        flops: float,
        evaluate: Callable[..., np.ndarray],
    ) -> None:
        self.source = source
        self.arity = arity
        self.flops = flops
        self._evaluate = evaluate

    # -- combination ---------------------------------------------------------

    def _combine(self, other: Operand, op: str, reflected: bool = False) -> "LambdaExpr":
        ufunc, flops, spelling = _BINARY_OPS[op]
        other_expr = _as_expr(other)
        left, right = (other_expr, self) if reflected else (self, other_expr)
        arity = max(left.arity, right.arity)
        le, re_ = left._evaluate, right._evaluate

        def evaluate(*args: np.ndarray) -> np.ndarray:
            return ufunc(le(*args), re_(*args))

        return LambdaExpr(
            source=f"({left.source} {spelling} {right.source})",
            arity=arity,
            flops=left.flops + right.flops + flops,
            evaluate=evaluate,
        )

    # Arithmetic.
    def __add__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "add")

    def __radd__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "add", reflected=True)

    def __sub__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "sub")

    def __rsub__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "sub", reflected=True)

    def __mul__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "mul")

    def __rmul__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "mul", reflected=True)

    def __truediv__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "div")

    def __rtruediv__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "div", reflected=True)

    def __mod__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "mod")

    # Comparisons.
    def __lt__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "lt")

    def __le__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "le")

    def __gt__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "gt")

    def __ge__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "ge")

    def __eq__(self, other: Operand) -> "LambdaExpr":  # type: ignore[override]
        return self._combine(other, "eq")

    def __ne__(self, other: Operand) -> "LambdaExpr":  # type: ignore[override]
        return self._combine(other, "ne")

    __hash__ = None  # type: ignore[assignment]  # == builds expressions

    # Logical (bitwise operators, as in C++ lambda expressions).
    def __and__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "and")

    def __or__(self, other: Operand) -> "LambdaExpr":
        return self._combine(other, "or")

    def __invert__(self) -> "LambdaExpr":
        inner = self._evaluate

        def evaluate(*args: np.ndarray) -> np.ndarray:
            return np.logical_not(inner(*args))

        return LambdaExpr(f"(!{self.source})", self.arity, self.flops + 1.0, evaluate)

    def __neg__(self) -> "LambdaExpr":
        inner = self._evaluate

        def evaluate(*args: np.ndarray) -> np.ndarray:
            return np.negative(inner(*args))

        return LambdaExpr(f"(-{self.source})", self.arity, self.flops + 1.0, evaluate)

    # -- compilation -----------------------------------------------------------

    def to_functor(self) -> Functor:
        """Lower the expression to the shared :class:`Functor` form."""
        if self.arity == 0:
            raise ExpressionError(
                f"lambda expression {self.source!r} uses no placeholder"
            )
        return Functor(self.source, self._evaluate, arity=self.arity, flops=self.flops)

    def __repr__(self) -> str:
        return f"LambdaExpr({self.source!r})"


def _as_expr(operand: Operand) -> LambdaExpr:
    if isinstance(operand, LambdaExpr):
        return operand
    if isinstance(operand, (bool, int, float, np.generic)):
        value = operand

        def evaluate(*args: np.ndarray) -> np.ndarray:
            return np.asarray(value)

        return LambdaExpr(repr(operand), arity=0, flops=0.0, evaluate=evaluate)
    raise ExpressionError(f"cannot use {operand!r} in a lambda expression")


def _placeholder(index: int) -> LambdaExpr:
    def evaluate(*args: np.ndarray) -> np.ndarray:
        if len(args) < index:
            raise ExpressionError(
                f"placeholder _{index} given only {len(args)} argument(s)"
            )
        return args[index - 1]

    return LambdaExpr(f"_{index}", arity=index, flops=0.0, evaluate=evaluate)


#: First argument placeholder (``boost::compute::lambda::_1``).
_1 = _placeholder(1)
#: Second argument placeholder (``boost::compute::lambda::_2``).
_2 = _placeholder(2)
