"""Thrust algorithm suite.

Function names, argument shapes, and in-place/out-of-place behaviour mirror
the C++ API.  Each algorithm's cost annotation (kernel launches, DRAM
traffic, passes) models the documented structure of the real Thrust
implementation; the citation for each shape is inlined as a comment.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import LibraryError
from repro.libs.base import check_same_length
from repro.libs.thrust.functional import Functor
from repro.libs.thrust.vector import ThrustRuntime, device_vector


def _runtime(vector: device_vector) -> ThrustRuntime:
    runtime = vector.runtime
    if not isinstance(runtime, ThrustRuntime):
        raise LibraryError(
            f"vector belongs to {type(runtime).__name__}, expected ThrustRuntime"
        )
    return runtime


# ---------------------------------------------------------------------------
# Elementwise transforms
# ---------------------------------------------------------------------------

def transform(
    first: device_vector,
    functor: Functor,
    second: Optional[device_vector] = None,
) -> device_vector:
    """``thrust::transform`` — unary or binary elementwise map.

    One kernel: reads each input once, writes the output once.
    """
    runtime = _runtime(first)
    if functor.arity == 1:
        if second is not None:
            raise TypeError(f"unary functor {functor.name!r} given two inputs")
        result = functor(first.data)
        read = first.itemsize
    elif functor.arity == 2:
        if second is None:
            raise TypeError(f"binary functor {functor.name!r} given one input")
        check_same_length(first, second, f"transform({functor.name})")
        result = functor(first.data, second.data)
        read = first.itemsize + second.itemsize
    else:
        raise TypeError(f"transform supports arity 1 or 2, got {functor.arity}")
    result = np.ascontiguousarray(result)
    runtime._charge(
        f"transform<{functor.name}>",
        len(first),
        flops=functor.flops,
        read=read,
        written=result.dtype.itemsize,
    )
    return runtime.from_result(result, "thrust::transform_out")


def for_each_n(
    vector: device_vector,
    n: int,
    functor: Functor,
) -> None:
    """``thrust::for_each_n`` — apply a side-effecting functor to the first
    ``n`` elements in place.

    Table II: the paper realizes the *nested-loops join* with
    ``for_each_n`` (each outer element's functor scans the inner relation);
    see :func:`nested_loop_join_via_for_each` for that composition.
    """
    runtime = _runtime(vector)
    if n < 0 or n > len(vector):
        raise IndexError(f"for_each_n: n={n} out of range for {len(vector)}")
    vector.data[:n] = functor(vector.data[:n])
    runtime._charge(
        f"for_each_n<{functor.name}>",
        n,
        flops=functor.flops,
        read=vector.itemsize,
        written=vector.itemsize,
    )


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def reduce(
    vector: device_vector,
    init: float = 0.0,
    functor: Optional[Functor] = None,
) -> np.generic:
    """``thrust::reduce`` — fold the vector into a scalar.

    Thrust's reduction runs a grid-wide partial-sum kernel followed by a
    tiny final pass over the per-block partials (two passes, one logical
    launch pair); the result is copied back to the host.
    """
    runtime = _runtime(vector)
    if functor is None:
        result = vector.data.sum(dtype=_accumulator_dtype(vector.dtype)) + init
    elif functor.name == "maximum":
        result = np.maximum.reduce(vector.data, initial=init)
    elif functor.name == "minimum":
        result = np.minimum.reduce(vector.data, initial=init)
    elif functor.name == "multiplies":
        product = np.multiply.reduce(
            vector.data.astype(_accumulator_dtype(vector.dtype))
        )
        result = product * init if init != 0.0 else product
    else:
        result = _fold(vector.data, functor, init)
    runtime._charge(
        f"reduce<{functor.name if functor else 'plus'}>",
        len(vector),
        flops=(functor.flops if functor else 1.0),
        read=vector.itemsize,
        # Per-block partials are negligible traffic; the final pass is the
        # fixed tail below.
        written=0.0,
        fixed_bytes=4096.0,
        passes=2,
    )
    scalar = np.asarray(result).ravel()[0]
    runtime._read_scalar(scalar, "thrust::reduce_result")
    return scalar


def count_if(vector: device_vector, predicate: Functor) -> int:
    """``thrust::count_if`` — number of elements satisfying ``predicate``.

    Same structure as :func:`reduce` with the predicate fused into the
    load.
    """
    runtime = _runtime(vector)
    mask = predicate(vector.data)
    count = int(np.count_nonzero(mask))
    runtime._charge(
        f"count_if<{predicate.name}>",
        len(vector),
        flops=predicate.flops + 1.0,
        read=vector.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    runtime._read_scalar(np.int64(count), "thrust::count_result")
    return count


def transform_reduce(
    vector: device_vector,
    transform_functor: Functor,
    init: float = 0.0,
) -> np.generic:
    """``thrust::transform_reduce`` — fused map + plus-fold, one pass.

    The fusion matters: ``sum(price * discount)`` via transform_reduce
    reads each input once, where ``transform`` + ``reduce`` materialises
    the product column.
    """
    runtime = _runtime(vector)
    if transform_functor.arity != 1:
        raise TypeError(
            f"transform_reduce expects a unary functor, got "
            f"{transform_functor.arity}"
        )
    mapped = transform_functor(vector.data)
    result = np.asarray(mapped).sum(dtype=np.float64) + init
    runtime._charge(
        f"transform_reduce<{transform_functor.name}>",
        len(vector),
        flops=transform_functor.flops + 1.0,
        read=vector.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    scalar = np.float64(result)
    runtime._read_scalar(scalar, "thrust::transform_reduce_result")
    return scalar


def inner_product(
    first: device_vector,
    second: device_vector,
    init: float = 0.0,
) -> np.generic:
    """``thrust::inner_product`` — fused dot product (Q6's
    ``sum(l_extendedprice * l_discount)`` in one library call)."""
    runtime = _runtime(first)
    check_same_length(first, second, "inner_product")
    result = np.dot(
        first.data.astype(np.float64), second.data.astype(np.float64)
    ) + init
    runtime._charge(
        "inner_product",
        len(first),
        flops=2.0,
        read=first.itemsize + second.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    scalar = np.float64(result)
    runtime._read_scalar(scalar, "thrust::inner_product_result")
    return scalar


def max_element(vector: device_vector) -> int:
    """``thrust::max_element`` — *position* of the maximum (first win)."""
    return _arg_extreme(vector, "max")


def min_element(vector: device_vector) -> int:
    """``thrust::min_element`` — position of the minimum (first win)."""
    return _arg_extreme(vector, "min")


def _arg_extreme(vector: device_vector, kind: str) -> int:
    runtime = _runtime(vector)
    if len(vector) == 0:
        raise LibraryError(f"{kind}_element of an empty vector")
    position = int(
        np.argmax(vector.data) if kind == "max" else np.argmin(vector.data)
    )
    runtime._charge(
        f"{kind}_element",
        len(vector),
        flops=2.0,  # compare + index tracking
        read=vector.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    runtime._read_scalar(np.int64(position), f"thrust::{kind}_element_result")
    return position


def adjacent_difference(vector: device_vector) -> device_vector:
    """``thrust::adjacent_difference`` — ``out[0]=in[0]; out[i]=in[i]-in[i-1]``.

    The classic run-boundary detector (used to find group boundaries in
    sorted key columns)."""
    runtime = _runtime(vector)
    data = vector.data
    result = np.empty_like(data)
    if len(data):
        result[0] = data[0]
        np.subtract(data[1:], data[:-1], out=result[1:])
    runtime._charge(
        "adjacent_difference",
        len(vector),
        flops=1.0,
        read=vector.itemsize,
        written=vector.itemsize,
    )
    return runtime.from_result(result, "thrust::adjacent_difference_out")


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

def exclusive_scan(
    vector: device_vector,
    init: float = 0.0,
) -> device_vector:
    """``thrust::exclusive_scan`` — exclusive prefix sum.

    Table II: *prefix sum* maps directly onto this call, and it is the
    middle step of the selection chain (flags → write positions).  Thrust
    implements scan with a three-phase chained-scan (scan blocks, scan the
    spine, add offsets): the data is read twice and written twice.
    """
    runtime = _runtime(vector)
    acc_dtype = _accumulator_dtype(vector.dtype)
    shifted = np.empty(len(vector), dtype=acc_dtype)
    if len(vector):
        np.cumsum(vector.data, dtype=acc_dtype, out=shifted)
        shifted = np.roll(shifted, 1)
        shifted[0] = 0
        shifted += acc_dtype.type(init)
    result = shifted.astype(vector.dtype, copy=False)
    runtime._charge(
        "exclusive_scan",
        len(vector),
        flops=2.0,
        read=2.0 * vector.itemsize,
        written=2.0 * vector.itemsize,
        passes=3,
    )
    return runtime.from_result(np.ascontiguousarray(result), "thrust::scan_out")


def inclusive_scan(vector: device_vector) -> device_vector:
    """``thrust::inclusive_scan`` — inclusive prefix sum (same cost shape
    as :func:`exclusive_scan`)."""
    runtime = _runtime(vector)
    acc_dtype = _accumulator_dtype(vector.dtype)
    result = np.cumsum(vector.data, dtype=acc_dtype).astype(
        vector.dtype, copy=False
    )
    runtime._charge(
        "inclusive_scan",
        len(vector),
        flops=2.0,
        read=2.0 * vector.itemsize,
        written=2.0 * vector.itemsize,
        passes=3,
    )
    return runtime.from_result(np.ascontiguousarray(result), "thrust::scan_out")


# ---------------------------------------------------------------------------
# Sorting
# ---------------------------------------------------------------------------

#: Radix sort processes 8 bits per digit pass; a 32-bit key therefore takes
#: 4 digit passes, each with an upsweep (histogram) read and a downsweep
#: scatter (read + write) — i.e. per digit pass the keys cross DRAM ~3x.
_RADIX_BITS_PER_PASS = 8


def _radix_passes(dtype: np.dtype) -> int:
    return max(1, (dtype.itemsize * 8) // _RADIX_BITS_PER_PASS)


def sort(vector: device_vector, descending: bool = False) -> None:
    """``thrust::sort`` — in-place radix sort for primitive keys."""
    runtime = _runtime(vector)
    vector.data.sort(kind="stable")
    if descending:
        vector.data[:] = vector.data[::-1]
    digit_passes = _radix_passes(vector.dtype)
    runtime._charge(
        "sort(radix)",
        len(vector),
        flops=4.0 * digit_passes,
        # Histogram read + scatter read + scatter write per digit pass.
        read=2.0 * vector.itemsize * digit_passes,
        written=1.0 * vector.itemsize * digit_passes,
        passes=2 * digit_passes,
    )


def sort_by_key(keys: device_vector, values: device_vector,
                descending: bool = False) -> None:
    """``thrust::sort_by_key`` — in-place key/value radix sort.

    Table II: *sort by key* maps directly onto this call; it is also the
    mandatory pre-pass for grouped aggregation with ``reduce_by_key``.
    """
    runtime = _runtime(keys)
    check_same_length(keys, values, "sort_by_key")
    order = np.argsort(keys.data, kind="stable")
    if descending:
        order = order[::-1]
    keys.data[:] = keys.data[order]
    values.data[:] = values.data[order]
    digit_passes = _radix_passes(keys.dtype)
    payload = values.itemsize
    runtime._charge(
        "sort_by_key(radix)",
        len(keys),
        flops=4.0 * digit_passes,
        # Keys as in sort(); values are additionally gathered+scattered on
        # every digit pass.
        read=(2.0 * keys.itemsize + payload) * digit_passes,
        written=(1.0 * keys.itemsize + payload) * digit_passes,
        passes=2 * digit_passes,
    )


def is_sorted(vector: device_vector) -> bool:
    """``thrust::is_sorted`` — single streaming pass."""
    runtime = _runtime(vector)
    result = bool(np.all(vector.data[:-1] <= vector.data[1:]))
    runtime._charge(
        "is_sorted",
        len(vector),
        flops=1.0,
        read=vector.itemsize,
        fixed_bytes=4096.0,
        passes=2,
    )
    runtime._read_scalar(np.bool_(result), "thrust::is_sorted_result")
    return result


# ---------------------------------------------------------------------------
# Key-grouped reduction (Table II: grouped aggregation)
# ---------------------------------------------------------------------------

def reduce_by_key(
    keys: device_vector,
    values: device_vector,
    functor: Optional[Functor] = None,
) -> Tuple[device_vector, device_vector]:
    """``thrust::reduce_by_key`` — segmented reduction over *consecutive*
    equal keys.

    Matches the C++ contract exactly: keys must be pre-sorted (or at least
    pre-grouped) for a SQL GROUP BY; unsorted keys yield one output run per
    consecutive segment.  Implemented in Thrust as a single load pass with
    a decoupled-lookback segmented scan plus a compaction of segment
    results.
    """
    runtime = _runtime(keys)
    check_same_length(keys, values, "reduce_by_key")
    key_data, value_data = keys.data, values.data
    if len(key_data) == 0:
        empty_k = np.empty(0, dtype=keys.dtype)
        empty_v = np.empty(0, dtype=values.dtype)
        runtime._charge("reduce_by_key", 0, read=0.0, written=0.0)
        return (
            runtime.from_result(empty_k, "thrust::rbk_keys"),
            runtime.from_result(empty_v, "thrust::rbk_values"),
        )
    boundaries = np.empty(len(key_data), dtype=bool)
    boundaries[0] = True
    np.not_equal(key_data[1:], key_data[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    out_keys = key_data[starts]
    acc_dtype = _accumulator_dtype(values.dtype)
    if functor is None or functor.name == "plus":
        sums = np.add.reduceat(value_data.astype(acc_dtype), starts)
    elif functor.name == "maximum":
        sums = np.maximum.reduceat(value_data, starts)
    elif functor.name == "minimum":
        sums = np.minimum.reduceat(value_data, starts)
    elif functor.name == "multiplies":
        sums = np.multiply.reduceat(value_data.astype(acc_dtype), starts)
    else:
        raise LibraryError(
            f"reduce_by_key: unsupported reduction functor {functor.name!r}"
        )
    out_values = np.ascontiguousarray(sums.astype(values.dtype, copy=False))
    runtime._charge(
        f"reduce_by_key<{functor.name if functor else 'plus'}>",
        len(keys),
        flops=4.0,
        read=keys.itemsize + values.itemsize,
        # Output is one entry per segment — usually far smaller than the
        # input; charge it via fixed bytes proportional to segments.
        written=0.0,
        fixed_bytes=float(
            out_keys.nbytes + out_values.nbytes
        ),
        passes=2,
    )
    return (
        runtime.from_result(np.ascontiguousarray(out_keys), "thrust::rbk_keys"),
        runtime.from_result(out_values, "thrust::rbk_values"),
    )


# ---------------------------------------------------------------------------
# Stream compaction, gather/scatter
# ---------------------------------------------------------------------------

def copy_if(
    vector: device_vector,
    predicate: Functor,
    stencil: Optional[device_vector] = None,
) -> device_vector:
    """``thrust::copy_if`` — stream compaction.

    Presented as one call, but internally Thrust runs the canonical
    three-step pipeline (predicate flags → scan → scatter); we charge the
    three kernels so the profiler shows the real launch count.
    """
    runtime = _runtime(vector)
    source = stencil.data if stencil is not None else vector.data
    if stencil is not None:
        check_same_length(vector, stencil, "copy_if")
    mask = predicate(source)
    selected = np.ascontiguousarray(vector.data[mask])
    n = len(vector)
    flag_bytes = 1.0  # thrust uses bool flags internally
    runtime._charge(
        f"copy_if::flags<{predicate.name}>",
        n,
        flops=predicate.flops,
        read=vector.itemsize if stencil is None else stencil.itemsize,
        written=flag_bytes,
    )
    runtime._charge(
        "copy_if::scan",
        n,
        flops=2.0,
        read=2.0 * flag_bytes,
        written=2.0 * 4.0,  # int32 positions
        passes=3,
    )
    runtime._charge(
        "copy_if::scatter",
        n,
        flops=1.0,
        read=vector.itemsize + 4.0,
        written=float(selected.nbytes) / max(n, 1),
    )
    return runtime.from_result(selected, "thrust::copy_if_out")


def gather(
    index_map: device_vector,
    source: device_vector,
) -> device_vector:
    """``thrust::gather`` — ``out[i] = source[map[i]]``.

    Random-access reads from ``source`` are uncoalesced: each 4/8-byte
    element touches a full 32-byte DRAM sector, modelled as a 4x read
    amplification on the source side.
    """
    runtime = _runtime(index_map)
    indices = index_map.data.astype(np.int64, copy=False)
    if len(indices) and (indices.min() < 0 or indices.max() >= len(source)):
        raise IndexError(
            f"gather: index out of range [0, {len(source)}) "
            f"(min={indices.min()}, max={indices.max()})"
        )
    result = np.ascontiguousarray(source.data[indices])
    runtime._charge(
        "gather",
        len(index_map),
        flops=1.0,
        read=index_map.itemsize + 4.0 * source.itemsize,
        written=source.itemsize,
    )
    return runtime.from_result(result, "thrust::gather_out")


def scatter(
    source: device_vector,
    index_map: device_vector,
    destination: device_vector,
) -> None:
    """``thrust::scatter`` — ``destination[map[i]] = source[i]`` in place.

    Uncoalesced writes carry the same 4x sector amplification as gather's
    reads.
    """
    runtime = _runtime(source)
    check_same_length(source, index_map, "scatter")
    indices = index_map.data.astype(np.int64, copy=False)
    if len(indices) and (indices.min() < 0 or indices.max() >= len(destination)):
        raise IndexError(
            f"scatter: index out of range [0, {len(destination)})"
        )
    destination.data[indices] = source.data
    runtime._charge(
        "scatter",
        len(source),
        flops=1.0,
        read=source.itemsize + index_map.itemsize,
        written=4.0 * destination.itemsize,
    )


def scatter_if(
    index_map: device_vector,
    stencil: device_vector,
    destination: device_vector,
    source: Optional[device_vector] = None,
) -> None:
    """``thrust::scatter_if`` — ``dest[map[i]] = src[i]`` where ``stencil[i]``.

    ``source=None`` models a ``thrust::counting_iterator`` source (the
    idiomatic stream-compaction pattern: scatter each selected row's own
    index) — counting iterators generate values in registers, so the source
    side costs no DRAM reads.
    """
    runtime = _runtime(index_map)
    check_same_length(index_map, stencil, "scatter_if")
    mask = stencil.data.astype(bool)
    indices = index_map.data.astype(np.int64, copy=False)[mask]
    if len(indices) and (indices.min() < 0 or indices.max() >= len(destination)):
        raise IndexError(
            f"scatter_if: index out of range [0, {len(destination)})"
        )
    if source is None:
        destination.data[indices] = np.flatnonzero(mask).astype(
            destination.dtype
        )
        source_read = 0.0
    else:
        check_same_length(source, index_map, "scatter_if")
        destination.data[indices] = source.data[mask]
        source_read = float(source.itemsize)
    selected_fraction = float(mask.sum()) / max(len(mask), 1)
    runtime._charge(
        "scatter_if",
        len(index_map),
        flops=1.0,
        read=index_map.itemsize + stencil.itemsize + source_read,
        # Only selected rows are written, uncoalesced (4x amplification).
        written=4.0 * destination.itemsize * selected_fraction,
    )


# ---------------------------------------------------------------------------
# Generation / utility
# ---------------------------------------------------------------------------

def sequence(vector: device_vector, start: int = 0, step: int = 1) -> None:
    """``thrust::sequence`` — fill with ``start, start+step, ...`` in place."""
    runtime = _runtime(vector)
    n = len(vector)
    vector.data[:] = np.arange(
        start, start + step * n, step, dtype=vector.dtype
    )[:n]
    runtime._charge(
        "sequence", n, flops=1.0, read=0.0, written=vector.itemsize
    )


def fill(vector: device_vector, value: float) -> None:
    """``thrust::fill`` — set all elements to ``value`` in place."""
    runtime = _runtime(vector)
    vector.data[:] = value
    runtime._charge(
        "fill", len(vector), flops=0.0, read=0.0, written=vector.itemsize
    )


def copy(vector: device_vector) -> device_vector:
    """``thrust::copy`` into a fresh vector (device-to-device)."""
    runtime = _runtime(vector)
    runtime._charge(
        "copy",
        len(vector),
        flops=0.0,
        read=vector.itemsize,
        written=vector.itemsize,
    )
    return runtime.from_result(vector.data.copy(), "thrust::copy_out")


def unique(vector: device_vector) -> device_vector:
    """``thrust::unique`` — drop *consecutive* duplicates (C++ contract:
    only adjacent equal elements collapse; sort first for global dedup)."""
    runtime = _runtime(vector)
    data = vector.data
    if len(data) == 0:
        result = data.copy()
    else:
        keep = np.empty(len(data), dtype=bool)
        keep[0] = True
        np.not_equal(data[1:], data[:-1], out=keep[1:])
        result = np.ascontiguousarray(data[keep])
    runtime._charge(
        "unique",
        len(vector),
        flops=2.0,
        read=vector.itemsize,
        written=float(result.nbytes) / max(len(vector), 1),
        passes=2,
    )
    return runtime.from_result(result, "thrust::unique_out")


def lower_bound(
    haystack: device_vector,
    needles: device_vector,
) -> device_vector:
    """``thrust::lower_bound`` (vectorized binary search) — for each needle,
    the first position in the sorted haystack not less than it.

    Used by the merge-join realization; each lookup is log2(n) random
    reads.
    """
    runtime = _runtime(haystack)
    positions = np.searchsorted(
        haystack.data, needles.data, side="left"
    ).astype(np.int32)
    log_n = float(max(1, int(np.ceil(np.log2(max(len(haystack), 2))))))
    runtime._charge(
        "lower_bound",
        len(needles),
        flops=log_n,
        # Each binary-search step is one uncoalesced read of a key.
        read=needles.itemsize + log_n * 4.0 * haystack.itemsize,
        written=4.0,
    )
    return runtime.from_result(positions, "thrust::lower_bound_out")


def upper_bound(
    haystack: device_vector,
    needles: device_vector,
) -> device_vector:
    """``thrust::upper_bound`` — first position greater than each needle."""
    runtime = _runtime(haystack)
    positions = np.searchsorted(
        haystack.data, needles.data, side="right"
    ).astype(np.int32)
    log_n = float(max(1, int(np.ceil(np.log2(max(len(haystack), 2))))))
    runtime._charge(
        "upper_bound",
        len(needles),
        flops=log_n,
        read=needles.itemsize + log_n * 4.0 * haystack.itemsize,
        written=4.0,
    )
    return runtime.from_result(positions, "thrust::upper_bound_out")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _accumulator_dtype(dtype: np.dtype) -> np.dtype:
    """Widened accumulator type (sums of int32 columns overflow int32)."""
    if np.issubdtype(dtype, np.integer):
        return np.dtype(np.int64)
    return np.dtype(np.float64)


def _fold(data: np.ndarray, functor: Functor, init: float) -> np.generic:
    """Generic sequential fold for uncommon reduction functors."""
    accumulator = np.asarray(init, dtype=data.dtype)
    for chunk_start in range(0, len(data), 65536):
        chunk = data[chunk_start:chunk_start + 65536]
        for value in chunk:
            accumulator = functor(
                np.asarray(accumulator)[None], np.asarray(value)[None]
            )[0]
    return np.asarray(accumulator).ravel()[0]
