"""``thrust::device_vector`` and the Thrust runtime.

Thrust is an *eager* CUDA template library: every algorithm call translates
directly into one or more kernel launches with no cross-call fusion.  Its
kernels are CUDA-tier: they achieve a high fraction of device peak and pay
only the raw CUDA launch latency.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.gpu.device import Device
from repro.gpu.kernel import EfficiencyProfile
from repro.gpu.stream import Stream
from repro.libs.base import ArrayLike, DeviceArray, LibraryRuntime, as_numpy

#: Thrust kernels are compiled offline by nvcc (no runtime compilation) and
#: are well tuned, but remain generic templates: they reach ~85% of peak
#: compute and ~88% of STREAM bandwidth — slightly below hand-written,
#: workload-specialised kernels (TUNED_PROFILE at 90%/92%).
THRUST_PROFILE = EfficiencyProfile(
    name="thrust",
    compute_efficiency=0.85,
    memory_efficiency=0.88,
    launch_multiplier=1.0,
)


class device_vector(DeviceArray):
    """A Thrust device vector (named to match ``thrust::device_vector``)."""

    def size(self) -> int:
        """Element count, mirroring the C++ ``size()`` accessor."""
        return len(self)


class ThrustRuntime(LibraryRuntime):
    """Factory and execution context for the Thrust emulation."""

    library_name = "thrust"
    array_type = device_vector

    def __init__(self, device: Device) -> None:
        super().__init__(device, THRUST_PROFILE)

    def device_vector(
        self,
        values: ArrayLike,
        dtype: Optional[Union[str, np.dtype]] = None,
        label: str = "thrust::device_vector",
    ) -> device_vector:
        """Construct a device vector from host data (charges the H2D copy),
        mirroring ``thrust::device_vector<T> v(host.begin(), host.end())``.

        The copy lands on the legacy default stream unless an enclosing
        ``par_on``/``Device.stream_scope`` routes it elsewhere — exactly
        Thrust's own default-stream semantics."""
        data = as_numpy(values, np.dtype(dtype) if dtype is not None else None)
        return self._upload(data, label)

    def device_vector_async(
        self,
        values: ArrayLike,
        stream: "Stream",
        dtype: Optional[Union[str, np.dtype]] = None,
        label: str = "thrust::device_vector",
    ) -> device_vector:
        """Asynchronous construction: the H2D copy is enqueued on
        ``stream`` (``cudaMemcpyAsync`` + ``thrust::cuda::par.on``), so it
        overlaps with kernels running on other streams."""
        data = as_numpy(values, np.dtype(dtype) if dtype is not None else None)
        with self.device.stream_scope(stream):
            return self._upload(data, label)

    def par_on(self, stream: Optional["Stream"]):
        """``thrust::cuda::par.on(stream)`` — a context manager routing
        every algorithm call inside it onto ``stream``."""
        return self.device.stream_scope(stream)

    def caching_allocator_stats(self):
        """Pool counters when the device runs a caching allocator, else
        None — models ``thrust::mr::disjoint_unsynchronized_pool_resource``
        (or the legacy ``thrust::system::cuda::detail::cached_allocator``
        recipe), which Thrust programs plug in precisely to avoid the
        per-call ``cudaMalloc`` the paper's chained compositions incur."""
        return self.pool_stats()

    def empty(self, n: int, dtype: Union[str, np.dtype]) -> device_vector:
        """Construct an uninitialised device vector of ``n`` elements
        (device-side allocation only: no transfer, no fill kernel)."""
        if n < 0:
            raise ValueError(f"vector size cannot be negative: {n}")
        data = np.empty(n, dtype=np.dtype(dtype))
        return self._materialize(data, "thrust::device_vector")

    def from_result(self, data: np.ndarray, label: str) -> device_vector:
        """Wrap a device-computed result array (no transfer charged)."""
        return self._materialize(data, label)
