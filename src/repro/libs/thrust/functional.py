"""Functor objects mirroring ``thrust/functional.h``.

Thrust algorithms are parameterised by function objects; our emulation keeps
that shape.  Each functor knows how to apply itself to NumPy operands and
how many arithmetic operations per element it represents (used by the
kernel cost model).  Boost.Compute reuses these functors — its
``boost::compute::plus<T>`` family is API-identical.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class Functor:
    """A named elementwise function with a per-element FLOP estimate."""

    def __init__(
        self,
        name: str,
        fn: Callable[..., np.ndarray],
        arity: int,
        flops: float = 1.0,
    ) -> None:
        self.name = name
        self._fn = fn
        self.arity = arity
        self.flops = flops

    def __call__(self, *operands: np.ndarray) -> np.ndarray:
        if len(operands) != self.arity:
            raise TypeError(
                f"functor {self.name!r} expects {self.arity} operands, "
                f"got {len(operands)}"
            )
        return self._fn(*operands)

    def __repr__(self) -> str:
        return f"Functor({self.name!r}, arity={self.arity})"


# -- binary arithmetic (thrust::plus<T> etc.) --------------------------------

def plus() -> Functor:
    """``thrust::plus<T>`` — elementwise addition."""
    return Functor("plus", np.add, arity=2, flops=1.0)


def minus() -> Functor:
    """``thrust::minus<T>`` — elementwise subtraction."""
    return Functor("minus", np.subtract, arity=2, flops=1.0)


def multiplies() -> Functor:
    """``thrust::multiplies<T>`` — elementwise product (Table II: the
    *product* database operator is realized with this functor)."""
    return Functor("multiplies", np.multiply, arity=2, flops=1.0)


def divides() -> Functor:
    """``thrust::divides<T>`` — elementwise division."""
    return Functor("divides", np.divide, arity=2, flops=4.0)


def maximum() -> Functor:
    """``thrust::maximum<T>``."""
    return Functor("maximum", np.maximum, arity=2, flops=1.0)


def minimum() -> Functor:
    """``thrust::minimum<T>``."""
    return Functor("minimum", np.minimum, arity=2, flops=1.0)


# -- binary logical (Table II: conjunction & disjunction) ---------------------

def bit_and() -> Functor:
    """``thrust::bit_and<T>`` — Table II realizes *conjunction* with it."""
    return Functor("bit_and", np.bitwise_and, arity=2, flops=1.0)


def bit_or() -> Functor:
    """``thrust::bit_or<T>`` — Table II realizes *disjunction* with it."""
    return Functor("bit_or", np.bitwise_or, arity=2, flops=1.0)


def logical_and() -> Functor:
    """``thrust::logical_and<T>``."""
    return Functor("logical_and", np.logical_and, arity=2, flops=1.0)


def logical_or() -> Functor:
    """``thrust::logical_or<T>``."""
    return Functor("logical_or", np.logical_or, arity=2, flops=1.0)


# -- unary --------------------------------------------------------------------

def identity() -> Functor:
    """``thrust::identity<T>``."""
    return Functor("identity", lambda x: x.copy(), arity=1, flops=0.0)


def negate() -> Functor:
    """``thrust::negate<T>``."""
    return Functor("negate", np.negative, arity=1, flops=1.0)


def logical_not() -> Functor:
    """``thrust::logical_not<T>``."""
    return Functor("logical_not", np.logical_not, arity=1, flops=1.0)


# -- comparison predicates (for selections) -----------------------------------

def greater_than(threshold: float) -> Functor:
    """Unary predicate ``x > threshold`` (a bound ``thrust::greater``)."""
    return Functor(
        f"greater_than({threshold})",
        lambda x: x > threshold,
        arity=1,
        flops=1.0,
    )


def greater_equal(threshold: float) -> Functor:
    """Unary predicate ``x >= threshold``."""
    return Functor(
        f"greater_equal({threshold})",
        lambda x: x >= threshold,
        arity=1,
        flops=1.0,
    )


def less_than(threshold: float) -> Functor:
    """Unary predicate ``x < threshold``."""
    return Functor(
        f"less_than({threshold})",
        lambda x: x < threshold,
        arity=1,
        flops=1.0,
    )


def less_equal(threshold: float) -> Functor:
    """Unary predicate ``x <= threshold``."""
    return Functor(
        f"less_equal({threshold})",
        lambda x: x <= threshold,
        arity=1,
        flops=1.0,
    )


def equal_to_value(value: float) -> Functor:
    """Unary predicate ``x == value``."""
    return Functor(
        f"equal_to({value})",
        lambda x: x == value,
        arity=1,
        flops=1.0,
    )


def not_equal_to_value(value: float) -> Functor:
    """Unary predicate ``x != value``."""
    return Functor(
        f"not_equal_to({value})",
        lambda x: x != value,
        arity=1,
        flops=1.0,
    )


def between(low: float, high: float) -> Functor:
    """Unary predicate ``low <= x < high`` (half-open, SQL BETWEEN-style
    ranges are composed from two comparisons when closed bounds are
    needed)."""
    if high < low:
        raise ValueError(f"between: high ({high}) < low ({low})")
    return Functor(
        f"between({low},{high})",
        lambda x: (x >= low) & (x < high),
        arity=1,
        flops=2.0,
    )


# -- comparators for sorts ------------------------------------------------------

def less() -> Functor:
    """``thrust::less<T>`` — ascending sort order."""
    return Functor("less", np.less, arity=2, flops=1.0)


def greater() -> Functor:
    """``thrust::greater<T>`` — descending sort order."""
    return Functor("greater", np.greater, arity=2, flops=1.0)
