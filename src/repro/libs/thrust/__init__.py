"""Thrust emulation (CUDA-tier, eager execution).

Mirrors the subset of ``thrust/`` the paper's operator realizations use
(Table II): ``transform``, ``exclusive_scan``, ``gather``/``scatter``,
``for_each_n``, ``reduce``/``reduce_by_key``, ``sort``/``sort_by_key``,
plus supporting algorithms.
"""

from repro.libs.thrust import functional
from repro.libs.thrust.algorithms import (
    adjacent_difference,
    copy,
    copy_if,
    count_if,
    exclusive_scan,
    fill,
    for_each_n,
    gather,
    inclusive_scan,
    inner_product,
    is_sorted,
    lower_bound,
    max_element,
    min_element,
    reduce,
    reduce_by_key,
    scatter,
    scatter_if,
    sequence,
    sort,
    sort_by_key,
    transform,
    transform_reduce,
    unique,
    upper_bound,
)
from repro.libs.thrust.functional import Functor
from repro.libs.thrust.vector import THRUST_PROFILE, ThrustRuntime, device_vector

__all__ = [
    "ThrustRuntime",
    "device_vector",
    "THRUST_PROFILE",
    "Functor",
    "functional",
    "transform",
    "transform_reduce",
    "inner_product",
    "max_element",
    "min_element",
    "adjacent_difference",
    "for_each_n",
    "reduce",
    "count_if",
    "exclusive_scan",
    "inclusive_scan",
    "sort",
    "sort_by_key",
    "is_sorted",
    "reduce_by_key",
    "copy_if",
    "gather",
    "scatter",
    "scatter_if",
    "sequence",
    "fill",
    "copy",
    "unique",
    "lower_bound",
    "upper_bound",
]
