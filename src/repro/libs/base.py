"""Shared machinery for the three GPU library emulations.

Each library emulation owns a :class:`LibraryRuntime` bound to a simulated
:class:`~repro.gpu.device.Device`.  Data lives in :class:`DeviceArray`
objects: a host-side NumPy mirror of the device contents plus the
:class:`~repro.gpu.memory.DeviceBuffer` accounting for its device memory.
The NumPy array carries the *semantics*; the buffer and the runtime's
efficiency profile carry the *costs*.
"""

from __future__ import annotations

import weakref
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.errors import ArraySizeMismatchError, InvalidBufferError
from repro.gpu.device import Device
from repro.gpu.kernel import EfficiencyProfile, KernelCost
from repro.gpu.memory import DeviceBuffer
from repro.gpu.stream import Stream

ArrayLike = Union[np.ndarray, Sequence[int], Sequence[float]]


class DeviceArray:
    """A typed, fixed-length array resident on the simulated device."""

    def __init__(
        self,
        runtime: "LibraryRuntime",
        data: np.ndarray,
        buffer: DeviceBuffer,
    ) -> None:
        self.runtime = runtime
        self.data = data
        self.buffer = buffer
        # Auto-release device memory when the host handle is collected, the
        # way RAII vectors (thrust::device_vector) behave.
        self._finalizer = weakref.finalize(
            self, _release_buffer, runtime.device, buffer
        )

    # -- introspection -----------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        """Element type of the array."""
        return self.data.dtype

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return int(self.data.dtype.itemsize)

    @property
    def nbytes(self) -> int:
        """Total device bytes occupied by the payload."""
        return int(self.data.nbytes)

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={len(self)}, dtype={self.dtype}, "
            f"device={self.runtime.device.spec.name!r})"
        )

    # -- lifetime ----------------------------------------------------------

    def free(self) -> None:
        """Explicitly release the device allocation (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    @property
    def alive(self) -> bool:
        """Whether the device allocation is still live."""
        return self._finalizer.alive

    def _require_alive(self) -> None:
        if not self._finalizer.alive:
            raise InvalidBufferError(f"use after free of {self!r}")

    # -- host access -------------------------------------------------------

    def to_host(self, label: str = "d2h") -> np.ndarray:
        """Copy the array back to the host (charges a D2H transfer)."""
        self._require_alive()
        self.runtime.device.transfer_to_host(
            self.nbytes, label, stream=self.runtime._effective_stream()
        )
        return self.data.copy()

    def peek(self) -> np.ndarray:
        """Read the host mirror *without* charging a transfer.

        Test helpers use this to assert semantics without perturbing the
        cost accounting under measurement.
        """
        return self.data


def _release_buffer(device: Device, buffer: DeviceBuffer) -> None:
    """Finalizer target: free a buffer if the device still owns it."""
    if not buffer.freed:
        device.free(buffer)


class LibraryRuntime:
    """Base class for a library emulation bound to one device.

    Subclasses define ``profile`` (how efficient the library's generated
    kernels are) and use :meth:`_charge` / :meth:`_upload` to price work.
    """

    #: Human-readable library name (matches the paper's terminology).
    library_name: str = "base"

    def __init__(self, device: Device, profile: EfficiencyProfile) -> None:
        self.device = device
        self.profile = profile
        #: Runtime-level stream installed by :meth:`set_stream`; work is
        #: priced on it unless an enclosing ``Device.stream_scope`` wins.
        self._stream: Optional[Stream] = None

    # -- streams ------------------------------------------------------------

    def create_stream(self, name: Optional[str] = None) -> Stream:
        """Create an asynchronous stream on the runtime's device."""
        return self.device.create_stream(name)

    def set_stream(self, stream: Optional[Stream]) -> None:
        """Install a persistent stream for this runtime's work.

        Models per-context queues (ArrayFire's per-device stream, a
        Boost.Compute command queue).  ``None`` restores legacy
        default-stream semantics.
        """
        self._stream = stream

    def on(self, stream: Optional[Stream]) -> Iterator[Optional[Stream]]:
        """Scope-based stream routing (``thrust::cuda::par.on(stream)``):
        a context manager pricing all enclosed work on ``stream``."""
        return self.device.stream_scope(stream)

    def _effective_stream(self) -> Optional[Stream]:
        """Device scope stream first, then the runtime stream."""
        scoped = self.device.current_stream
        return scoped if scoped is not None else self._stream

    def sync(self) -> float:
        """Drain outstanding work: the effective stream if one is set
        (``cudaStreamSynchronize``), else the whole device.  Returns the
        new simulated clock time."""
        stream = self._effective_stream()
        if stream is not None:
            return stream.synchronize()
        return self.device.synchronize()

    # -- device memory pool --------------------------------------------------

    @property
    def memory_pool(self):
        """The device's pooling sub-allocator, or None when the device
        runs the legacy or plain-``cudaMalloc`` allocator."""
        return self.device.pool

    def pool_stats(self):
        """A :class:`~repro.gpu.memory.PoolStats` snapshot, or None when
        the device is not pooled."""
        pool = self.device.pool
        return pool.stats() if pool is not None else None

    def trim_device_pool(self) -> int:
        """Release cached pool blocks back to the device; returns bytes."""
        return self.device.trim_pool()

    # -- pricing helpers ----------------------------------------------------

    def _charge(
        self,
        name: str,
        elements: int,
        *,
        flops: float = 1.0,
        read: float = 0.0,
        written: float = 0.0,
        fixed_flops: float = 0.0,
        fixed_bytes: float = 0.0,
        passes: int = 1,
    ) -> float:
        """Launch one kernel with per-element work description."""
        cost = KernelCost(
            name=f"{self.library_name}::{name}",
            elements=elements,
            flops_per_element=flops,
            bytes_read_per_element=read,
            bytes_written_per_element=written,
            fixed_flops=fixed_flops,
            fixed_bytes=fixed_bytes,
            passes=passes,
        )
        return self.device.launch(
            cost, self.profile, stream=self._effective_stream()
        )

    #: Concrete DeviceArray subclass this runtime hands out (library
    #: emulations override this with their native array type).
    array_type = DeviceArray

    def _upload(self, data: np.ndarray, label: str) -> DeviceArray:
        """Allocate device storage for ``data`` and charge the H2D copy."""
        contiguous = np.ascontiguousarray(data)
        buffer = self.device.alloc_for_array(contiguous, label)
        self.device.transfer_to_device(
            contiguous.nbytes, label, stream=self._effective_stream()
        )
        return self.array_type(self, contiguous.copy(), buffer)

    def _materialize(self, data: np.ndarray, label: str) -> DeviceArray:
        """Wrap a device-produced result (no H2D transfer is charged)."""
        contiguous = np.ascontiguousarray(data)
        buffer = self.device.alloc_for_array(contiguous, label)
        return self.array_type(self, contiguous, buffer)

    # -- scalar readback -----------------------------------------------------

    def _read_scalar(self, value: np.generic, label: str) -> np.generic:
        """Charge the D2H copy of a scalar result (reduce & friends)."""
        nbytes = int(np.dtype(value.dtype).itemsize) if hasattr(value, "dtype") else 8
        self.device.transfer_to_host(
            nbytes, label, stream=self._effective_stream()
        )
        return value


def check_same_length(
    a: Union[DeviceArray, np.ndarray],
    b: Union[DeviceArray, np.ndarray],
    context: str,
) -> int:
    """Validate that two arrays agree in length; returns that length."""
    la, lb = len(a), len(b)
    if la != lb:
        raise ArraySizeMismatchError(la, lb, context)
    return la


def as_numpy(values: ArrayLike, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Coerce host input to a 1-D contiguous NumPy array."""
    array = np.asarray(values, dtype=dtype)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {array.shape}")
    return np.ascontiguousarray(array)
