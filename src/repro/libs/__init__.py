"""Emulations of the three GPU libraries the paper studies.

* :mod:`repro.libs.thrust` — NVIDIA Thrust: eager CUDA template library.
* :mod:`repro.libs.boost_compute` — Boost.Compute: OpenCL with runtime
  kernel compilation and a program cache.
* :mod:`repro.libs.arrayfire` — ArrayFire: lazy arrays with JIT kernel
  fusion.

All three execute semantics on the host via NumPy while charging costs to a
simulated :class:`~repro.gpu.device.Device`; see DESIGN.md.
"""

from repro.libs.base import DeviceArray, LibraryRuntime

__all__ = ["DeviceArray", "LibraryRuntime"]
