"""ArrayFire ``Array`` (lazy) and the ArrayFire runtime.

An :class:`Array` is either *materialized* (backed by device memory) or
*lazy* (a JIT expression tree over materialized leaves).  Element-wise
operators extend the tree; anything that needs real values — reductions,
sorts, ``where``, host readback — forces :meth:`Array.eval`, which fuses
the tree into one kernel launch (compiling it on first sight of the tree
shape).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.errors import ArraySizeMismatchError, ExpressionError, LibraryError
from repro.gpu.device import Device
from repro.gpu.kernel import EfficiencyProfile
from repro.libs.arrayfire import jit
from repro.libs.base import ArrayLike, DeviceArray, LibraryRuntime, as_numpy

#: ArrayFire kernels are vendor-tuned CUDA (or OpenCL) code paths and its
#: JIT emits straightforward element-wise kernels: close to Thrust on
#: throughput (~80/85% of peak) but every operation crosses the ArrayFire
#: runtime (array refcounting, dimension checks), adding ~60% to launch
#: dispatch.
ARRAYFIRE_PROFILE = EfficiencyProfile(
    name="arrayfire",
    compute_efficiency=0.80,
    memory_efficiency=0.85,
    launch_multiplier=1.6,
)

Scalar = Union[int, float, bool, np.generic]
Operand = Union["Array", Scalar]


class ArrayFireRuntime(LibraryRuntime):
    """Execution context holding the JIT kernel cache."""

    library_name = "arrayfire"

    def __init__(self, device: Device, fusion_enabled: bool = True) -> None:
        super().__init__(device, ARRAYFIRE_PROFILE)
        self.jit_cache = jit.JitKernelCache()
        #: The fusion ablation benchmark flips this off to quantify how much
        #: of ArrayFire's advantage comes from JIT fusion: with fusion
        #: disabled every element-wise op evaluates immediately (one kernel
        #: per op), like an eager library.
        self.fusion_enabled = fusion_enabled

    def array(
        self,
        values: ArrayLike,
        dtype: Optional[Union[str, np.dtype]] = None,
        label: str = "af::array",
    ) -> "Array":
        """Construct a materialized array from host data (charges H2D),
        mirroring ``af::array(n, host_ptr)``."""
        data = as_numpy(values, np.dtype(dtype) if dtype is not None else None)
        storage = self._upload(data, label)
        return Array(self, storage=storage)

    def constant(self, value: Scalar, n: int, dtype: Union[str, np.dtype]) -> "Array":
        """``af::constant`` — filled array, produced by one tiny kernel."""
        if n < 0:
            raise ValueError(f"array size cannot be negative: {n}")
        data = np.full(n, value, dtype=np.dtype(dtype))
        self._charge("constant", n, flops=0.0, written=data.dtype.itemsize)
        storage = self._materialize(data, "af::constant")
        return Array(self, storage=storage)

    def iota(self, n: int, dtype: Union[str, np.dtype] = np.int32) -> "Array":
        """``af::iota`` — 0..n-1."""
        if n < 0:
            raise ValueError(f"array size cannot be negative: {n}")
        data = np.arange(n, dtype=np.dtype(dtype))
        self._charge("iota", n, flops=1.0, written=data.dtype.itemsize)
        storage = self._materialize(data, "af::iota")
        return Array(self, storage=storage)

    def from_result(self, data: np.ndarray, label: str) -> "Array":
        """Wrap a device-computed result (no transfer charged)."""
        storage = self._materialize(np.ascontiguousarray(data), label)
        return Array(self, storage=storage)

    # -- streams -------------------------------------------------------------
    #
    # ArrayFire runs every operation on one internal per-device stream
    # (``afcu::getStream``); users may swap it for their own via
    # ``afcu::setStream``.  The base-class ``set_stream`` models exactly
    # that, so these are thin named aliases.

    def get_stream(self):
        """``afcu::getStream`` — the stream ArrayFire enqueues work on
        (``None`` means the legacy default stream)."""
        return self._effective_stream()

    def use_new_stream(self, name: str = "af-stream"):
        """Install a fresh asynchronous stream as ArrayFire's per-device
        queue (``afcu::setStream`` with a user-created stream) and return
        it."""
        stream = self.create_stream(name)
        self.set_stream(stream)
        return stream

    # -- memory manager ------------------------------------------------------
    #
    # ArrayFire ships its own pooling device-memory manager; these mirror
    # the two user-facing hooks.

    def device_mem_info(self) -> dict:
        """``af::deviceMemInfo`` — allocated vs. locked bytes/buffers.

        "alloc" covers everything ArrayFire holds from the driver
        (including pool-cached blocks); "lock" covers buffers currently
        handed out to live arrays.
        """
        memory = self.device.memory
        pool = self.device.pool
        cached_bytes = pool.cached_bytes if pool is not None else 0
        cached_blocks = pool.cached_blocks if pool is not None else 0
        return {
            "alloc_bytes": memory.used_bytes,
            "alloc_buffers": memory.live_buffer_count,
            "lock_bytes": memory.used_bytes - cached_bytes,
            "lock_buffers": memory.live_buffer_count - cached_blocks,
        }

    def device_gc(self) -> int:
        """``af::deviceGC`` — release unlocked (pool-cached) buffers back
        to the driver; returns the bytes released."""
        return self.trim_device_pool()


class Array:
    """A lazy ArrayFire array (1-D, matching the paper's columnar usage)."""

    def __init__(
        self,
        runtime: ArrayFireRuntime,
        storage: Optional[DeviceArray] = None,
        node: Optional[jit.JitNode] = None,
        leaves: Optional[List[DeviceArray]] = None,
        length: Optional[int] = None,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if (storage is None) == (node is None):
            raise ExpressionError(
                "Array needs exactly one of storage (materialized) or node (lazy)"
            )
        self.runtime = runtime
        self._storage = storage
        self._node = node
        self._leaves = leaves or []
        self._length = length if length is not None else (
            len(storage) if storage is not None else 0
        )
        self._dtype = dtype if dtype is not None else (
            storage.dtype if storage is not None else np.dtype(np.float64)
        )

    # -- introspection -----------------------------------------------------

    @property
    def is_lazy(self) -> bool:
        """True while the array is an unevaluated expression tree."""
        return self._storage is None

    @property
    def dtype(self) -> np.dtype:
        """Element type (computed for lazy nodes via promotion rules)."""
        return self._dtype

    def __len__(self) -> int:
        return self._length

    @property
    def elements(self) -> int:
        """``af::array::elements()``."""
        return self._length

    def __repr__(self) -> str:
        state = "lazy" if self.is_lazy else "materialized"
        return f"Array(n={self._length}, dtype={self._dtype}, {state})"

    # -- evaluation ----------------------------------------------------------

    def eval(self) -> "Array":
        """Force evaluation (``af::eval``): fuse, maybe compile, launch once.

        Idempotent on materialized arrays.
        """
        if self._storage is not None:
            return self
        assert self._node is not None
        leaf_arrays = [leaf.data for leaf in self._leaves]
        leaf_dtypes = [leaf.dtype for leaf in self._leaves]
        kernel = jit.analyze(self._node, leaf_dtypes)
        compile_cost = self.runtime.jit_cache.compile_cost(kernel)
        if compile_cost > 0.0:
            self.runtime.device.compile_program(
                f"af_jit[{kernel.node_count} ops]", compile_cost
            )
        result = jit.evaluate(self._node, leaf_arrays)
        result = result.astype(self._dtype, copy=False)
        # One fused kernel: each distinct leaf read once, result written once.
        self.runtime._charge(
            f"jit_fused[{kernel.node_count}]",
            self._length,
            flops=kernel.flops_per_element,
            read=float(sum(d.itemsize for d in leaf_dtypes)),
            written=float(self._dtype.itemsize),
        )
        self._storage = self.runtime._materialize(
            np.ascontiguousarray(result), "af::jit_out"
        )
        self._node = None
        self._leaves = []
        return self

    def storage(self) -> DeviceArray:
        """The backing device array (evaluating first if needed)."""
        self.eval()
        assert self._storage is not None
        return self._storage

    def to_host(self) -> np.ndarray:
        """``af::array::host()`` — evaluate and copy back (charges D2H)."""
        return self.storage().to_host("af::host")

    def peek(self) -> np.ndarray:
        """Evaluate and read the host mirror without charging a transfer
        (test/verification helper)."""
        return self.storage().peek()

    # -- lazy graph construction ---------------------------------------------

    def _unary(self, op: str, dtype: Optional[np.dtype] = None) -> "Array":
        out_dtype = dtype if dtype is not None else jit.result_dtype(op, self._dtype)
        lazy = _build_lazy(self.runtime, op, [self], out_dtype)
        if not self.runtime.fusion_enabled:
            return lazy.eval()
        return lazy

    def _binary(self, op: str, other: Operand, reflected: bool = False) -> "Array":
        if isinstance(other, Array):
            if other.runtime is not self.runtime:
                raise LibraryError("cannot mix arrays from different runtimes")
            if len(other) != len(self):
                raise ArraySizeMismatchError(len(self), len(other), f"af::{op}")
            operands: List[Operand] = [other, self] if reflected else [self, other]
            out_dtype = jit.result_dtype(op, self._dtype, other._dtype)
        else:
            scalar_dtype = np.result_type(other)
            operands = [other, self] if reflected else [self, other]
            out_dtype = jit.result_dtype(op, self._dtype, scalar_dtype)
        lazy = _build_lazy(self.runtime, op, operands, out_dtype)
        if not self.runtime.fusion_enabled:
            return lazy.eval()
        return lazy

    # Arithmetic operators.
    def __add__(self, other: Operand) -> "Array":
        return self._binary("add", other)

    def __radd__(self, other: Operand) -> "Array":
        return self._binary("add", other, reflected=True)

    def __sub__(self, other: Operand) -> "Array":
        return self._binary("sub", other)

    def __rsub__(self, other: Operand) -> "Array":
        return self._binary("sub", other, reflected=True)

    def __mul__(self, other: Operand) -> "Array":
        """Table II: the *product* operator is realized as ``operator*()``."""
        return self._binary("mul", other)

    def __rmul__(self, other: Operand) -> "Array":
        return self._binary("mul", other, reflected=True)

    def __truediv__(self, other: Operand) -> "Array":
        return self._binary("div", other)

    def __rtruediv__(self, other: Operand) -> "Array":
        return self._binary("div", other, reflected=True)

    def __mod__(self, other: Operand) -> "Array":
        return self._binary("mod", other)

    def __neg__(self) -> "Array":
        return self._unary("neg")

    def __abs__(self) -> "Array":
        return self._unary("abs")

    # Comparisons.
    def __lt__(self, other: Operand) -> "Array":
        return self._binary("lt", other)

    def __le__(self, other: Operand) -> "Array":
        return self._binary("le", other)

    def __gt__(self, other: Operand) -> "Array":
        return self._binary("gt", other)

    def __ge__(self, other: Operand) -> "Array":
        return self._binary("ge", other)

    def __eq__(self, other: Operand) -> "Array":  # type: ignore[override]
        return self._binary("eq", other)

    def __ne__(self, other: Operand) -> "Array":  # type: ignore[override]
        return self._binary("ne", other)

    __hash__ = None  # type: ignore[assignment]  # == builds expressions

    # Logical.
    def __and__(self, other: Operand) -> "Array":
        return self._binary("and", other)

    def __or__(self, other: Operand) -> "Array":
        return self._binary("or", other)

    def __invert__(self) -> "Array":
        return self._unary("not")

    def cast(self, dtype: Union[str, np.dtype]) -> "Array":
        """``af::array::as`` — lazy dtype cast."""
        target = np.dtype(dtype)
        lazy = _build_lazy(self.runtime, "cast", [self], target)
        if not self.runtime.fusion_enabled:
            return lazy.eval()
        return lazy


def _build_lazy(
    runtime: ArrayFireRuntime,
    op: str,
    operands: List[Operand],
    out_dtype: np.dtype,
) -> Array:
    """Construct a lazy Array node over ``operands`` (Arrays or scalars)."""
    children: List[object] = []
    leaves: List[DeviceArray] = []
    length: Optional[int] = None
    for operand in operands:
        if isinstance(operand, Array):
            length = len(operand) if length is None else length
            if operand.is_lazy:
                assert operand._node is not None
                # Re-index the operand's leaves into the merged leaf list.
                children.append(
                    _reindex(operand._node, base=len(leaves))
                )
                leaves.extend(operand._leaves)
            else:
                assert operand._storage is not None
                children.append((jit.LEAF, len(leaves)))
                leaves.append(operand._storage)
        else:
            children.append((jit.SCALAR, operand))
    if length is None:
        raise ExpressionError(f"af::{op} needs at least one array operand")
    node = jit.JitNode(op=op, children=tuple(children), dtype=out_dtype)
    return Array(
        runtime,
        node=node,
        leaves=leaves,
        length=length,
        dtype=out_dtype,
    )


def _reindex(node: jit.JitNode, base: int) -> jit.JitNode:
    """Shift all leaf indices in ``node`` by ``base`` (leaf-list merge)."""
    if base == 0:
        return node
    children: List[object] = []
    for child in node.children:
        if isinstance(child, jit.JitNode):
            children.append(_reindex(child, base))
        else:
            kind, payload = child
            if kind == jit.LEAF:
                children.append((jit.LEAF, payload + base))
            else:
                children.append(child)
    return jit.JitNode(op=node.op, children=tuple(children), dtype=node.dtype)
